"""Legacy setuptools shim.

Kept so the package installs offline (``python setup.py develop``) where
PEP 517 build isolation cannot download build requirements.
"""

from setuptools import setup

setup()
