#!/usr/bin/env python3
"""Campaign smoke test over riscv trace workloads.

Drives the full campaign pipeline — plan (``JobRecorder``), fan out
(``execute_campaign`` worker pool, each worker re-decoding the corpus
trace from disk), content-addressed store — over riscv programs, then
re-executes the identical plan to prove every job is answered from the
cache (the dedup contract the service relies on).  Writes a JSON
artifact with per-job digests for CI upload.

    python tools/riscv_campaign_smoke.py \
        --programs riscv:memcpy,riscv:hashprobe --jobs 2 \
        --out riscv-campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.config import base_config, dynamic_config
from repro.experiments.cache import JobRecorder, ResultStore, recording
from repro.experiments.parallel import execute_campaign
from repro.experiments.runner import Settings, Sweep
from repro.verify.digest import result_digest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--programs",
                        default="riscv:memcpy,riscv:hashprobe",
                        help="comma-separated riscv program list")
    parser.add_argument("--warmup", type=int, default=1_000)
    parser.add_argument("--measure", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the fan-out")
    parser.add_argument("--out", default="riscv-campaign.json",
                        help="JSON artifact path")
    args = parser.parse_args(argv)

    programs = tuple(p for p in args.programs.split(",") if p)
    settings = Settings(warmup=args.warmup, measure=args.measure,
                        seed=args.seed, only_programs=programs)
    configs = {"base": base_config(), "dynamic": dynamic_config(3)}

    def plan(store: ResultStore) -> JobRecorder:
        recorder = JobRecorder()
        sweep = Sweep(settings, store=store)
        with recording(recorder):
            for program in programs:
                for config in configs.values():
                    sweep.run(program, config)
        return recorder

    store = ResultStore()
    report = execute_campaign(plan(store), store, jobs=args.jobs)
    print(f"fan-out: planned {report.planned}, executed "
          f"{report.executed} on {report.workers} workers")
    if report.executed != len(programs) * len(configs):
        print("FAIL: cold run did not execute every planned job")
        return 1

    rerun = execute_campaign(plan(store), store, jobs=args.jobs)
    print(f"re-run: planned {rerun.planned}, already cached "
          f"{rerun.already_cached}, executed {rerun.executed}")
    if rerun.executed != 0 or rerun.already_cached != report.planned:
        print("FAIL: warm re-run was not fully served from the store")
        return 1

    sweep = Sweep(settings, store=store)
    rows = []
    for program in programs:
        for model, config in configs.items():
            result = sweep.run(program, config)
            rows.append({"program": program, "model": model,
                         "ipc": round(result.ipc, 4),
                         "digest": result_digest(result)})
            print(f"  {program:18s} {model:8s} ipc={result.ipc:.3f} "
                  f"digest={result_digest(result)[:12]}")
    if sweep.sim_runs != 0:
        print("FAIL: sweep re-simulated instead of reading the store")
        return 1

    artifact = {"programs": list(programs),
                "warmup": args.warmup, "measure": args.measure,
                "seed": args.seed, "results": rows,
                "fanout": {"planned": report.planned,
                           "executed": report.executed,
                           "workers": report.workers},
                "rerun_cached": rerun.already_cached}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}; campaign smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
