#!/usr/bin/env python3
"""Distil bandit telemetry into a static ``table:`` policy artifact.

The bandit controllers (``bandit:ucb`` / ``bandit:egreedy``) learn
online, paying for every lesson with exploration windows.  This tool
converts what they learned into a :class:`repro.core.TablePolicy` —
a zero-exploration miss-bucket → level decision table — by replaying
the ``reward`` events out of one or more telemetry JSONL artifacts
(recorded with ``--telemetry`` on any campaign, or ``telemetry_period``
on a service job).

For every scored window the recording pairs the arm played (the window
level) with the demand L2 misses the *sample* ring observed over the
same interval.  Bucketing those windows by miss count and picking, per
bucket, the level with the highest mean reward yields the table; the
bucket boundaries are the miss counts actually observed, merged down to
``--buckets`` thresholds.  Buckets with no observations inherit the
nearest observed bucket's level, and the result is forced monotone
(non-decreasing level with miss count) unless ``--no-monotone`` — the
paper's premise is that more outstanding misses never justify a
*smaller* window.

Usage::

    python tools/train_policy_table.py .simcache/telemetry/*.jsonl \
        -o results/policy_table.json
    python - <<'PY'
    from repro.core import make_policy
    make_policy("table:results/policy_table.json", 3, 300)
    PY

The artifact is plain JSON — ``{"thresholds": [...], "levels": [...],
"period": N}`` — loadable via ``make_policy("table:<path>", ...)`` or
:meth:`repro.core.TablePolicy.from_file`.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.learned import TablePolicy  # noqa: E402
from repro.telemetry.recorder import Telemetry  # noqa: E402

_REWARD = re.compile(r"arm=(\d+) ctx=\d+ reward=(-?\d+\.?\d*)")


def windows_from_artifact(tel: Telemetry) -> list[tuple[int, int, float]]:
    """``(misses, level, reward)`` per scored bandit window.

    The reward events carry arm and reward; the interval samples carry
    the miss deltas.  Each reward is matched with the misses observed
    over the scoring window that produced it — the samples whose
    trailing edge falls inside ``(previous reward cycle, this one]``.
    """
    rewards = [(e.cycle, e.level, m.group(1), m.group(2))
               for e in tel.events if e.kind == "reward"
               if (m := _REWARD.match(e.detail))]
    samples = sorted(tel.samples, key=lambda s: s.cycle)
    windows = []
    prev_cycle = None
    for cycle, level, arm, reward in rewards:
        lo = prev_cycle if prev_cycle is not None else cycle - tel.period
        misses = sum(s.l2_misses for s in samples if lo < s.cycle <= cycle)
        windows.append((misses, int(arm), float(reward)))
        prev_cycle = cycle
    return windows


def build_table(windows: list[tuple[int, int, float]], max_level: int,
                n_buckets: int, monotone: bool = True,
                period: int = 2_048) -> dict:
    """Pick the best-mean-reward level per miss bucket."""
    if not windows:
        raise SystemExit("no bandit reward events found in the input "
                         "artifacts — record them with a bandit:* policy "
                         "and --telemetry")
    counts = sorted({misses for misses, _, _ in windows})
    # thresholds = observed miss counts, thinned to n_buckets - 1 upper
    # bounds (the last bucket is open-ended)
    if len(counts) > n_buckets - 1:
        step = len(counts) / (n_buckets - 1)
        thresholds = sorted({counts[min(int(i * step), len(counts) - 1)]
                             for i in range(1, n_buckets)})
    else:
        thresholds = counts[1:] if len(counts) > 1 else []

    def bucket_of(misses: int) -> int:
        for i, bound in enumerate(thresholds):
            if misses <= bound:
                return i
        return len(thresholds)

    n = len(thresholds) + 1
    sums = [[0.0] * (max_level + 1) for _ in range(n)]
    plays = [[0] * (max_level + 1) for _ in range(n)]
    for misses, level, reward in windows:
        if 1 <= level <= max_level:
            b = bucket_of(misses)
            sums[b][level] += reward
            plays[b][level] += 1
    levels: list[int | None] = []
    for b in range(n):
        scored = [(sums[b][lv] / plays[b][lv], lv)
                  for lv in range(1, max_level + 1) if plays[b][lv]]
        levels.append(max(scored)[1] if scored else None)
    # unobserved buckets inherit the nearest observed neighbour
    observed = [i for i, lv in enumerate(levels) if lv is not None]
    if not observed:
        raise SystemExit("reward events carried no in-range arms")
    filled = [levels[min(observed, key=lambda i, b=b: abs(i - b))]
              if levels[b] is None else levels[b] for b in range(n)]
    if monotone:
        for i in range(1, n):
            filled[i] = max(filled[i], filled[i - 1])
    return {"thresholds": list(thresholds), "levels": filled,
            "period": period,
            "trained_windows": len(windows)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="distil bandit telemetry into a table: policy artifact")
    parser.add_argument("artifacts", nargs="+",
                        help="telemetry JSONL files (bandit runs)")
    parser.add_argument("-o", "--out", required=True,
                        help="output JSON artifact path")
    parser.add_argument("--max-level", type=int, default=3)
    parser.add_argument("--buckets", type=int, default=4,
                        help="max miss buckets (default 4)")
    parser.add_argument("--period", type=int, default=2_048,
                        help="decision period of the resulting policy")
    parser.add_argument("--no-monotone", action="store_true",
                        help="keep raw per-bucket winners instead of "
                             "forcing level monotone in miss count")
    args = parser.parse_args(argv)

    windows: list[tuple[int, int, float]] = []
    for path in args.artifacts:
        tel = Telemetry.from_jsonl(path)
        found = windows_from_artifact(tel)
        print(f"{path}: {len(found)} scored windows "
              f"({tel.meta.get('program', '?')})")
        windows.extend(found)
    table = build_table(windows, args.max_level, args.buckets,
                        monotone=not args.no_monotone, period=args.period)
    # round-trip through the policy's own validation before writing
    TablePolicy(args.max_level, thresholds=table["thresholds"],
                levels=table["levels"], period=table["period"])
    out_dir = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(table, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}: thresholds={table['thresholds']} "
          f"levels={table['levels']} from {table['trained_windows']} windows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
