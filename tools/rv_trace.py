#!/usr/bin/env python3
"""rv_trace: convert, validate and generate RV64 dynamic traces.

The simulator's RISC-V frontend (``repro.workloads.riscv``) consumes
traces in two containers: human-editable text (``.rvt``) and packed
binary (``.rvb``).  This tool moves between them, checks files, and —
because requiring a RISC-V toolchain would defeat the repo's
from-scratch reproducibility — *generates* traces by symbolically
executing the small hand-written kernels in
``repro.workloads.riscv.kernels``.

Subcommands::

    generate [KERNEL ...]      emit kernels (default: all) as .rvb
        --out-dir DIR          destination (default: benchmarks/riscv)
        --format {rvb,rvt}     container (default: rvb)
        --ops N                dynamic instructions per trace
    convert IN OUT             container by file suffix (.rvt <-> .rvb)
    validate PATH [PATH ...]   structural check + content hash
    info PATH                  decode and summarise one trace

Examples::

    python tools/rv_trace.py generate
    python tools/rv_trace.py convert benchmarks/riscv/memcpy.rvb /tmp/m.rvt
    python tools/rv_trace.py validate benchmarks/riscv/*.rvb
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.workloads.riscv import (DEFAULT_OPS, build_kernel, content_hash,
                                   kernel_names, to_micro_op)
from repro.workloads.riscv.format import (TraceFormatError, dump_file,
                                          load_file)
from repro.workloads.riscv.isa import MNEMONIC_CLASS


def cmd_generate(args) -> int:
    names = args.kernels or list(kernel_names())
    os.makedirs(args.out_dir, exist_ok=True)
    for name in names:
        insns = build_kernel(name, args.ops)
        path = os.path.join(args.out_dir, f"{name}.{args.format}")
        dump_file(path, name, insns)
        print(f"{path}: {len(insns)} records, "
              f"sha256 {content_hash(insns)[:16]}")
    return 0


def cmd_convert(args) -> int:
    name, insns = load_file(args.input)
    dump_file(args.output, name, insns)
    print(f"{args.output}: {len(insns)} records "
          f"(name={name}, sha256 {content_hash(insns)[:16]})")
    return 0


def cmd_validate(args) -> int:
    status = 0
    for path in args.paths:
        try:
            name, insns = load_file(path)
        except (TraceFormatError, OSError, UnicodeDecodeError) as exc:
            print(f"{path}: INVALID - {exc}")
            status = 1
            continue
        # the decoder must accept every record, not just the codec
        for insn in insns:
            to_micro_op(insn)
        print(f"{path}: ok - {len(insns)} records, name={name}, "
              f"sha256 {content_hash(insns)[:16]}")
    return status


def cmd_info(args) -> int:
    name, insns = load_file(args.path)
    classes = Counter(MNEMONIC_CLASS[i.op].name for i in insns)
    mem = [i.addr for i in insns if i.addr is not None]
    taken = sum(1 for i in insns
                if i.taken or (i.taken is None and i.target is not None))
    branches = sum(1 for i in insns if i.target is not None)
    print(f"name        : {name}")
    print(f"records     : {len(insns)}")
    print(f"sha256      : {content_hash(insns)}")
    print(f"classes     : " + ", ".join(
        f"{cls.lower()}={classes[cls]}" for cls in sorted(classes)))
    if mem:
        lo, hi = min(mem), max(mem)
        print(f"data span   : [{lo:#x}, {hi:#x}] "
              f"({(hi - lo) / 1024:.0f} KiB)")
    if branches:
        print(f"branches    : {branches} ({taken / branches:.0%} taken)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/rv_trace.py",
        description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit traces from built-in "
                                          "RV test kernels")
    gen.add_argument("kernels", nargs="*",
                     help=f"kernel names (default: all of "
                          f"{', '.join(kernel_names())})")
    gen.add_argument("--out-dir", default=os.path.join("benchmarks",
                                                       "riscv"))
    gen.add_argument("--format", choices=("rvb", "rvt"), default="rvb")
    gen.add_argument("--ops", type=int, default=DEFAULT_OPS,
                     help="dynamic instructions per trace")
    gen.set_defaults(func=cmd_generate)

    conv = sub.add_parser("convert", help="convert text <-> binary")
    conv.add_argument("input")
    conv.add_argument("output")
    conv.set_defaults(func=cmd_convert)

    val = sub.add_parser("validate", help="structural check")
    val.add_argument("paths", nargs="+")
    val.set_defaults(func=cmd_validate)

    info = sub.add_parser("info", help="summarise one trace")
    info.add_argument("path")
    info.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (TraceFormatError, OSError, KeyError) as exc:
        print(f"rv_trace: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
