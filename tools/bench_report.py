#!/usr/bin/env python
"""Per-engine simulator speed report -> BENCH_6.json.

Times every workload of ``benchmarks/test_simulator_speed.py`` on both
execution engines (:mod:`repro.pipeline.engine`) and writes a JSON
report with wall-clock, simulated cycles/sec and committed uops/sec per
engine, plus the fast-over-reference speedup per bench.  CI uploads the
file as an artifact so engine performance has a history; ``--min-
speedup`` turns the memory-bound speedups into a gate (kept well below
the locally measured ratios — shared CI runners are noisy).

Usage::

    python tools/bench_report.py [--out BENCH_6.json] [--rounds 5]
                                 [--min-speedup 1.2]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))


def _load_bench_module():
    path = os.path.join(_ROOT, "benchmarks", "test_simulator_speed.py")
    spec = importlib.util.spec_from_file_location("simulator_speed", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_report(rounds: int = 5) -> dict:
    from repro.workloads import generate_trace, profile
    bench = _load_bench_module()
    measure = bench.MEASURE
    traces = {}
    benches = {}
    for name, (program, config_factory, bound) in bench.WORKLOADS.items():
        trace = traces.get(program)
        if trace is None:
            trace = generate_trace(profile(program), n_ops=measure + 1_000,
                                   seed=1)
            traces[program] = trace
        engines = {}
        cycles = {}
        for engine in ("reference", "fast"):
            best = float("inf")
            for _ in range(rounds):
                # construction + cache prewarm stay outside the timer:
                # the report measures the *engine loop*, not the shared
                # setup both engines pay identically
                from repro.pipeline import Processor, get_engine
                proc = Processor(config_factory(), trace)
                proc.prewarm()
                t0 = time.perf_counter()
                get_engine(engine).run(proc, until_committed=bench.MEASURE)
                best = min(best, time.perf_counter() - t0)
            cycles[engine] = proc.stats.cycles
            engines[engine] = {
                "wall_s": round(best, 6),
                "cycles_per_sec": round(proc.stats.cycles / best, 1),
                "uops_per_sec": round(proc.committed_total / best, 1),
            }
        # both engines must have simulated the identical machine history
        if cycles["reference"] != cycles["fast"]:
            raise SystemExit(
                f"{name}: engines disagree on simulated cycles "
                f"({cycles['reference']} vs {cycles['fast']}) — run "
                f"`python -m repro.verify engines`")
        benches[name] = {
            "program": program,
            "bound": bound,
            "simulated_cycles": cycles["reference"],
            "engines": engines,
            "speedup_fast_over_reference": round(
                engines["reference"]["wall_s"] / engines["fast"]["wall_s"],
                3),
        }
    return {
        "schema": "bench-engines-v1",
        "measure_uops": measure,
        "rounds": rounds,
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_6.json",
                        help="output path (default BENCH_6.json)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per (bench, engine); best "
                             "round wins (default 5)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless every memory-bound bench's "
                             "fast-engine speedup reaches this ratio")
    args = parser.parse_args(argv)

    report = run_report(rounds=args.rounds)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    failures = []
    for name, entry in report["benches"].items():
        speedup = entry["speedup_fast_over_reference"]
        print(f"{name:15s} {entry['program']:10s} "
              f"ref={entry['engines']['reference']['wall_s'] * 1e3:7.1f}ms "
              f"fast={entry['engines']['fast']['wall_s'] * 1e3:7.1f}ms "
              f"speedup={speedup:.2f}x")
        if (args.min_speedup is not None and entry["bound"] == "memory"
                and speedup < args.min_speedup):
            failures.append(f"{name}: {speedup:.2f}x < {args.min_speedup}x")
    print(f"wrote {args.out}")
    if failures:
        print("speedup gate FAILED: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
