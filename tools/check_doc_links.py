#!/usr/bin/env python3
"""Fail on broken intra-repo references in the documentation.

Checks two kinds of references in ``README.md``, ``DESIGN.md``,
``EXPERIMENTS.md``, ``CHANGES.md`` and ``docs/*.md``:

* markdown links ``[text](target)`` whose target is a relative path
  (external URLs and pure ``#anchor`` links are skipped) — the target,
  resolved against the linking file's directory, must exist;
* inline-code path mentions like ``docs/observability.md`` or
  ``src/repro/telemetry/`` — any backtick span that looks like a repo
  path (contains a ``/``, starts with a known top-level directory or
  ends in a known extension) must resolve against the repo root, the
  linking file's directory, or ``src/repro`` (module-relative mentions
  such as ``pipeline/resources.py``).  Spans containing glob characters
  must match at least one file.

Exit status 0 when every reference resolves, 1 otherwise (one line per
broken reference).  Run from anywhere: paths are anchored at the repo
root (this script's grandparent directory).

Usage::

    python tools/check_doc_links.py [files...]
"""

from __future__ import annotations

import glob as globlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md",
                 "docs/*.md")

_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`([^`\n]+)`")
#: top-level directories whose mention in backticks is checked even
#: without a recognised extension (e.g. ``src/repro/telemetry/``)
_KNOWN_ROOTS = ("src/", "docs/", "tests/", "tools/", "examples/",
                "benchmarks/", "results/", ".github/")
_KNOWN_EXTS = (".py", ".md", ".json", ".yml", ".yaml", ".csv", ".txt",
               ".toml", ".cfg", ".ini")
#: extra anchors for module-relative mentions like ``pipeline/core.py``
#: or ``repro/workloads/kernels.py``
_EXTRA_BASES = ("src", "src/repro")


def _looks_like_repo_path(span: str) -> bool:
    if "/" not in span or " " in span or span.startswith(("http", "$", "-")):
        return False
    if any(ch in span for ch in "{}<>|=,"):
        return False
    # option values, fractions, dates: 0.25/0.5, 1/12/87
    if re.fullmatch(r"[\d./x]+", span):
        return False
    trimmed = span.rstrip("/")
    return (span.startswith(_KNOWN_ROOTS)
            or trimmed.endswith(_KNOWN_EXTS))


def _resolves(target: str, base_dir: str) -> bool:
    # pytest selectors: tests/foo.py::TestBar checks only the file part
    target = target.split("::", 1)[0]
    candidates = [os.path.join(base_dir, target),
                  os.path.join(REPO_ROOT, target)]
    candidates += [os.path.join(REPO_ROOT, extra, target)
                   for extra in _EXTRA_BASES]
    if any(ch in target for ch in "*?["):
        return any(globlib.glob(c) for c in candidates)
    return any(os.path.exists(c) for c in candidates)


def _strip_fenced_blocks(text: str) -> str:
    """Remove ``` fenced blocks: shell transcripts mention paths that
    need not exist (cache dirs, temp output)."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def check_file(path: str) -> list[str]:
    base_dir = os.path.dirname(os.path.abspath(path))
    rel = os.path.relpath(path, REPO_ROOT)
    with open(path, "r", encoding="utf-8") as fh:
        text = _strip_fenced_blocks(fh.read())
    problems = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _MD_LINK.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            if not _resolves(target, base_dir):
                problems.append(f"{rel}:{lineno}: broken link "
                                f"-> {match.group(1)}")
        for match in _CODE_SPAN.finditer(line):
            span = match.group(1).strip()
            if not _looks_like_repo_path(span):
                continue
            if not _resolves(span, base_dir):
                problems.append(f"{rel}:{lineno}: missing path "
                                f"reference `{span}`")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    patterns = argv or DEFAULT_FILES
    files = []
    for pattern in patterns:
        anchored = os.path.join(REPO_ROOT, pattern)
        matches = sorted(globlib.glob(anchored))
        if not matches and not globlib.has_magic(pattern):
            print(f"checked file does not exist: {pattern}",
                  file=sys.stderr)
            return 1
        files.extend(matches)
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"doc-link check: {len(files)} files, "
          f"{len(problems)} broken references")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
