#!/usr/bin/env python
"""Demo + gate for the distributed fabric (`docs/serving.md`).

Three phases, each against a fresh coordinator and fresh stores:

1. **Baseline** — one worker process serves a duplicate-heavy batch;
   wall-clock and per-job digests are recorded.
2. **Scale-out** — N worker processes (default 4) serve the *same*
   batch.  The gate: digests bit-identical to the baseline run, every
   unique simulation executed exactly once cluster-wide, and
   throughput at least ``--min-speedup`` times the baseline
   (workers are separate processes, so the speedup is real
   parallelism, not thread interleaving).
3. **Chaos** — two workers take a deliberately slow job; the worker
   *holding* it is SIGKILLed mid-execution.  The gate: the
   coordinator's lease-timeout requeue reassigns it, the job
   completes with the digest an inline run produces, and every entry
   in the shared store still unpickles (atomic writes — no torn
   entries).

Usage::

    python tools/cluster_demo.py [--workers 4] [--min-speedup 3.0]
                                 [--unique 8] [--dups 3]
                                 [--measure 6000] [--no-chaos]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.experiments.cache import ResultStore  # noqa: E402
from repro.experiments.parallel import _run_job  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.cluster import Coordinator  # noqa: E402
from repro.service.jobs import build_spec  # noqa: E402
from repro.verify.digest import result_digest  # noqa: E402

PROGRAMS = ("mcf", "leslie3d", "libquantum", "gcc", "namd", "povray",
            "milc", "soplex")


def build_batch(unique: int, dups: int, measure: int) -> list[dict]:
    """A deterministic duplicate-heavy batch: ``unique`` distinct jobs,
    each submitted ``dups`` times (interleaved, the way a sweep's
    duplicate requests actually arrive)."""
    shapes = [{"program": PROGRAMS[i % len(PROGRAMS)], "model": "dynamic",
               "level": 1 + i % 3, "seed": 1 + i // len(PROGRAMS),
               "warmup": 500, "measure": measure}
              for i in range(unique)]
    return [shapes[i % unique] for i in range(unique * dups)]


def spawn_worker(port: int, name: str, workdir: str, slots: int = 1):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(_ROOT, "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "worker",
         "--coordinator", f"http://127.0.0.1:{port}",
         "--name", name, "--slots", str(slots),
         "--cache-dir", os.path.join(workdir, f"local-{name}")],
        env=env, cwd=workdir,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def run_phase(workdir: str, label: str, n_workers: int,
              batch: list[dict], lease_ttl: float = 15.0):
    """One coordinator + ``n_workers`` worker processes serving
    ``batch``; returns (wall_seconds, digests, metrics)."""
    phase_dir = os.path.join(workdir, label)
    os.makedirs(phase_dir, exist_ok=True)
    coord = Coordinator(port=0, queue_limit=max(64, len(batch)),
                        lease_ttl=lease_ttl,
                        cache_dir=os.path.join(phase_dir, "shared"))
    thread = coord.start_in_thread()
    workers = []
    try:
        client = ServiceClient(port=coord.port, timeout=600.0)
        client.wait_ready(timeout=30)
        workers = [spawn_worker(coord.port, f"{label}-{n}", phase_dir)
                   for n in range(n_workers)]
        deadline = time.monotonic() + 60
        while len(client.healthz()["workers"]) < n_workers:
            if time.monotonic() > deadline:
                raise RuntimeError(f"{label}: workers failed to register")
            time.sleep(0.05)

        started = time.perf_counter()
        records = client.submit_and_wait(batch, timeout=600.0)
        wall = time.perf_counter() - started
        bad = [r for r in records if r["state"] != "done"]
        if bad:
            raise RuntimeError(f"{label}: {len(bad)} jobs not done: "
                               f"{bad[0].get('error')}")
        digests = [r["result"]["digest"] for r in records]
        metrics = client.metrics()
        return wall, digests, metrics
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
        coord.request_stop()
        thread.join(timeout=60)


def run_chaos(workdir: str) -> dict:
    """SIGKILL the worker holding a slow job; prove the requeue."""
    phase_dir = os.path.join(workdir, "chaos")
    os.makedirs(phase_dir, exist_ok=True)
    slow = {"program": "mcf", "model": "dynamic", "seed": 77,
            "warmup": 1_000, "measure": 40_000}
    coord = Coordinator(port=0, lease_ttl=1.0,
                        cache_dir=os.path.join(phase_dir, "shared"))
    thread = coord.start_in_thread()
    workers = {}
    try:
        client = ServiceClient(port=coord.port, timeout=600.0)
        client.wait_ready(timeout=30)
        workers = {f"chaos-{n}": spawn_worker(coord.port, f"chaos-{n}",
                                              phase_dir)
                   for n in range(2)}
        deadline = time.monotonic() + 60
        while len(client.healthz()["workers"]) < 2:
            if time.monotonic() > deadline:
                raise RuntimeError("chaos: workers failed to register")
            time.sleep(0.05)

        record = client.submit(slow)[0]
        victim_name = None
        deadline = time.monotonic() + 60
        while victim_name is None:
            if time.monotonic() > deadline:
                raise RuntimeError("chaos: job never started running")
            for info in client.healthz()["workers"]:
                if record["key"] in info["held"]:
                    victim_name = info["name"]
            time.sleep(0.02)
        victim = workers[victim_name]
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)

        finished = client.wait(record["id"], timeout=120)
        if finished["state"] != "done":
            raise RuntimeError(f"chaos: job ended {finished['state']}: "
                               f"{finished.get('error')}")
        if finished["attempts"] < 2:
            raise RuntimeError("chaos: job was not requeued")
        metrics = client.metrics()
        if metrics["repro_service_requeues_total"] < 1:
            raise RuntimeError("chaos: no requeue recorded")

        # bit-identity despite the murder
        __, local, __busy = _run_job(build_spec(slow))
        if finished["result"]["digest"] != result_digest(local):
            raise RuntimeError("chaos: digest diverged from inline run")
        # no torn entries: every stored file unpickles
        check = ResultStore(coord.store.directory)
        entries = list(check.iter_disk())
        for key, *__rest in entries:
            if check.get(key) is None:
                raise RuntimeError(f"chaos: torn store entry {key[:12]}")
        return {"attempts": finished["attempts"],
                "requeues": int(metrics["repro_service_requeues_total"]),
                "victim": victim_name,
                "store_entries_verified": len(entries)}
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in workers.values():
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
        coord.request_stop()
        thread.join(timeout=60)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="scale-out worker processes (default 4)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required cluster-over-baseline throughput "
                             "ratio (0 disables the gate)")
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct jobs in the batch")
    parser.add_argument("--dups", type=int, default=3,
                        help="times each distinct job is submitted")
    parser.add_argument("--measure", type=int, default=6_000,
                        help="measured micro-ops per job (job duration)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the SIGKILL/requeue phase")
    parser.add_argument("--out", default="",
                        help="write the result summary as JSON here")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="cluster-demo-")
    summary: dict = {"workers": args.workers,
                     "batch": args.unique * args.dups,
                     "unique": args.unique}
    try:
        batch = build_batch(args.unique, args.dups, args.measure)
        print(f"cluster-demo: batch of {len(batch)} jobs "
              f"({args.unique} unique x {args.dups} submissions)")

        base_wall, base_digests, base_metrics = run_phase(
            workdir, "baseline", 1, batch)
        base_sims = base_metrics["repro_service_simulations_total"]
        print(f"  baseline   1 worker : {base_wall:6.2f}s  "
              f"({len(batch) / base_wall:.1f} jobs/s, "
              f"{base_sims:.0f} simulations)")

        wall, digests, metrics = run_phase(
            workdir, "cluster", args.workers, batch)
        sims = metrics["repro_service_simulations_total"]
        speedup = base_wall / wall
        print(f"  cluster  {args.workers:2d} workers: {wall:6.2f}s  "
              f"({len(batch) / wall:.1f} jobs/s, {sims:.0f} simulations) "
              f"-> {speedup:.2f}x")

        if digests != base_digests:
            print("cluster-demo: FAIL — digests diverged between "
                  "single-node and cluster runs", file=sys.stderr)
            return 1
        print(f"  digests: all {len(digests)} bit-identical to the "
              f"single-node run")
        if sims != args.unique or base_sims != args.unique:
            print(f"cluster-demo: FAIL — expected exactly {args.unique} "
                  f"simulations (baseline ran {base_sims:.0f}, "
                  f"cluster ran {sims:.0f})", file=sys.stderr)
            return 1
        print(f"  dedup: each unique job simulated exactly once "
              f"cluster-wide")
        summary.update(baseline_seconds=round(base_wall, 3),
                       cluster_seconds=round(wall, 3),
                       speedup=round(speedup, 3),
                       digests_identical=True,
                       simulations=int(sims))
        if args.min_speedup and speedup < args.min_speedup:
            print(f"cluster-demo: FAIL — speedup {speedup:.2f}x below "
                  f"the {args.min_speedup:.1f}x gate", file=sys.stderr)
            return 1

        if not args.no_chaos:
            chaos = run_chaos(workdir)
            summary["chaos"] = chaos
            print(f"  chaos: SIGKILLed {chaos['victim']} mid-job -> "
                  f"requeued ({chaos['requeues']}), completed on "
                  f"attempt {chaos['attempts']}, "
                  f"{chaos['store_entries_verified']} store entries "
                  f"verified torn-free")

        if args.out:
            with open(args.out, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
            print(f"cluster-demo: summary -> {args.out}")
        print("cluster-demo: OK")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
