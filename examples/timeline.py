"""Watch the window breathe: a live timeline of level, IPC and misses.

Records a windowed time-series of one dynamic-resizing run and renders
it as ASCII sparklines — the Figure 6 story on a real workload: miss
clusters pull the window up, quiet stretches let it fall back.

Run:  python examples/timeline.py [program]
"""

import sys

from repro import dynamic_config, generate_trace, profile
from repro.pipeline import Processor
from repro.stats import record_timeline, sparkline


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    trace = generate_trace(profile(program), n_ops=24_000, seed=1)
    proc = Processor(dynamic_config(3), trace)
    proc.prewarm()
    proc.run(until_committed=4_000)
    proc.reset_measurement()

    timeline = record_timeline(proc, until_committed=23_000,
                               window_cycles=400)

    print(f"=== {program}: {len(timeline)} windows x "
          f"{timeline.window_cycles} cycles ===")
    print(f"level (1-3) : {sparkline(timeline.levels(), max_value=3)}")
    print(f"IPC         : {sparkline(timeline.ipcs())}")
    print(f"L2 misses   : {sparkline(timeline.miss_counts())}")

    levels = timeline.levels()
    for lvl in (1, 2, 3):
        share = levels.count(lvl) / len(levels)
        print(f"  level {lvl}: {share:6.1%} of windows")
    stats = proc.stats
    print(f"  transitions: {stats.enlarge_transitions} up / "
          f"{stats.shrink_transitions} down")


if __name__ == "__main__":
    main()
