"""When does a bigger window pay?  A micro-kernel parameter study.

Sweeps the random-access kernel's working set through the L2 capacity
(2MB) and measures the level-3 window's payoff: below the L2 size there
are no misses to overlap, far above it the channel saturates — the
sweet spot is in between.  Also contrasts the pointer-chase kernel,
where no window ever helps.

Run:  python examples/kernel_study.py
"""

from repro import dynamic_config, fixed_config, generate_trace, simulate
from repro.workloads import pointer_chase_kernel, random_access_kernel


def speedup(profile) -> tuple[float, float]:
    trace = generate_trace(profile, n_ops=14_000, seed=1)
    base = simulate(fixed_config(1), trace, warmup=3_000, measure=10_000)
    dyn = simulate(dynamic_config(3), trace, warmup=3_000, measure=10_000)
    return base.avg_load_latency, dyn.ipc / base.ipc


def main() -> None:
    print("=== random-access kernel: working-set sweep (L2 = 2MB) ===")
    print(f"{'working set':>12} {'load lat':>9} {'L3-window speedup':>18}")
    for mb in (0.5, 1, 2, 4, 8, 16, 32):
        lat, ratio = speedup(random_access_kernel(working_set_mb=mb))
        bar = "#" * round(20 * (ratio - 1)) if ratio > 1 else ""
        print(f"{mb:>10.1f}MB {lat:>9.1f} {ratio:>9.2f}x  {bar}")

    print("\n=== pointer-chase kernel: the window cannot help ===")
    print(f"{'chase frac':>12} {'load lat':>9} {'L3-window speedup':>18}")
    for frac in (0.02, 0.05, 0.10, 0.20):
        lat, ratio = speedup(pointer_chase_kernel(chase_frac=frac))
        print(f"{frac:>12.2f} {lat:>9.1f} {ratio:>9.2f}x")

    print("\nserial chains bound the critical path regardless of window "
          "size; independent misses are where the mechanism earns its area")


if __name__ == "__main__":
    main()
