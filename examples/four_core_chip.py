"""Four cores, one chip: resizing under shared-LLC contention.

The paper prices its scheme for all four Sandy Bridge cores (Table 4);
this example actually runs that chip — four cores with private L1s and
per-core MLP-aware controllers sharing an 8MB LLC and one memory
channel — on a mixed workload, and shows who gains what.

Run:  python examples/four_core_chip.py
"""

from dataclasses import replace

from repro import base_config, dynamic_config, generate_trace, profile
from repro.config import CacheConfig
from repro.multicore import simulate_multicore

PROGRAMS = ("libquantum", "leslie3d", "gcc", "sjeng")


def chip(config):
    llc = CacheConfig(size_bytes=8 * 1024 * 1024, assoc=16, line_bytes=64,
                      hit_latency=18, mshr_entries=64)
    return replace(config, l2=llc)


def run_chip(core_config):
    traces = [generate_trace(profile(p), n_ops=12_000, seed=1)
              for p in PROGRAMS]
    return simulate_multicore([chip(core_config)] * 4, traces,
                              warmup=2_000, measure=8_000)


def main() -> None:
    base_sys = run_chip(base_config())
    dyn_sys = run_chip(dynamic_config(3))

    print(f"{'core':<12} {'base IPC':>9} {'dyn IPC':>9} {'speedup':>8}  "
          f"levels (dyn)")
    for program, b, d in zip(PROGRAMS, base_sys.results(),
                             dyn_sys.results()):
        shares = " ".join(f"L{k}:{v:.0%}"
                          for k, v in d.level_residency.items())
        print(f"{program:<12} {b.ipc:>9.3f} {d.ipc:>9.3f} "
              f"{d.ipc / b.ipc:>7.2f}x  {shares}")
    print(f"\nchip throughput : {base_sys.throughput():.2f} -> "
          f"{dyn_sys.throughput():.2f} "
          f"({dyn_sys.throughput() / base_sys.throughput():.2f}x)")
    print(f"channel busy    : {base_sys.channel_utilisation():.0%} -> "
          f"{dyn_sys.channel_utilisation():.0%} "
          "(the window converts idle bandwidth into performance)")


if __name__ == "__main__":
    main()
