"""Extending the library: plug in your own resizing policy.

Implements a *hysteresis* variant of the paper's controller — it waits
for two L2 misses within a window before enlarging (fewer spurious
enlargements on isolated misses) — and races it against the paper's
policy and the prior-art comparators on a mixed set of programs.

Run:  python examples/custom_policy.py
"""

from repro import dynamic_config, generate_trace, profile, simulate
from repro.core import MLPAwarePolicy, make_policy
from repro.core.policies import ResizeDecision, ResizingPolicy
from repro.pipeline.resources import WindowSet


class HysteresisPolicy(ResizingPolicy):
    """Enlarge only after two misses within ``confirm_window`` cycles."""

    def __init__(self, max_level: int, memory_latency: int,
                 confirm_window: int = 64) -> None:
        self.inner = MLPAwarePolicy(max_level, memory_latency)
        self.confirm_window = confirm_window
        self._last_miss = -1 << 30

    @property
    def level(self) -> int:
        return self.inner.level

    def on_l2_miss(self, cycle: int) -> None:
        if cycle - self._last_miss <= self.confirm_window:
            self.inner.on_l2_miss(cycle)
        self._last_miss = cycle

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        return self.inner.tick(cycle, window)

    def next_timer(self) -> int | None:
        return self.inner.next_timer()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return self.inner.wants_tick_every_cycle


PROGRAMS = ("libquantum", "omnetpp", "milc", "gcc", "sjeng")


def main() -> None:
    config = dynamic_config(3)
    mem_latency = config.memory.min_latency
    policies = {
        "paper (mlp)": lambda: make_policy("mlp", 3, mem_latency),
        "hysteresis": lambda: HysteresisPolicy(3, mem_latency),
        "occupancy": lambda: make_policy("occupancy", 3, mem_latency),
    }
    print(f"{'program':<12}" + "".join(f"{n:>14}" for n in policies))
    for program in PROGRAMS:
        trace = generate_trace(profile(program), n_ops=16_000, seed=1)
        base = simulate(dynamic_config(1), trace, warmup=3_000,
                        measure=12_000)
        cells = []
        for factory in policies.values():
            res = simulate(config, trace, warmup=3_000, measure=12_000,
                           policy=factory())
            cells.append(f"{res.ipc / base.ipc:>13.2f}x")
        print(f"{program:<12}" + "".join(cells))
    print("\nhysteresis trades a little MLP ramp-up speed for fewer "
          "spurious enlargements on isolated misses (e.g. milc)")


if __name__ == "__main__":
    main()
