"""The memory wall, and what a bigger window buys.

Walks libquantum (streaming, memory-bound) through every fixed window
level plus the ideal (non-pipelined) upper bound, prints the L2
miss-interval histogram that motivates the paper's prediction heuristic
(misses cluster!), and shows the achieved memory-level parallelism.

Run:  python examples/memory_wall.py
"""

from repro import fixed_config, ideal_config, generate_trace, profile, simulate
from repro.stats import IntervalHistogram

PROGRAM = "libquantum"


def main() -> None:
    trace = generate_trace(profile(PROGRAM), n_ops=20_000, seed=1)

    print(f"=== {PROGRAM}: IPC vs window level ===")
    print(f"{'level':>6} {'IQ/ROB/LSQ':>14} {'IPC':>7} {'MLP':>6} "
          f"{'load lat':>9}")
    base_ipc = None
    results = {}
    for level in (1, 2, 3):
        config = fixed_config(level)
        res = simulate(config, trace, warmup=4_000, measure=15_000)
        results[level] = res
        sizes = config.level_config(level)
        if base_ipc is None:
            base_ipc = res.ipc
        print(f"{level:>6} {sizes.iq_entries:>4}/{sizes.rob_entries}"
              f"/{sizes.lsq_entries:>3}   {res.ipc:>7.3f} {res.mlp:>6.2f} "
              f"{res.avg_load_latency:>9.1f}")
    ideal = simulate(ideal_config(3), trace, warmup=4_000, measure=15_000)
    print(f"{'ideal':>6} {'(no pipelining)':>14} {ideal.ipc:>7.3f} "
          f"{ideal.mlp:>6.2f} {ideal.avg_load_latency:>9.1f}")
    print(f"\nlevel 3 speedup over level 1: "
          f"{results[3].ipc / base_ipc:.2f}x "
          f"(more in-flight loads -> more overlapped misses)")

    print("\n=== why prediction-by-miss works: misses cluster ===")
    hist = IntervalHistogram(bin_width=8, max_value=512)
    hist.add_all(results[1].stats.miss_intervals())
    print(f"{hist.count} L2 misses; {hist.fraction_below(64):.0%} occur "
          f"within 64 cycles of the previous miss")
    bar_max = max(hist.bins) or 1
    for (label, count) in hist.rows():
        if count:
            bar = "#" * max(1, round(40 * count / bar_max))
            print(f"{label:>9} | {bar} {count}")


if __name__ == "__main__":
    main()
