"""Where do the cycles go?  CPI stacks for base vs resizing.

Decomposes CPI by the reason the ROB head could not retire.  On a
memory-intensive program the base machine drowns in DRAM-miss slots and
the resized window collapses that component; on a compute-intensive
program there is no DRAM component to attack — which is exactly why the
window must shrink back.

Run:  python examples/cpi_stacks.py [program]
"""

import sys

from repro import base_config, dynamic_config, generate_trace, profile, simulate
from repro.analysis import compare_cpi_stacks, cpi_stack, render_cpi_stack


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    trace = generate_trace(profile(program), n_ops=20_000, seed=1)
    base = simulate(base_config(), trace, warmup=4_000, measure=15_000)
    dyn = simulate(dynamic_config(3), trace, warmup=4_000, measure=15_000)

    base_stack = cpi_stack(base)
    dyn_stack = cpi_stack(dyn)
    dyn_stack.model = "resizing"
    base_stack.model = "base"

    print(render_cpi_stack(base_stack))
    print()
    print(render_cpi_stack(dyn_stack))
    print()
    print(compare_cpi_stacks([base_stack, dyn_stack]))
    saved = base_stack.components.get("mem_dram", 0) - \
        dyn_stack.components.get("mem_dram", 0)
    print(f"\nDRAM-stall CPI removed by the adaptive window: {saved:.3f} "
          f"({base.ipc:.2f} -> {dyn.ipc:.2f} IPC)")


if __name__ == "__main__":
    main()
