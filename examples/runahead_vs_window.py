"""Two ways to beat the memory wall: runahead vs a big adaptive window.

Runahead execution pre-executes past a blocking L2 miss with a small
window and throws the work away; dynamic resizing keeps a large window
only while it pays.  Both exploit MLP — but the window keeps its
computation (paper Section 5.7).

Run:  python examples/runahead_vs_window.py
"""

from repro import (
    base_config,
    dynamic_config,
    generate_trace,
    profile,
    runahead_config,
    simulate,
)
from repro.pipeline import Processor

PROGRAMS = ("libquantum", "mcf", "omnetpp", "milc", "gcc")


def main() -> None:
    print(f"{'program':<12}{'runahead':>10}{'resizing':>10}   episodes")
    for program in PROGRAMS:
        trace = generate_trace(profile(program), n_ops=20_000, seed=1)
        base = simulate(base_config(), trace, warmup=4_000, measure=15_000)
        dyn = simulate(dynamic_config(3), trace, warmup=4_000,
                       measure=15_000)

        # Run the runahead model by hand so we can inspect its engine.
        proc = Processor(runahead_config(), trace)
        proc.prewarm()
        proc.run(until_committed=4_000)
        proc.reset_measurement()
        proc.run(until_committed=19_000)
        ra = proc.result()
        engine = proc.runahead

        print(f"{program:<12}{ra.ipc / base.ipc:>9.2f}x"
              f"{dyn.ipc / base.ipc:>9.2f}x   "
              f"{engine.episodes} entered, "
              f"{engine.useless_episodes} useless, "
              f"{engine.rcst.suppressions if engine.rcst else 0} suppressed "
              f"by the RCST")
    print("\nrunahead must abandon and re-execute everything after each "
          "episode; the adaptive window never abandons computation")


if __name__ == "__main__":
    main()
