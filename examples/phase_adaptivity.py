"""Phase adaptivity: where dynamic resizing beats every fixed size.

omnetpp mixes memory-intensive and compute-intensive phases.  A fixed
large window wins the memory phases but pays the pipelined-IQ penalty in
the compute phases; a fixed small window does the opposite.  The
MLP-aware controller rides the phases — the paper's Figure 7(b) shows it
beating the best fixed configuration outright.

Run:  python examples/phase_adaptivity.py [program]
"""

import sys

from repro import (
    dynamic_config,
    fixed_config,
    generate_trace,
    profile,
    simulate,
)


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    trace = generate_trace(profile(program), n_ops=20_000, seed=1)

    print(f"=== {program} ===")
    rows = []
    for level in (1, 2, 3):
        res = simulate(fixed_config(level), trace, warmup=4_000,
                       measure=15_000)
        rows.append((f"fixed level {level}", res))
    dyn = simulate(dynamic_config(3), trace, warmup=4_000, measure=15_000)
    rows.append(("dynamic resizing", dyn))

    base_ipc = rows[0][1].ipc
    print(f"{'model':<18} {'IPC':>7} {'vs base':>8}")
    for name, res in rows:
        print(f"{name:<18} {res.ipc:>7.3f} {res.ipc / base_ipc:>7.2f}x")

    best_fixed = max(rows[:3], key=lambda r: r[1].ipc)
    print(f"\nbest fixed: {best_fixed[0]} at {best_fixed[1].ipc:.3f}; "
          f"dynamic at {dyn.ipc:.3f} "
          f"({dyn.ipc / best_fixed[1].ipc - 1:+.1%})")

    print("\nwhere the dynamic model spent its cycles:")
    for level, share in sorted(dyn.level_residency.items()):
        print(f"  level {level}: {share:6.1%} "
              f"{'#' * round(40 * share)}")
    stats = dyn.stats
    print(f"\nlevel transitions: {stats.enlarge_transitions} enlarges, "
          f"{stats.shrink_transitions} shrinks over {stats.cycles} cycles")


if __name__ == "__main__":
    main()
