"""Quickstart: simulate one program on the base processor and with
MLP-aware dynamic window resizing, and compare.

Run:  python examples/quickstart.py [program]
"""

import sys

from repro import (
    base_config,
    dynamic_config,
    generate_trace,
    profile,
    simulate,
)


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "libquantum"

    # 1. Build a synthetic trace for a SPEC2006-like program profile.
    trace = generate_trace(profile(program), n_ops=20_000, seed=1)
    print(f"program: {program}  ({len(trace.ops)} micro-ops, "
          f"{trace.load_fraction():.0%} loads)")

    # 2. Simulate the conventional (base) processor: 128-entry ROB,
    #    64-entry IQ/LSQ, no resizing (Table 1 of the paper).
    base = simulate(base_config(), trace, warmup=4_000, measure=15_000)

    # 3. Simulate with MLP-aware dynamic instruction window resizing:
    #    the window grows to 4x (level 3) while L2 misses cluster and
    #    shrinks back when they stop.
    resized = simulate(dynamic_config(3), trace, warmup=4_000,
                       measure=15_000)

    print(f"\n{'':24}{'base':>10}{'resizing':>10}")
    print(f"{'IPC':24}{base.ipc:>10.3f}{resized.ipc:>10.3f}")
    print(f"{'avg load latency (cyc)':24}{base.avg_load_latency:>10.1f}"
          f"{resized.avg_load_latency:>10.1f}")
    print(f"{'MLP':24}{base.mlp:>10.2f}{resized.mlp:>10.2f}")
    print(f"\nspeedup: {resized.ipc / base.ipc:.2f}x")
    shares = ", ".join(f"L{lvl}: {share:.0%}"
                       for lvl, share in resized.level_residency.items())
    print(f"cycles spent at each window level: {shares}")


if __name__ == "__main__":
    main()
