"""Benchmark: regenerate paper Table 4 (cost vs speedup)."""

import pytest


def test_table4_cost(bench_experiment):
    result = bench_experiment("table4")
    assert result.series["extra_mm2"] == pytest.approx(1.6)
    assert result.series["speedup"] - 1 > result.series["pollack"] * 2
    print()
    print(result.as_text())
