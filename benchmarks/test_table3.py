"""Benchmark: regenerate paper Table 3 (average load latencies)."""


def test_table3_load_latency(bench_experiment):
    result = bench_experiment("table3")
    assert result.series["agreement"] >= 0.9
    print()
    print(result.as_text())
