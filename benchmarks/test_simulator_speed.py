"""Simulator-throughput benchmarks (not paper artefacts).

These track the *host* cost of simulation — committed micro-ops per
host-second — so performance regressions in the cycle loop show up in
benchmark history.  One compute-bound and one memory-bound workload,
since they stress different parts of the loop (issue bandwidth vs the
event heap and fast-forward), each timed on both execution engines
(:mod:`repro.pipeline.engine`).  ``tools/bench_report.py`` reuses
:data:`WORKLOADS` / :func:`run_once` to produce the per-engine
``BENCH_6.json`` CI artifact.
"""

import pytest

from repro.config import base_config, dynamic_config
from repro.pipeline import Processor, get_engine
from repro.workloads import generate_trace, profile

MEASURE = 6_000

#: The bench matrix, shared with tools/bench_report.py:
#: name -> (program, config factory, bound-kind tag).
WORKLOADS = {
    "compute_bound": ("gcc", base_config, "compute"),
    "memory_bound": ("leslie3d", base_config, "memory"),
    "memory_bound_mlp": ("milc", base_config, "memory"),
    "dynamic_model": ("leslie3d", lambda: dynamic_config(3), "memory"),
}


def run_once(config, trace, engine="reference"):
    proc = Processor(config, trace)
    proc.prewarm()
    get_engine(engine).run(proc, until_committed=MEASURE)
    return proc


@pytest.fixture(scope="module")
def gcc_trace():
    return generate_trace(profile("gcc"), n_ops=MEASURE + 1000, seed=1)


@pytest.fixture(scope="module")
def leslie_trace():
    return generate_trace(profile("leslie3d"), n_ops=MEASURE + 1000, seed=1)


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_speed_compute_bound(benchmark, gcc_trace, engine):
    proc = benchmark.pedantic(run_once,
                              args=(base_config(), gcc_trace, engine),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_speed_memory_bound(benchmark, leslie_trace, engine):
    proc = benchmark.pedantic(run_once,
                              args=(base_config(), leslie_trace, engine),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_speed_memory_bound_mlp(benchmark, engine):
    trace = generate_trace(profile("milc"), n_ops=MEASURE + 1000, seed=1)
    proc = benchmark.pedantic(run_once,
                              args=(base_config(), trace, engine),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_speed_dynamic_model(benchmark, leslie_trace, engine):
    proc = benchmark.pedantic(run_once,
                              args=(dynamic_config(3), leslie_trace, engine),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles
    benchmark.extra_info["engine"] = engine


def test_speed_trace_generation(benchmark):
    trace = benchmark.pedantic(
        generate_trace, args=(profile("omnetpp"),),
        kwargs={"n_ops": 20_000, "seed": 3}, rounds=3, iterations=1)
    assert len(trace.ops) == 20_000
