"""Simulator-throughput benchmarks (not paper artefacts).

These track the *host* cost of simulation — committed micro-ops per
host-second — so performance regressions in the cycle loop show up in
benchmark history.  One compute-bound and one memory-bound workload,
since they stress different parts of the loop (issue bandwidth vs the
event heap and fast-forward).
"""

import pytest

from repro.config import base_config, dynamic_config
from repro.pipeline import Processor
from repro.workloads import generate_trace, profile

MEASURE = 6_000


def run_once(config, trace):
    proc = Processor(config, trace)
    proc.prewarm()
    proc.run(until_committed=MEASURE)
    return proc


@pytest.fixture(scope="module")
def gcc_trace():
    return generate_trace(profile("gcc"), n_ops=MEASURE + 1000, seed=1)


@pytest.fixture(scope="module")
def leslie_trace():
    return generate_trace(profile("leslie3d"), n_ops=MEASURE + 1000, seed=1)


def test_speed_compute_bound(benchmark, gcc_trace):
    proc = benchmark.pedantic(run_once, args=(base_config(), gcc_trace),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles


def test_speed_memory_bound(benchmark, leslie_trace):
    proc = benchmark.pedantic(run_once, args=(base_config(), leslie_trace),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles


def test_speed_dynamic_model(benchmark, leslie_trace):
    proc = benchmark.pedantic(run_once,
                              args=(dynamic_config(3), leslie_trace),
                              rounds=3, iterations=1)
    assert proc.committed_total >= MEASURE
    benchmark.extra_info["simulated_cycles"] = proc.stats.cycles


def test_speed_trace_generation(benchmark):
    trace = benchmark.pedantic(
        generate_trace, args=(profile("omnetpp"),),
        kwargs={"n_ops": 20_000, "seed": 3}, rounds=3, iterations=1)
    assert len(trace.ops) == 20_000
