"""Benchmark: regenerate paper Table 5 (misprediction distances)."""


def test_table5_mispredict_distance(bench_experiment):
    result = bench_experiment("table5")
    assert result.series["gobmk"] < result.series["GemsFDTD"]
    assert result.series["sjeng"] < result.series["libquantum"]
    print()
    print(result.as_text())
