"""Benchmark fixtures.

Each benchmark regenerates one table/figure of the paper end-to-end
(trace generation + all model simulations + aggregation) at the reduced
"quick" scale, through ``benchmark.pedantic`` with a single round — the
run itself *is* the experiment, so repeating it would only re-measure
the same deterministic work.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import importlib

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import Settings, Sweep

QUICK = Settings(all_programs=False, warmup=2_000, measure=6_000)


def run_experiment(exp_id: str, settings: Settings | None = None):
    module = importlib.import_module(EXPERIMENTS[exp_id])
    return module.run(sweep=Sweep(settings or QUICK))


@pytest.fixture
def bench_experiment(benchmark):
    """Benchmark one experiment once and return its result."""
    def runner(exp_id: str):
        return benchmark.pedantic(
            run_experiment, args=(exp_id,), rounds=1, iterations=1)
    return runner
