"""Benchmark: regenerate paper Figure 2 (window-size tradeoff)."""


def test_fig02_window_tradeoff(bench_experiment):
    result = bench_experiment("fig02")
    libq = result.series["libquantum"]
    gcc = result.series["gcc"]
    assert libq["fixed"][2] > 1.3          # big window pays for memory
    assert gcc["fixed"][2] < 1.0           # and costs ILP for compute
    assert gcc["ideal"][2] > gcc["fixed"][2]
    print()
    print(result.as_text())
