"""Benchmark: regenerate paper Figure 8 (level residency)."""


def test_fig08_level_residency(bench_experiment):
    result = bench_experiment("fig08")
    assert result.series["libquantum"][2] > 0.8
    assert result.series["gcc"][0] > 0.5
    print()
    print(result.as_text())
