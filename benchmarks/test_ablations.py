"""Benchmarks: the design-choice ablations DESIGN.md calls out."""


def test_ablation_transition_penalty(bench_experiment):
    result = bench_experiment("ablation_penalty")
    assert result.series["gm_penalty_30"] > 0.95   # paper: <= 1.3% loss
    print()
    print(result.as_text())


def test_ablation_policies(bench_experiment):
    result = bench_experiment("ablation_policies")
    assert result.series["gm_mlp"] >= result.series["gm_occupancy"]
    assert result.series["gm_mlp"] >= result.series["gm_contribution"]
    print()
    print(result.as_text())


def test_ablation_shrink_timer(bench_experiment):
    result = bench_experiment("ablation_shrink")
    # the paper's one-memory-latency timer is near-optimal
    best = max(v for k, v in result.series.items() if k.startswith("gm_x"))
    assert result.series["gm_x1"] > 0.93 * best
    print()
    print(result.as_text())


def test_ablation_max_level(bench_experiment):
    result = bench_experiment("ablation_maxlevel")
    assert result.series["gm_max3"] >= result.series["gm_max1"]
    print()
    print(result.as_text())


def test_ablation_level4(bench_experiment):
    result = bench_experiment("ablation_level4")
    # diminishing returns: level 4's gain over level 3 is smaller than
    # level 3's gain over the base
    gain4 = result.series["gm_max4"] / result.series["gm_max3"]
    gain3 = result.series["gm_max3"]
    assert gain4 < gain3
    print()
    print(result.as_text())


def test_ablation_rcst(bench_experiment):
    result = bench_experiment("ablation_rcst")
    # both variants must stay sane; the paper notes the prediction is
    # hard, so no direction is asserted
    assert result.series["gm_with"] > 0.8
    assert result.series["gm_without"] > 0.8
    print()
    print(result.as_text())


def test_ablation_writeback(bench_experiment):
    result = bench_experiment("ablation_writeback")
    # the headline conclusion survives writeback bandwidth
    assert result.series["gm_with_wb"] > 0.85 * result.series["gm_no_wb"]
    assert result.series["gm_with_wb"] > 1.2
    print()
    print(result.as_text())


def test_ablation_prefetcher(bench_experiment):
    result = bench_experiment("ablation_prefetcher")
    # the window pays under every prefetcher family
    for kind in ("none", "nextline", "stream", "stride"):
        assert result.series[f"gm_dyn_{kind}"] > 1.3
    print()
    print(result.as_text())


def test_ablation_dram(bench_experiment):
    result = bench_experiment("ablation_dram")
    # the window pays under both DRAM models; the magnitude differs
    assert result.series["gm_flat"] > 1.3
    assert result.series["gm_banked"] > 1.1
    print()
    print(result.as_text())


def test_ablation_multicore(bench_experiment):
    result = bench_experiment("ablation_multicore")
    # chip-level speedup on the memory-heavy mixes, neutral on compute
    assert result.series["mem4"] > 1.15
    assert result.series["comp4"] > 0.9
    print()
    print(result.as_text())


def test_ablation_seeds(bench_experiment):
    result = bench_experiment("ablation_seeds")
    for seed in (1, 2, 3):
        series = result.series[f"seed{seed}"]
        assert series["mem"] > 1.2, f"seed {seed}"
        assert 0.85 < series["comp"] < 1.15, f"seed {seed}"
    print()
    print(result.as_text())
