"""Benchmark: regenerate paper Figure 9 (1/EDP energy efficiency)."""


def test_fig09_energy(bench_experiment):
    result = bench_experiment("fig09")
    assert result.series["gm_mem"] > 1.1       # paper: 1.36
    assert result.series["gm_all"] > 1.0       # paper: 1.08
    print()
    print(result.as_text())
