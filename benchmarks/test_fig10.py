"""Benchmark: regenerate paper Figure 10 (enlarged L2 comparison)."""


def test_fig10_enlarged_l2(bench_experiment):
    result = bench_experiment("fig10")
    assert result.series["gm_l2"] < 1.1
    assert result.series["gm_dyn"] > result.series["gm_l2"] + 0.1
    print()
    print(result.as_text())
