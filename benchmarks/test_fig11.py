"""Benchmark: regenerate paper Figure 11 (cache pollution breakdown)."""


def test_fig11_cache_pollution(bench_experiment):
    result = bench_experiment("fig11")
    for program in ("libquantum", "gcc"):
        series = result.series[program]
        assert series["resize_total"] < 1.6
    print()
    print(result.as_text())
