"""Benchmark: regenerate paper Figure 4 (L2 miss interval histogram)."""


def test_fig04_miss_intervals(bench_experiment):
    result = bench_experiment("fig04")
    assert result.series["fraction_below_64"] > 0.4
    assert 200 <= result.series["late_peak_bin_low"] <= 420
    print()
    print(result.as_text())
