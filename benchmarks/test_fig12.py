"""Benchmark: regenerate paper Figure 12 (runahead comparison)."""


def test_fig12_runahead(bench_experiment):
    result = bench_experiment("fig12")
    assert result.series["gm_dyn_mem"] > result.series["gm_runahead_mem"]
    assert result.series["gm_runahead_mem"] > 1.0
    print()
    print(result.as_text())
