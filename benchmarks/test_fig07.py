"""Benchmark: regenerate paper Figure 7 (the headline performance
comparison: Fix L1-L3, dynamic resizing, ideal)."""


def test_fig07_performance(bench_experiment):
    result = bench_experiment("fig07")
    assert result.series["gm_mem"] > 1.25      # paper: 1.48
    assert 0.9 < result.series["gm_comp"] < 1.15   # paper: 1.04
    assert result.series["gm_all"] > 1.1       # paper: 1.21
    for program, row in result.series["per_program"].items():
        assert row["res"] >= 0.8 * row["fixed_best"], program
    print()
    print(result.as_text())
