"""Experiment harnesses: every paper figure/table runs and reproduces
its headline claim at small scale."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import (
    ExperimentResult,
    Settings,
    Sweep,
    render_table,
)

SMALL = Settings(all_programs=False, warmup=2_000, measure=6_000)


@pytest.fixture(scope="module")
def sweep():
    return Sweep(SMALL)


def run_exp(exp_id, sweep):
    import importlib
    module = importlib.import_module(EXPERIMENTS[exp_id])
    return module.run(sweep=sweep)


class TestInfrastructure:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_result_as_text(self):
        res = ExperimentResult(exp_id="x", title="t", headers=["h"],
                               rows=[["v"]], notes=["n"])
        text = res.as_text()
        assert "== x: t ==" in text and "note: n" in text

    def test_sweep_caches_runs(self, sweep):
        a = sweep.base("gcc")
        b = sweep.base("gcc")
        assert a is b

    def test_settings_program_selection(self):
        assert len(Settings(all_programs=True).programs()) == 28
        assert len(SMALL.programs()) == 14

    def test_experiment_registry_complete(self):
        for exp_id in ("fig02", "fig04", "fig07", "fig08", "fig09",
                       "fig10", "fig11", "fig12", "table3", "table4",
                       "table5"):
            assert exp_id in EXPERIMENTS


class TestFig02:
    def test_tradeoff_shape(self, sweep):
        res = run_exp("fig02", sweep)
        libq = res.series["libquantum"]
        gcc = res.series["gcc"]
        # memory-intensive: monotone gain with level
        assert libq["fixed"][2] > libq["fixed"][0] * 1.3
        # compute-intensive: the pipelined window hurts ...
        assert gcc["fixed"][1] < 0.97
        # ... but the non-pipelined (ideal) window does not
        assert gcc["ideal"][1] > 0.95


class TestFig04:
    def test_misses_cluster(self, sweep):
        res = run_exp("fig04", sweep)
        assert res.series["samples"] > 50
        assert res.series["fraction_below_64"] > 0.4
        # the paper's secondary peak near the 300-cycle memory latency
        assert 200 <= res.series["late_peak_bin_low"] <= 420


class TestTable3:
    def test_categories_agree(self, sweep):
        res = run_exp("table3", sweep)
        assert res.series["agreement"] >= 0.9


class TestFig07:
    def test_headline(self, sweep):
        res = run_exp("fig07", sweep)
        assert res.series["gm_mem"] > 1.25       # paper: 1.48
        assert 0.9 < res.series["gm_comp"] < 1.15  # paper: 1.04
        assert res.series["gm_all"] > 1.1        # paper: 1.21

    def test_resizing_tracks_best_fixed(self, sweep):
        res = run_exp("fig07", sweep)
        for program, row in res.series["per_program"].items():
            assert row["res"] >= 0.8 * row["fixed_best"], program


class TestFig08:
    def test_residency_split(self, sweep):
        res = run_exp("fig08", sweep)
        assert res.series["libquantum"][2] > 0.8     # level 3 dominates
        assert res.series["gcc"][0] > 0.5            # level 1 dominates


class TestFig09:
    def test_energy_efficiency(self, sweep):
        res = run_exp("fig09", sweep)
        assert res.series["gm_mem"] > 1.1           # paper: 1.36
        assert 0.8 < res.series["gm_comp"] <= 1.05  # paper: 0.92
        assert res.series["gm_all"] > 1.0           # paper: 1.08


class TestFig10:
    def test_l2_loses_to_window(self, sweep):
        res = run_exp("fig10", sweep)
        assert res.series["gm_l2"] < 1.1
        assert res.series["gm_dyn"] > res.series["gm_l2"] + 0.1


class TestFig11:
    def test_pollution_limited(self, sweep):
        res = run_exp("fig11", sweep)
        for program in ("libquantum", "gcc"):
            series = res.series[program]
            # resizing brings at most modestly more lines than base
            assert series["resize_total"] < 1.6
            wrong = (series["resize"]["wrongpath_useful"]
                     + series["resize"]["wrongpath_useless"])
            assert wrong < 0.3


class TestTable4:
    def test_cost_accounting(self, sweep):
        res = run_exp("table4", sweep)
        assert res.series["extra_mm2"] == pytest.approx(1.6)
        assert res.series["vs_base_core"] == pytest.approx(0.064)
        assert res.series["pollack"] < 0.05
        assert res.series["speedup"] - 1 > res.series["pollack"] * 2


class TestTable5:
    def test_distances_ordered(self, sweep):
        res = run_exp("table5", sweep)
        # branchy programs mispredict far more often than streaming ones
        assert res.series["gobmk"] < res.series["GemsFDTD"]
        assert res.series["sjeng"] < res.series["libquantum"]


class TestFig12:
    def test_resizing_beats_runahead_on_average(self, sweep):
        res = run_exp("fig12", sweep)
        assert res.series["gm_dyn_mem"] > res.series["gm_runahead_mem"]
        assert res.series["gm_runahead_mem"] > 1.0   # runahead does help


class TestAblations:
    def test_transition_penalty_insensitive(self, sweep):
        res = run_exp("ablation_penalty", sweep)
        # paper: <= 1.3% loss at 30 cycles; allow a little sample noise
        assert res.series["gm_penalty_30"] > 0.95

    def test_max_level_monotone_on_memory(self, sweep):
        res = run_exp("ablation_maxlevel", sweep)
        assert res.series["gm_max3"] >= res.series["gm_max1"]
