"""Dynamic window resizing integrated with the pipeline."""

import pytest

from repro.config import base_config, dynamic_config, fixed_config
from repro.pipeline import Processor, simulate

from tests.conftest import (
    DATA_BASE,
    ialu,
    load,
    make_trace,
    warm_icache,
)


def missing_burst_trace(n_bursts=6, loads_per_burst=10, gap_ops=400):
    """Clusters of missing loads separated by long compute stretches —
    the access pattern the controller is designed for."""
    ops = []
    idx = 0
    addr = DATA_BASE + 0x100000
    for burst in range(n_bursts):
        for i in range(loads_per_burst):
            ops.append(load(idx, dst=1 + (i % 8), addr=addr))
            addr += 0x10000
            idx += 1
        for i in range(gap_ops):
            ops.append(ialu(idx, dst=1 + (i % 8)))
            idx += 1
    return ops


class TestLevelTransitions:
    def _run_dynamic(self, ops, max_level=3):
        proc = Processor(dynamic_config(max_level), make_trace(ops))
        warm_icache(proc)
        proc.run(until_committed=len(ops))
        return proc

    def test_misses_raise_level(self):
        proc = self._run_dynamic(missing_burst_trace())
        assert proc.stats.enlarge_transitions >= 1
        assert 3 in proc.stats.level_cycles

    def test_quiet_period_lowers_level(self):
        proc = self._run_dynamic(missing_burst_trace(gap_ops=3000))
        assert proc.stats.shrink_transitions >= 1
        assert proc.stats.level_cycles.get(1, 0) > 0

    def test_compute_only_stays_level1(self):
        ops = [ialu(i, dst=1 + (i % 8)) for i in range(2000)]
        proc = self._run_dynamic(ops)
        assert proc.stats.enlarge_transitions == 0
        assert proc.stats.level_cycles == {1: proc.stats.cycles}

    def test_level_capped_at_max(self):
        proc = self._run_dynamic(missing_burst_trace(), max_level=2)
        assert 3 not in proc.stats.level_cycles
        assert proc.window.iq.max_capacity == 160

    def test_transition_penalty_stalls_allocation(self):
        proc = self._run_dynamic(missing_burst_trace())
        assert proc.stats.transition_stall_cycles >= \
            10 * proc.stats.enlarge_transitions

    def test_occupancy_bounded_by_current_capacity(self):
        proc = self._run_dynamic(missing_burst_trace())
        # closing invariant; violations would have raised in allocate()
        assert proc.window.rob.peak_occupancy <= proc.window.rob.max_capacity


class TestModelEquivalences:
    def test_dynamic_max1_equals_fixed1(self, gcc_trace):
        """With max level 1 the controller can never act: timing must be
        bit-identical to the fixed base processor."""
        a = simulate(fixed_config(1), gcc_trace, warmup=2000, measure=5000)
        b = simulate(dynamic_config(1), gcc_trace, warmup=2000, measure=5000)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_dynamic_tracks_best_fixed_memory(self, libquantum_trace):
        fix1 = simulate(fixed_config(1), libquantum_trace,
                        warmup=2000, measure=6000)
        fix3 = simulate(fixed_config(3), libquantum_trace,
                        warmup=2000, measure=6000)
        dyn = simulate(dynamic_config(3), libquantum_trace,
                       warmup=2000, measure=6000)
        assert fix3.ipc > 1.3 * fix1.ipc          # window pays here
        assert dyn.ipc > 0.85 * fix3.ipc          # resizing keeps most

    def test_dynamic_tracks_base_compute(self, gcc_trace):
        fix1 = simulate(fixed_config(1), gcc_trace, warmup=2000,
                        measure=6000)
        fix3 = simulate(fixed_config(3), gcc_trace, warmup=2000,
                        measure=6000)
        dyn = simulate(dynamic_config(3), gcc_trace, warmup=2000,
                       measure=6000)
        assert fix3.ipc < 0.95 * fix1.ipc          # pipelining hurts here
        assert dyn.ipc > 0.9 * fix1.ipc            # resizing avoids it

    def test_level_residency_sums_to_one(self, omnetpp_trace):
        dyn = simulate(dynamic_config(3), omnetpp_trace, warmup=2000,
                       measure=6000)
        assert sum(dyn.level_residency.values()) == pytest.approx(1.0)
