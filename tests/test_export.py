"""CSV/JSON export of experiment results."""

import csv
import json

from repro.experiments.export import (
    export_results,
    result_to_csv,
    series_to_json,
)
from repro.experiments.runner import ExperimentResult


def sample_result():
    return ExperimentResult(
        exp_id="figX", title="demo", headers=["program", "ipc"],
        rows=[["gcc", "1.23"], ["mcf", "0.45"]],
        notes=["a note"], series={"gm": 1.1, "nested": {"a": 2}})


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = result_to_csv(sample_result(), tmp_path / "out.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "# a note"
        rows = list(csv.reader(lines[1:]))
        assert rows[0] == ["program", "ipc"]
        assert rows[1] == ["gcc", "1.23"]
        assert rows[2] == ["mcf", "0.45"]

    def test_creates_directories(self, tmp_path):
        path = result_to_csv(sample_result(),
                             tmp_path / "deep" / "dir" / "out.csv")
        assert path.exists()


class TestJSON:
    def test_series_exported(self, tmp_path):
        path = series_to_json(sample_result(), tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["exp_id"] == "figX"
        assert payload["series"]["gm"] == 1.1
        assert payload["series"]["nested"]["a"] == 2


class TestCampaign:
    def test_export_results(self, tmp_path):
        a = sample_result()
        b = sample_result()
        b.exp_id = "tableY"
        written = export_results([a, b], tmp_path)
        assert len(written) == 4
        names = {p.name for p in written}
        assert names == {"figX.csv", "figX.json", "tableY.csv",
                         "tableY.json"}

    def test_cli_csv_dir(self, tmp_path):
        from repro.experiments.__main__ import main
        code = main(["--selected", "--measure", "2000", "--warmup", "500",
                     "--only", "table4", "--csv-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table4.csv").exists()
        assert (tmp_path / "table4.json").exists()
