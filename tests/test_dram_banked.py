"""Bank/row-aware DRAM model."""

import pytest

from repro.config import MemoryConfig
from repro.memory.dram_banked import BankedMemory


def banked(**kw):
    defaults = dict(line_bytes=64, num_banks=8, row_bytes=8192,
                    row_hit_latency=120, row_miss_latency=200, precharge=60)
    defaults.update(kw)
    return BankedMemory(MemoryConfig(), **defaults)


class TestMapping:
    def test_line_interleaved_banks(self):
        mem = banked()
        banks = {mem._map(i * 64)[0] for i in range(8)}
        assert banks == set(range(8))

    def test_row_above_bank_bits(self):
        mem = banked()
        bank_a, row_a = mem._map(0)
        bank_b, row_b = mem._map(8192 * 8)    # one full row per bank later
        assert row_b == row_a + 1

    def test_power_of_two_banks_required(self):
        with pytest.raises(ValueError):
            banked(num_banks=6)


class TestTiming:
    def test_calibrated_floor(self):
        """An uncontended row hit costs exactly the flat model's
        min_latency."""
        mem = banked()
        mem.schedule(0, addr=0x0)            # opens the row
        for bank in mem.banks:
            bank.busy_until = 0              # quiesce, keep the open row
        mem._channel_free = 0
        done = mem.schedule(5000, addr=0x0)  # row hit
        assert done == 5000 + MemoryConfig().min_latency

    def test_row_miss_slower_than_hit(self):
        mem = banked()
        first = mem.schedule(0, addr=0x0)            # row miss
        second = mem.schedule(2000, addr=0x40)       # different bank, miss
        third = mem.schedule(4000, addr=0x0 + 8192 * 8 * 0)  # same row, hit
        assert third - 4000 < first - 0

    def test_row_conflict_slowest(self):
        mem = banked(reorder_depth=1)
        mem.schedule(0, addr=0x0)
        hit = mem.schedule(2000, addr=0x0) - 2000
        conflict = mem.schedule(4000, addr=8192 * 8) - 4000  # same bank, new row
        assert conflict > hit
        assert mem.row_conflicts == 1

    def test_different_banks_overlap(self):
        """Two misses to different banks overlap their access phases;
        two to the same bank serialise."""
        two_banks = banked()
        a = two_banks.schedule(0, addr=0x0)
        b = two_banks.schedule(0, addr=0x40)          # next bank
        same_bank = banked()
        c = same_bank.schedule(0, addr=0x0)
        d = same_bank.schedule(0, addr=64 * 8)        # same bank, same row
        assert b - a < d - c

    def test_channel_serialises_transfers(self):
        mem = banked()
        done = [mem.schedule(0, addr=0x40 * i) for i in range(8)]
        gaps = [b - a for a, b in zip(done, done[1:])]
        assert all(g >= mem.transfer_cycles for g in gaps)

    def test_stats_and_reset(self):
        mem = banked()
        mem.schedule(0, addr=0x0)
        mem.schedule(1000, addr=0x0)
        assert mem.requests == 2
        assert mem.row_hit_rate() == 0.5
        mem.reset()
        assert mem.requests == 0 and mem.row_hit_rate() == 0.0

    def test_queue_delay(self):
        mem = banked()
        assert mem.queue_delay(0) == 0
        mem.schedule(0, addr=0x0)
        assert mem.queue_delay(0) > 0


class TestIntegration:
    def test_simulation_runs_banked(self):
        from dataclasses import replace
        from repro.config import base_config
        from repro.pipeline import simulate
        from repro.workloads import generate_trace, profile
        config = replace(base_config(), memory=replace(
            base_config().memory, organisation="banked"))
        trace = generate_trace(profile("leslie3d"), n_ops=5000, seed=3)
        res = simulate(config, trace, warmup=1000, measure=3000)
        assert res.ipc > 0
        assert res.memory_stats["row_hit_rate"] > 0

    def test_unknown_organisation_rejected(self):
        from dataclasses import replace
        from repro.config import base_config
        from repro.memory import MemoryHierarchy
        config = replace(base_config(), memory=replace(
            base_config().memory, organisation="quantum"))
        with pytest.raises(ValueError, match="unknown memory"):
            MemoryHierarchy(config)
