"""Examples: every script imports cleanly and declares a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), \
        f"{path.name} must define main()"
    assert module.__doc__, f"{path.name} must carry a docstring"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "memory_wall", "phase_adaptivity",
            "custom_policy", "runahead_vs_window", "cpi_stacks",
            "timeline", "kernel_study", "four_core_chip"} <= names
