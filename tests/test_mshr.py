"""MSHR file: merging, occupancy, full-file backpressure."""

import pytest

from repro.memory import MSHRFile


class TestMSHR:
    def test_requires_entry(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_lookup_miss(self):
        m = MSHRFile(4)
        assert m.lookup(0x100) is None

    def test_allocate_and_lookup(self):
        m = MSHRFile(4)
        m.allocate(0x100, completion=50)
        assert m.lookup(0x100) == 50
        assert m.allocations == 1

    def test_merge_counts(self):
        m = MSHRFile(4)
        m.allocate(0x100, 50)
        assert m.merge(0x100) == 50
        assert m.merges == 1

    def test_occupancy_reaps_expired(self):
        m = MSHRFile(4)
        m.allocate(0x100, 50)
        m.allocate(0x200, 80)
        assert m.occupancy(cycle=10) == 2
        assert m.occupancy(cycle=60) == 1
        assert m.occupancy(cycle=100) == 0

    def test_allocate_delay_when_free(self):
        m = MSHRFile(2)
        assert m.allocate_delay(cycle=0) == 0

    def test_allocate_delay_when_full(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.allocate(0x200, 80)
        assert m.allocate_delay(cycle=10) == 40   # waits for the 50-release
        assert m.full_stalls == 1

    def test_full_then_released(self):
        m = MSHRFile(1)
        m.allocate(0x100, 50)
        assert m.allocate_delay(cycle=60) == 0    # expired by cycle 60

    def test_earliest_release(self):
        m = MSHRFile(4)
        m.allocate(0x100, 90)
        m.allocate(0x200, 40)
        assert m.earliest_release() == 40

    def test_reset(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.merge(0x100)
        m.reset()
        assert m.lookup(0x100) is None
        assert m.merges == 0 and m.allocations == 0

    def test_reallocation_same_line_overwrites(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.allocate(0x100, 70)
        assert m.lookup(0x100) == 70
        assert m.occupancy(0) == 1
