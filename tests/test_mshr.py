"""MSHR file: merging, occupancy, full-file backpressure."""

import pytest

from repro.memory import MSHRFile


class TestMSHR:
    def test_requires_entry(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_lookup_miss(self):
        m = MSHRFile(4)
        assert m.lookup(0x100) is None

    def test_allocate_and_lookup(self):
        m = MSHRFile(4)
        m.allocate(0x100, completion=50)
        assert m.lookup(0x100) == 50
        assert m.allocations == 1

    def test_merge_counts(self):
        m = MSHRFile(4)
        m.allocate(0x100, 50)
        assert m.merge(0x100) == 50
        assert m.merges == 1

    def test_occupancy_reaps_expired(self):
        m = MSHRFile(4)
        m.allocate(0x100, 50)
        m.allocate(0x200, 80)
        assert m.occupancy(cycle=10) == 2
        assert m.occupancy(cycle=60) == 1
        assert m.occupancy(cycle=100) == 0

    def test_allocate_delay_when_free(self):
        m = MSHRFile(2)
        assert m.allocate_delay(cycle=0) == 0

    def test_allocate_delay_when_full(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.allocate(0x200, 80)
        assert m.allocate_delay(cycle=10) == 40   # waits for the 50-release
        assert m.full_stalls == 1

    def test_full_then_released(self):
        m = MSHRFile(1)
        m.allocate(0x100, 50)
        assert m.allocate_delay(cycle=60) == 0    # expired by cycle 60

    def test_earliest_release(self):
        m = MSHRFile(4)
        m.allocate(0x100, 90)
        m.allocate(0x200, 40)
        assert m.earliest_release() == 40

    def test_reset(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.merge(0x100)
        m.reset()
        assert m.lookup(0x100) is None
        assert m.merges == 0 and m.allocations == 0

    def test_reallocation_same_line_overwrites(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.allocate(0x100, 70)
        assert m.lookup(0x100) == 70
        assert m.occupancy(0) == 1


class TestCapacityEnforcement:
    """allocate() guards the ``entries`` bound instead of trusting callers."""

    def test_full_file_raises(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50)
        m.allocate(0x200, 80)
        with pytest.raises(RuntimeError):
            m.allocate(0x300, 90)

    def test_full_file_raises_with_claim_cycle(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50, cycle=0)
        m.allocate(0x200, 80, cycle=0)
        with pytest.raises(RuntimeError):
            m.allocate(0x300, 90, cycle=10)

    def test_claim_after_release_is_legal(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50, cycle=0)
        m.allocate(0x200, 80, cycle=0)
        # at cycle 50 the first entry has released its slot
        m.allocate(0x300, 120, cycle=50)
        assert m.lookup(0x300) == 120

    def test_merge_then_allocate_same_line(self):
        """Refreshing a line that is still in flight consumes no new
        entry, so it must be legal even when the file is otherwise full."""
        m = MSHRFile(2)
        m.allocate(0x100, 50, cycle=0)
        m.allocate(0x200, 80, cycle=0)
        assert m.merge(0x100) == 50
        m.allocate(0x100, 60, cycle=10)     # refresh of a live line
        assert m.lookup(0x100) == 60

    def test_enforcement_does_not_reap(self):
        """The cycle-based bound check must not mutate the pending dict
        (reap-sensitive callers observe it)."""
        m = MSHRFile(4)
        m.allocate(0x100, 50)
        m.allocate(0x200, 90, cycle=60)     # 0x100 expired but not reaped
        assert m.lookup(0x100) == 50        # stale entry still visible


class TestQueuedClaims:
    """Over-capacity claims queue: the k-th waits for the k-th release."""

    def test_successive_claims_get_distinct_releases(self):
        m = MSHRFile(2)
        m.allocate(0x100, 50, cycle=0)
        m.allocate(0x200, 80, cycle=0)
        w1 = m.allocate_delay(cycle=10)
        assert w1 == 40                     # first waits for the 50-release
        m.allocate(0x300, 200, cycle=10 + w1)
        w2 = m.allocate_delay(cycle=10)
        assert w2 == 70                     # second waits for the 80-release
        m.allocate(0x400, 220, cycle=10 + w2)
        assert m.full_stalls == 2

    def test_in_flight_vs_reserved(self):
        """A queued claim reserves capacity before it holds an entry."""
        m = MSHRFile(1)
        m.allocate(0x100, 50, cycle=0)
        wait = m.allocate_delay(cycle=10)
        m.allocate(0x200, 150, cycle=10 + wait)
        # before the release: one entry held, two reserved
        assert m.in_flight(20) == 1
        assert m.reserved(20) == 2
        # after the release: the queued claim holds the entry
        assert m.in_flight(60) == 1
        assert m.reserved(60) == 1

    def test_queries_are_pure(self):
        m = MSHRFile(1)
        m.allocate(0x100, 50)
        for __ in range(3):
            assert not m.has_room(cycle=10)
            assert m.in_flight(10) == 1
            assert m.reserved(10) == 1
        assert m.full_stalls == 0           # only allocate_delay records
        assert m.has_room(cycle=60)         # released by then
