"""Workload generator: structure, determinism, parameter fidelity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import OpClass
from repro.workloads import (
    MemoryBehavior,
    PhaseSpec,
    ProgramProfile,
    TraceGenerator,
    generate_trace,
    profile,
)


_ALIASES = {"load": "load_frac", "store": "store_frac", "fp": "fp_frac",
            "chain": "chain_depth", "noisy": "noisy_branch_frac",
            "bias": "bias_taken_prob"}


def simple_profile(**overrides):
    phase_args = dict(name="p", length=2000, load_frac=0.3, store_frac=0.1,
                      chain_depth=2, noisy_branch_frac=0.1)
    for key, value in overrides.items():
        phase_args[_ALIASES.get(key, key)] = value
    return ProgramProfile(name="synthetic", category="int",
                          memory_intensive=False,
                          phases=(PhaseSpec(**phase_args),))


class TestValidation:
    def test_phase_too_short(self):
        with pytest.raises(ValueError, match="shorter than one"):
            PhaseSpec(name="p", length=10)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            PhaseSpec(name="p", length=2000, load_frac=0.8, store_frac=0.5)

    def test_chain_depth(self):
        with pytest.raises(ValueError):
            PhaseSpec(name="p", length=2000, chain_depth=0)

    def test_profile_needs_phases(self):
        with pytest.raises(ValueError):
            ProgramProfile(name="x", category="int", memory_intensive=False,
                           phases=())

    def test_profile_category(self):
        with pytest.raises(ValueError):
            ProgramProfile(name="x", category="weird",
                           memory_intensive=False,
                           phases=(PhaseSpec(name="p", length=2000),))

    def test_memory_weights_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryBehavior(stride=0, chase=0, scatter=0, hot=0).weights()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(simple_profile(), 3000, seed=5)
        b = generate_trace(simple_profile(), 3000, seed=5)
        assert len(a.ops) == len(b.ops)
        for x, y in zip(a.ops, b.ops):
            assert (x.pc, x.op, x.dst, x.srcs, x.addr, x.taken, x.target) \
                == (y.pc, y.op, y.dst, y.srcs, y.addr, y.taken, y.target)

    def test_different_seed_differs(self):
        a = generate_trace(simple_profile(), 3000, seed=5)
        b = generate_trace(simple_profile(), 3000, seed=6)
        assert any(x.addr != y.addr for x, y in zip(a.ops, b.ops)
                   if x.op is OpClass.LOAD and y.op is OpClass.LOAD)


class TestStructure:
    def test_exact_length(self):
        trace = generate_trace(simple_profile(), 4321, seed=1)
        assert len(trace.ops) == 4321

    def test_load_fraction_approximate(self):
        trace = generate_trace(simple_profile(load=0.3), 8000, seed=1)
        assert 0.2 <= trace.load_fraction() <= 0.4

    def test_branch_fraction(self):
        trace = generate_trace(simple_profile(blocks=4, block_ops=12),
                               8000, seed=1)
        branches = sum(1 for op in trace.ops if op.is_branch)
        # one branch per 13 slots
        assert branches == pytest.approx(8000 / 13, rel=0.15)

    def test_pcs_repeat_loop_structure(self):
        """Static PCs recur — the predictors and prefetcher rely on it."""
        trace = generate_trace(simple_profile(), 4000, seed=1)
        pcs = {op.pc for op in trace.ops}
        assert len(pcs) < 200

    def test_same_pc_same_opclass(self):
        trace = generate_trace(simple_profile(), 4000, seed=1)
        kind_by_pc = {}
        for op in trace.ops:
            assert kind_by_pc.setdefault(op.pc, op.op) == op.op

    def test_loopback_branch_taken(self):
        trace = generate_trace(simple_profile(noisy_branch_frac=0.0,
                                              bias=0.0), 4000, seed=1)
        backward = [op for op in trace.ops
                    if op.is_branch and op.target < op.pc]
        assert backward
        assert all(op.taken for op in backward)

    def test_mem_ops_have_addresses(self):
        trace = generate_trace(simple_profile(), 4000, seed=1)
        for op in trace.ops:
            if op.is_mem:
                assert op.addr > 0 and op.size == 8
            else:
                assert op.addr == 0


def simple_bias_profile(bias):
    return simple_profile(noisy_branch_frac=0.0, bias=bias)


def simple_profile_with(name="p", **kw):
    return simple_profile(**kw)


class TestKnobs:
    def test_bias_controls_taken_rate(self):
        high = generate_trace(simple_bias_profile(0.3), 8000, seed=1)
        low = generate_trace(simple_bias_profile(0.0), 8000, seed=1)

        def taken_rate(trace):
            cond = [op for op in trace.ops
                    if op.is_branch and op.target >= op.pc]
            return sum(op.taken for op in cond) / max(1, len(cond))
        assert taken_rate(high) > 0.15
        assert taken_rate(low) == 0.0

    def test_streaming_addresses_advance(self):
        prof = simple_profile(mem=MemoryBehavior(
            stride=1.0, hot=0.0, stream_bytes=1 << 20, stride_bytes=8))
        trace = generate_trace(prof, 4000, seed=1)
        by_pc = {}
        for op in trace.ops:
            if op.is_load:
                by_pc.setdefault(op.pc, []).append(op.addr)
        streams = [a for a in by_pc.values() if len(a) > 4]
        assert streams
        for addrs in streams:
            deltas = {b - a for a, b in zip(addrs, addrs[1:])}
            assert deltas <= {8}     # constant per-PC stride

    def test_chase_loads_serialise(self):
        prof = simple_profile(mem=MemoryBehavior(
            chase=1.0, hot=0.0, working_set_bytes=1 << 20))
        trace = generate_trace(prof, 4000, seed=1)
        chase = [op for op in trace.ops if op.is_load]
        assert chase
        # every chase load reads the register the previous one wrote
        for op in chase:
            assert op.dst in op.srcs or op.srcs == (op.dst,) or \
                op.srcs[0] == chase[0].dst

    def test_fp_fraction(self):
        prof = simple_profile(fp=0.9)
        trace = generate_trace(prof, 6000, seed=1)
        arith = [op for op in trace.ops
                 if op.op in (OpClass.IALU, OpClass.IMUL, OpClass.FPALU,
                              OpClass.FPMUL)]
        fp = [op for op in arith
              if op.op in (OpClass.FPALU, OpClass.FPMUL)]
        assert len(fp) / len(arith) > 0.6

    def test_warm_regions_declared(self):
        trace = generate_trace(profile("gcc"), 3000, seed=1)
        assert trace.warm_regions
        for base, size, l1_too in trace.warm_regions:
            assert base > 0 and size > 0
            assert isinstance(l1_too, bool)


class TestGeneratorProperties:
    @given(load=st.floats(0.05, 0.4), store=st.floats(0.0, 0.2),
           chain=st.integers(1, 5), n=st.integers(500, 3000))
    @settings(max_examples=15, deadline=None)
    def test_any_reasonable_phase_generates(self, load, store, chain, n):
        prof = simple_profile(load=round(load, 2), store=round(store, 2),
                              chain=chain)
        trace = generate_trace(prof, n, seed=1)
        assert len(trace.ops) == n
        for op in trace.ops:
            assert op.pc > 0
            if op.is_branch:
                assert op.target > 0


def simple_profile_load(**kw):
    return simple_profile(**kw)
