"""RISC-V trace ingestion frontend: decoder, codecs, adapter, registry."""

import os

import pytest

from repro.config import dynamic_config
from repro.experiments.cache import result_key
from repro.isa import OpClass, REG_INVALID
from repro.workloads import (UnknownProgramError, ensure_program,
                             known_program, profile, program_cache_identity,
                             trace_for_program)
from repro.workloads.riscv import (RiscvTraceProgram, RvInsn,
                                   TraceFormatError, build_kernel,
                                   content_hash, kernel_names,
                                   load_corpus_program, pack, parse_text,
                                   render_text, riscv_program_names,
                                   to_micro_op, unpack)
from repro.workloads.riscv import corpus as corpus_mod
from repro.workloads.riscv.format import validate_insn


def _validated(insn: RvInsn) -> RvInsn:
    validate_insn(insn)
    return insn


# ---------------------------------------------------------------- decoder


class TestDecoder:
    def test_load_decodes_with_size_and_address(self):
        op = to_micro_op(_validated(
            RvInsn(0x400000, "lw", rd=6, rs1=5, addr=0x80001000)))
        assert op.op is OpClass.LOAD and op.is_load
        assert op.dst == 6 and op.srcs == (5,)
        assert op.addr == 0x80001000 and op.size == 4

    def test_store_has_no_destination(self):
        op = to_micro_op(_validated(
            RvInsn(0x400000, "sd", rs1=5, rs2=6, addr=0x80001000)))
        assert op.op is OpClass.STORE and op.dst == REG_INVALID
        assert set(op.srcs) == {5, 6} and op.size == 8

    def test_x0_creates_no_dependences(self):
        op = to_micro_op(_validated(RvInsn(0x400000, "addi", rd=0, rs1=0)))
        assert op.dst == REG_INVALID and op.srcs == ()

    def test_branch_taken_and_fallthrough_targets(self):
        taken = to_micro_op(_validated(
            RvInsn(0x400008, "bne", rs1=5, rs2=0, taken=True,
                   target=0x400000)))
        assert taken.is_branch and taken.taken and taken.target == 0x400000
        not_taken = to_micro_op(_validated(
            RvInsn(0x400008, "bne", rs1=5, rs2=0, taken=False,
                   target=0x400000)))
        assert not not_taken.taken
        assert not_taken.target == 0x40000C  # fall-through convention

    def test_jal_is_always_taken_without_link_dependence(self):
        op = to_micro_op(_validated(
            RvInsn(0x400010, "jal", rd=1, target=0x400000)))
        assert op.is_branch and op.taken and op.target == 0x400000
        assert op.dst == REG_INVALID

    def test_op_class_table(self):
        cases = {"mul": OpClass.IMUL, "divu": OpClass.IDIV,
                 "xor": OpClass.IALU, "lbu": OpClass.LOAD,
                 "sb": OpClass.STORE, "beq": OpClass.BRANCH}
        for mnem, cls in cases.items():
            from repro.workloads.riscv.isa import MNEMONIC_CLASS
            assert MNEMONIC_CLASS[mnem] is cls

    def test_unknown_opcode_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown opcode"):
            validate_insn(RvInsn(0x400000, "vadd.vv", rd=1, rs1=2, rs2=3))

    def test_misaligned_load_address_passes_through(self):
        op = to_micro_op(_validated(
            RvInsn(0x400000, "ld", rd=6, rs1=5, addr=0x80001003)))
        assert op.addr == 0x80001003  # no realignment, no rejection

    def test_structural_validation(self):
        with pytest.raises(TraceFormatError, match="without an effective"):
            validate_insn(RvInsn(0x400000, "ld", rd=6, rs1=5))
        with pytest.raises(TraceFormatError, match="out of range"):
            validate_insn(RvInsn(0x400000, "add", rd=32, rs1=1))
        with pytest.raises(TraceFormatError, match="taken flag"):
            validate_insn(RvInsn(0x400000, "beq", rs1=1, rs2=2,
                                 target=0x400010))
        with pytest.raises(TraceFormatError, match="non-branch"):
            validate_insn(RvInsn(0x400000, "add", rd=1, rs1=2, taken=True))


# ----------------------------------------------------------------- codecs


class TestCodecs:
    def test_text_binary_microop_roundtrip(self):
        insns = build_kernel("bsort", 512)
        text = render_text("bsort", insns)
        name, from_text = parse_text(text)
        assert name == "bsort" and from_text == insns
        name2, from_bin = unpack(pack(name, from_text))
        assert name2 == "bsort" and from_bin == insns
        assert content_hash(from_bin) == content_hash(insns)
        ops_a = [to_micro_op(i) for i in insns]
        ops_b = [to_micro_op(i) for i in from_bin]
        for a, b in zip(ops_a, ops_b):
            assert (a.pc, a.op, a.dst, a.srcs, a.addr, a.size, a.taken,
                    a.target) == (b.pc, b.op, b.dst, b.srcs, b.addr,
                                  b.size, b.taken, b.target)

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError, match="empty trace"):
            parse_text("# rvtrace v1 name=void\n")
        with pytest.raises(TraceFormatError, match="empty trace"):
            pack("void", [])

    def test_truncated_packed_record_rejected(self):
        blob = pack("t", build_kernel("matmul", 64))
        with pytest.raises(TraceFormatError):
            unpack(blob[:-3])

    def test_corrupt_magic_and_version_rejected(self):
        blob = pack("t", build_kernel("matmul", 64))
        with pytest.raises(TraceFormatError, match="magic"):
            unpack(b"NOPE" + blob[4:])
        with pytest.raises(TraceFormatError, match="version"):
            unpack(blob[:4] + bytes([99]) + blob[5:])

    def test_text_errors_name_the_line(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_text("# rvtrace v1 name=x\n0x4 addi x1 x0 - - - extra!\n")

    def test_content_hash_tracks_content_not_name(self):
        insns = build_kernel("matmul", 128)
        assert content_hash(insns) == content_hash(list(insns))
        mutated = list(insns)
        mutated[0] = RvInsn(insns[0].pc + 4, insns[0].op, rd=insns[0].rd,
                            rs1=insns[0].rs1, rs2=insns[0].rs2)
        assert content_hash(mutated) != content_hash(insns)


# ---------------------------------------------------------------- kernels


class TestKernels:
    def test_generation_is_deterministic(self):
        for name in kernel_names():
            assert build_kernel(name, 256) == build_kernel(name, 256)

    def test_kernels_have_consistent_control_flow(self):
        for name in kernel_names():
            insns = build_kernel(name, 1024)
            for here, after in zip(insns, insns[1:]):
                if here.target is None:
                    continue
                taken = here.taken if here.taken is not None else True
                expected = here.target if taken else here.pc + 4
                assert after.pc == expected, (name, hex(here.pc))


# ---------------------------------------------------------------- adapter


class TestAdapter:
    def test_trace_is_interchangeable_and_cyclic(self):
        program = RiscvTraceProgram("memcpy", build_kernel("memcpy", 600))
        trace = program.trace(1500, seed=3)
        assert trace.name == "riscv:memcpy" and len(trace.ops) == 1500
        assert trace.ops[600].pc == trace.ops[0].pc  # replay lap
        # wrong-path synthesis works exactly as for generated traces
        wrong = trace.wrong_path.op_at(trace.ops[0].pc, 0)
        assert wrong.pc != 0

    def test_wrong_path_seed_folds_content(self):
        insns = build_kernel("bsort", 400)
        a = RiscvTraceProgram("a", insns).trace(500, seed=1)
        b = RiscvTraceProgram("a", insns).trace(500, seed=1)
        assert a.seed == b.seed
        c = RiscvTraceProgram("a", insns).trace(500, seed=2)
        assert c.seed != a.seed

    def test_footprint_warms_small_regions_only(self):
        hot = RiscvTraceProgram("hot", build_kernel("matmul", 512))
        assert hot.warm_regions and all(l1 for _, _, l1 in hot.warm_regions)
        cold = RiscvTraceProgram("cold", build_kernel("listchase", 512))
        assert cold.data_size > 1 << 20

    def test_empty_program_rejected(self):
        with pytest.raises(TraceFormatError, match="empty trace"):
            RiscvTraceProgram("void", [])


# --------------------------------------------------------------- registry


class TestRegistry:
    def test_corpus_is_committed_and_loadable(self):
        names = riscv_program_names()
        assert set(names) == {f"riscv:{k}" for k in kernel_names()}
        program = load_corpus_program("riscv:memcpy")
        assert program is load_corpus_program("riscv:memcpy")  # memoised

    def test_corpus_matches_generators(self):
        # the committed corpus must stay regenerable bit-for-bit
        for name in kernel_names():
            committed = load_corpus_program(f"riscv:{name}")
            assert committed.content_hash == content_hash(build_kernel(name))

    def test_trace_for_program_dispatches_both_sources(self):
        rv = trace_for_program("riscv:matmul", 800, seed=1)
        assert rv.name == "riscv:matmul" and len(rv.ops) == 800
        synth = trace_for_program("mcf", 800, seed=1)
        assert synth.name == "mcf" and len(synth.ops) == 800

    def test_unknown_names_raise_one_error_type(self):
        for bad in ("nonesuch", "riscv:nonesuch", "adv_nonesuch"):
            with pytest.raises(UnknownProgramError,
                               match="unknown program") as err:
                ensure_program(bad)
            assert "namespaces" in str(err.value)
        # profile() raises the same type (and stays a KeyError)
        with pytest.raises(KeyError, match="unknown program"):
            profile("riscv:memcpy")  # profiles don't own the namespace
        assert known_program("riscv:bsort")
        assert not known_program("riscv:../etc/passwd")

    def test_cache_identity_is_content_addressed(self):
        identity = program_cache_identity("riscv:memcpy")
        program = load_corpus_program("riscv:memcpy")
        assert identity == f"riscv:memcpy@{program.content_hash[:16]}"
        assert program_cache_identity("mcf") == "mcf"
        smt = program_cache_identity("mcf+riscv:bsort")
        assert smt.startswith("mcf+riscv:bsort@")

    def test_result_key_tracks_trace_content(self):
        config = dynamic_config(3)

        def key():
            return result_key("riscv:bsort", config, seed=1, warmup=100,
                              measure=200, trace_ops=400)

        baseline = key()
        assert baseline == key()
        program = load_corpus_program("riscv:bsort")
        mutated = RiscvTraceProgram("riscv:bsort", list(program.insns[:-1])
                                    + [program.insns[0]])
        corpus_mod._memo["riscv:bsort"] = mutated
        try:
            assert key() != baseline
        finally:
            corpus_mod._memo["riscv:bsort"] = program

    def test_corpus_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RISCV_CORPUS", str(tmp_path))
        corpus_mod.clear_corpus_memo()
        try:
            assert riscv_program_names() == ()
            from repro.workloads.riscv.format import dump_file
            dump_file(os.path.join(str(tmp_path), "tiny.rvt"), "tiny",
                      build_kernel("bsort", 64))
            assert riscv_program_names() == ("riscv:tiny",)
            assert len(load_corpus_program("riscv:tiny").insns) == 64
        finally:
            corpus_mod.clear_corpus_memo()


# -------------------------------------------------------------- end-to-end


class TestEndToEnd:
    def test_simulates_on_both_engines_bit_identically(self):
        from repro.pipeline import simulate
        from repro.verify.digest import result_digest
        trace = trace_for_program("riscv:mixed", 2200, seed=1)
        ref = simulate(dynamic_config(3), trace, warmup=400, measure=1500,
                       engine="reference")
        fast = simulate(dynamic_config(3), trace, warmup=400, measure=1500,
                        engine="fast")
        assert result_digest(ref) == result_digest(fast)
        assert ref.program == "riscv:mixed"

    def test_service_accepts_and_keys_riscv_jobs(self):
        from repro.service.jobs import ValidationError, build_spec
        spec = build_spec({"program": "riscv:memcpy", "model": "dynamic",
                           "warmup": 200, "measure": 600})
        assert spec.program == "riscv:memcpy"
        assert spec.key == result_key("riscv:memcpy", spec.config,
                                      seed=spec.seed, warmup=200,
                                      measure=600, trace_ops=spec.trace_ops,
                                      policy=spec.policy)
        with pytest.raises(ValidationError, match="unknown program"):
            build_spec({"program": "riscv:nonesuch"})

    def test_loadgen_defaults_include_riscv(self):
        from repro.service.loadgen import DEFAULT_PROGRAMS, build_job_mix
        assert any(p.startswith("riscv:") for p in DEFAULT_PROGRAMS)
        shapes = build_job_mix(1, len(DEFAULT_PROGRAMS), DEFAULT_PROGRAMS,
                               measure=500, warmup=100)
        assert any(s["program"].startswith("riscv:") for s in shapes)
