"""Runahead engine edge cases beyond the basic behaviour tests."""

import pytest

from repro.config import runahead_config
from repro.pipeline import Processor

from tests.conftest import (
    DATA_BASE,
    ialu,
    load,
    make_trace,
    warm_icache,
)


def build(ops):
    proc = Processor(runahead_config(), make_trace(ops))
    warm_icache(proc)
    return proc


class TestEntryGuards:
    def test_short_remaining_latency_rejected(self):
        """A load whose fill is mostly done must not trigger a flush."""
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        ops += [ialu(1 + i, dst=2, srcs=(1,)) for i in range(10)]
        proc = build(ops)
        engine = proc.runahead
        # run until the load is in flight, then present it near completion
        proc.run(until_committed=0, max_cycles=50)
        head = proc.rob[0] if proc.rob else None
        if head is not None and head.uop.is_load and head.issued:
            near_done = head.complete_cycle - 10
            assert not engine.consider_entry(head, near_done)

    def test_rejected_seq_not_rechecked(self):
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        proc = build(ops)
        engine = proc.runahead

        class FakeOp:
            seq = 42
            complete_cycle = 10_000
            trace_idx = 0

        fake = FakeOp()
        fake.uop = type("U", (), {"pc": 0x400, "is_load": True})()
        engine.rcst.update(0x400, useful=False)
        engine.rcst.update(0x400, useful=False)
        assert not engine.consider_entry(fake, 0)     # RCST suppresses
        suppressions = engine.rcst.suppressions
        assert not engine.consider_entry(fake, 0)     # cached rejection
        assert engine.rcst.suppressions == suppressions

    def test_no_nested_entry(self):
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        proc = build(ops)
        engine = proc.runahead
        engine.active = True
        assert not engine.consider_entry(object(), 0)
        engine.active = False


class TestEpisodeAccounting:
    def _stream(self, n=16, gap=10):
        ops = []
        idx = 0
        for i in range(n):
            ops.append(load(idx, dst=1, addr=DATA_BASE + 0x8000 * i))
            idx += 1
            for j in range(gap):
                ops.append(ialu(idx, dst=2 + (j % 6), srcs=(1,)))
                idx += 1
        return ops

    def test_useful_episodes_find_misses(self):
        proc = build(self._stream())
        proc.run(until_committed=16 * 11)
        engine = proc.runahead
        assert engine.episodes >= 1
        assert engine.useless_episodes < engine.episodes

    def test_exit_clears_runahead_cache(self):
        proc = build(self._stream(n=6))
        proc.run(until_committed=6 * 11)
        engine = proc.runahead
        assert not engine.active
        assert not engine._cache

    def test_stats_monotone(self):
        proc = build(self._stream(n=10))
        proc.run(until_committed=10 * 11)
        engine = proc.runahead
        assert engine.pseudo_retired >= 0
        assert 0 <= engine.useless_episodes <= engine.episodes

    def test_committed_equals_trace_despite_episodes(self):
        ops = self._stream(n=10)
        proc = build(ops)
        proc.run(until_committed=len(ops))
        assert proc.stats.committed_uops == len(ops)
        # pseudo-retired work is NOT architectural commits
        assert proc.committed_total == len(ops)
