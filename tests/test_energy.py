"""Energy and area models."""

import pytest

from repro.config import base_config, dynamic_config, fixed_config
from repro.energy import (
    AREA_BASE_CORE_MM2,
    AREA_SB_CHIP_MM2,
    AreaModel,
    EnergyModel,
    EnergyParams,
)
from repro.pipeline import simulate


@pytest.fixture(scope="module")
def annotated(gcc_trace_module):
    trace = gcc_trace_module
    model = EnergyModel()
    base = simulate(base_config(), trace, warmup=2000, measure=5000)
    dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=5000)
    model.annotate(base, base_config())
    model.annotate(dyn, dynamic_config(3))
    return base, dyn


@pytest.fixture(scope="module")
def gcc_trace_module():
    from repro.workloads import generate_trace, profile
    return generate_trace(profile("gcc"), n_ops=8_000, seed=3)


class TestEnergyModel:
    def test_breakdown_components_positive(self, annotated):
        base, __ = annotated
        bd = EnergyModel().breakdown(base, base_config())
        assert bd.frontend_nj > 0
        assert bd.window_nj > 0
        assert bd.execute_nj > 0
        assert bd.memory_nj > 0
        assert bd.leakage_nj > 0
        assert bd.total_nj == pytest.approx(
            bd.frontend_nj + bd.window_nj + bd.execute_nj + bd.memory_nj
            + bd.leakage_nj)

    def test_annotate_fills_fields(self, annotated):
        base, __ = annotated
        assert base.energy_nj > 0
        assert base.edp == pytest.approx(base.energy_nj * base.cycles)

    def test_requires_raw_stats(self, annotated):
        base, __ = annotated
        stripped = type(base)(**{**base.__dict__, "stats": None})
        with pytest.raises(ValueError):
            EnergyModel().breakdown(stripped, base_config())

    def test_bigger_window_leaks_more(self, annotated):
        """The dynamic model physically provisions 4x window resources;
        at equal runtime its leakage must exceed the base's."""
        base, dyn = annotated
        model = EnergyModel()
        base_bd = model.breakdown(base, base_config())
        dyn_bd = model.breakdown(dyn, dynamic_config(3))
        base_leak_rate = base_bd.leakage_nj / base.cycles
        dyn_leak_rate = dyn_bd.leakage_nj / dyn.cycles
        assert dyn_leak_rate > base_leak_rate

    def test_gated_region_leaks_less_than_active(self):
        p = EnergyParams()
        assert 0 < p.gated_leak_fraction < 1

    def test_inverse_edp_ratio(self, annotated):
        base, dyn = annotated
        ratio = EnergyModel.inverse_edp_ratio(dyn, base)
        assert ratio > 0
        assert ratio == pytest.approx(base.edp / dyn.edp)

    def test_inverse_edp_requires_annotation(self, annotated):
        base, __ = annotated
        blank = type(base)(**{**base.__dict__, "edp": 0.0})
        with pytest.raises(ValueError):
            EnergyModel.inverse_edp_ratio(blank, base)


class TestAreaModel:
    def test_calibrated_to_paper(self):
        report = AreaModel(dynamic_config(3)).report()
        assert report.extra_mm2 == pytest.approx(1.6)
        assert report.vs_base_core == pytest.approx(1.6 / 25.0)
        assert report.vs_sb_core == pytest.approx(1.6 / 19.0)
        assert report.vs_sb_chip == pytest.approx(4 * 1.6 / 216.0)

    def test_pollack_expectation(self):
        report = AreaModel(dynamic_config(3)).report()
        # sqrt(1.064) - 1 ~= 3.2%
        assert 0.025 < report.pollack_expected_speedup < 0.04

    def test_window_area_monotone_in_level(self):
        model = AreaModel(dynamic_config(3))
        a1 = model.window_area_mm2(1)
        a2 = model.window_area_mm2(2)
        a3 = model.window_area_mm2(3)
        assert a1 < a2 < a3

    def test_partial_enlargement_costs_less(self):
        model = AreaModel(dynamic_config(3))
        assert model.extra_area_mm2(2) < model.extra_area_mm2(3)

    def test_l2_area_linear(self):
        assert AreaModel.l2_area_mm2(2 * 1024 * 1024, 4) == \
            pytest.approx(8.6)
        assert AreaModel.l2_area_mm2(4 * 1024 * 1024, 8) == \
            pytest.approx(17.2)

    def test_rejects_degenerate_levels(self):
        from repro.config import ProcessorConfig, ResourceLevel
        one_level = (ResourceLevel(iq_entries=64, rob_entries=128,
                                   lsq_entries=64, iq_depth=1, rob_depth=1,
                                   lsq_depth=1),)
        with pytest.raises(ValueError):
            AreaModel(ProcessorConfig(levels=one_level, level=1))

    def test_report_rows_render(self):
        rows = AreaModel(dynamic_config(3)).report().rows()
        assert any("additional area" in name for name, __ in rows)
