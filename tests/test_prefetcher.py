"""Stride prefetcher: Baer-Chen state machine and 16-data lookahead."""

from repro.config import PrefetcherConfig
from repro.memory import StridePrefetcher


def pf(degree=16, enabled=True):
    return StridePrefetcher(PrefetcherConfig(enabled=enabled, degree=degree),
                            line_bytes=64)


def train_stream(p, pc, start, stride, n, miss=True):
    out = []
    for i in range(n):
        out = p.train(pc, start + i * stride, miss=miss)
    return out


class TestStrideDetection:
    def test_needs_stable_stride(self):
        p = pf()
        assert p.train(0x100, 0x1000, miss=True) == []
        assert p.train(0x100, 0x1040, miss=True) == []   # first stride seen
        # second identical stride -> steady -> prefetch
        assert p.train(0x100, 0x1080, miss=True) != []

    def test_no_prefetch_on_hit(self):
        p = pf()
        train_stream(p, 0x100, 0x1000, 64, 3)
        assert p.train(0x100, 0x10C0, miss=False) == []

    def test_disabled(self):
        p = pf(enabled=False)
        assert train_stream(p, 0x100, 0x1000, 64, 5) == []

    def test_stride_change_resets(self):
        p = pf()
        train_stream(p, 0x100, 0x1000, 64, 4)
        assert p.train(0x100, 0x5000, miss=True) == []   # broken stride

    def test_zero_stride_no_prefetch(self):
        p = pf()
        for _ in range(5):
            out = p.train(0x100, 0x1000, miss=True)
        assert out == []

    def test_negative_stride(self):
        p = pf()
        out = train_stream(p, 0x100, 0x10000, -64, 4)
        assert out
        assert all(a < 0x10000 for a in out)


class TestLookahead:
    def test_sixteen_data_lookahead_small_stride(self):
        """Table 1: '16-data prefetch' — 16 *elements*, so a 16-byte
        stride covers only ~4 lines of lookahead, far short of hiding a
        300-cycle latency (this is why libquantum stays slow)."""
        p = pf(degree=16)
        out = train_stream(p, 0x100, 0x10000, 16, 4)
        # 16 * 16B = 256B of lookahead = at most 5 distinct lines
        assert 4 <= len(out) <= 5
        span = max(out) - min(out)
        assert span <= 256

    def test_line_stride_gives_sixteen_lines(self):
        p = pf(degree=16)
        out = train_stream(p, 0x100, 0x10000, 64, 4)
        assert len(out) == 16

    def test_candidates_are_line_aligned(self):
        p = pf(degree=16)
        out = train_stream(p, 0x100, 0x8, 24, 3)
        assert all(a % 64 == 0 for a in out)

    def test_candidates_deduplicated(self):
        p = pf(degree=16)
        out = train_stream(p, 0x100, 0x0, 8, 3)
        assert len(out) == len(set(out))


class TestTable:
    def test_per_pc_entries_independent(self):
        p = pf()
        train_stream(p, 0x100, 0x0, 64, 4)
        # a different PC with no history must not prefetch yet
        assert p.train(0x200, 0x9000, miss=True) == []

    def test_table_capacity_eviction(self):
        p = StridePrefetcher(
            PrefetcherConfig(table_entries=4, table_assoc=2), line_bytes=64)
        # all PCs map somewhere in 2 sets of 2 ways; flood them
        for pc in range(0x100, 0x100 + 4 * 40, 4):
            p.train(pc, 0x1000, miss=True)
        total = sum(len(s) for s in p._sets)
        assert total <= 4

    def test_reset(self):
        p = pf()
        train_stream(p, 0x100, 0x0, 64, 4)
        p.reset()
        assert p.trained == 0
        assert p.train(0x100, 0x100, miss=True) == []
