"""Micro-kernel workload factories."""

import pytest

from repro.config import dynamic_config, fixed_config
from repro.pipeline import simulate
from repro.workloads import (
    KERNELS,
    compute_kernel,
    generate_trace,
    phased_kernel,
    pointer_chase_kernel,
    random_access_kernel,
    stream_kernel,
)


class TestFactories:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_default_kernel_generates(self, name):
        prof = KERNELS[name]()
        trace = generate_trace(prof, n_ops=2000, seed=1)
        assert len(trace.ops) == 2000

    def test_kernel_names_distinct(self):
        names = {KERNELS[k]().name for k in KERNELS}
        assert len(names) == len(KERNELS)

    def test_phased_kernel_two_phases(self):
        prof = phased_kernel(memory_ops=2000, compute_ops=3000)
        assert len(prof.phases) == 2
        assert prof.phases[0].length == 2000
        assert prof.phases[1].length == 3000

    def test_compute_kernel_knobs(self):
        prof = compute_kernel(chain_depth=4, branch_entropy=0.2)
        assert prof.phases[0].chain_depth == 4
        assert prof.phases[0].noisy_branch_frac == 0.2
        assert not prof.memory_intensive


class TestKernelBehaviour:
    def _speedup(self, prof):
        trace = generate_trace(prof, n_ops=9000, seed=1)
        base = simulate(fixed_config(1), trace, warmup=2000, measure=6000)
        dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=6000)
        return dyn.ipc / base.ipc

    def test_random_access_scales_with_window(self):
        assert self._speedup(random_access_kernel(working_set_mb=16)) > 1.3

    def test_cache_resident_random_access_does_not(self):
        ratio = self._speedup(random_access_kernel(working_set_mb=0.5))
        assert 0.9 < ratio < 1.15

    def test_pointer_chase_window_insensitive(self):
        ratio = self._speedup(pointer_chase_kernel(chase_frac=0.2))
        assert 0.9 < ratio < 1.2

    def test_stream_kernel_memory_bound(self):
        trace = generate_trace(stream_kernel(), n_ops=9000, seed=1)
        base = simulate(fixed_config(1), trace, warmup=2000, measure=6000)
        assert base.avg_load_latency > 10

    def test_compute_kernel_cache_resident(self):
        trace = generate_trace(compute_kernel(), n_ops=9000, seed=1)
        base = simulate(fixed_config(1), trace, warmup=2000, measure=6000)
        assert base.avg_load_latency < 10

    def test_phased_kernel_uses_multiple_levels(self):
        trace = generate_trace(phased_kernel(), n_ops=12000, seed=1)
        dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=9000)
        assert len(dyn.level_residency) >= 2
