"""Property-based workload generator tests."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    NUM_LOGICAL_REGS,
    OpClass,
    REG_INVALID,
)
from repro.workloads import (
    MemoryBehavior,
    PhaseSpec,
    ProgramProfile,
    generate_trace,
)


@st.composite
def phase_specs(draw):
    load = draw(st.floats(0.05, 0.35))
    store = draw(st.floats(0.0, min(0.2, 0.9 - load)))
    mem = MemoryBehavior(
        stride=draw(st.floats(0.0, 0.5)),
        chase=draw(st.floats(0.0, 0.2)),
        scatter=draw(st.floats(0.0, 0.5)),
        hot=draw(st.floats(0.1, 1.0)),
        working_set_bytes=draw(st.sampled_from(
            [64 * 1024, 1 << 20, 8 << 20])),
        hot_set_bytes=draw(st.sampled_from([4096, 16384, 65536])),
        stream_bytes=draw(st.sampled_from([1 << 20, 16 << 20])),
        stride_bytes=draw(st.sampled_from([8, 16, 64])))
    return PhaseSpec(
        name="p", length=draw(st.integers(200, 1500)),
        load_frac=round(load, 3), store_frac=round(store, 3),
        fp_frac=draw(st.floats(0.0, 0.9)),
        chain_depth=draw(st.integers(1, 5)),
        noisy_branch_frac=draw(st.floats(0.0, 0.4)),
        blocks=draw(st.integers(2, 6)),
        block_ops=draw(st.integers(6, 20)),
        mem=mem)


@st.composite
def profiles(draw):
    phases = tuple(draw(st.lists(phase_specs(), min_size=1, max_size=3)))
    return ProgramProfile(name="prop", category="int",
                          memory_intensive=False, phases=phases)


class TestGeneratedTraceInvariants:
    @given(profiles(), st.integers(100, 2500), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_every_op_well_formed(self, profile, n, seed):
        trace = generate_trace(profile, n, seed=seed)
        assert len(trace.ops) == n
        for op in trace.ops:
            assert op.pc % 4 == 0 and op.pc > 0
            if op.dst != REG_INVALID:
                assert 0 <= op.dst < NUM_LOGICAL_REGS
            for src in op.srcs:
                assert 0 <= src < NUM_LOGICAL_REGS
            if op.is_mem:
                assert op.addr % 8 == 0
                assert op.size == 8
            if op.is_branch:
                assert op.target > 0
                assert op.target % 4 == 0

    @given(profiles(), st.integers(300, 1500), st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_branch_targets_within_phase_code(self, profile, n, seed):
        trace = generate_trace(profile, n, seed=seed)
        for op in trace.ops:
            if op.is_branch and op.taken and op.target < op.pc:
                # backward branches only jump to a loop head
                assert op.pc - op.target < 0x1_0000

    @given(profiles(), st.integers(200, 1000))
    @settings(max_examples=15, deadline=None)
    def test_warm_regions_cover_hot_sets(self, profile, n):
        trace = generate_trace(profile, n, seed=1)
        hot_regions = [r for r in trace.warm_regions if r[2]]
        # every phase with hot traffic declares a warm (L1-able) region
        hot_phases = [p for p in profile.phases if p.mem.weights()[3] > 0]
        assert len(hot_regions) >= min(1, len(hot_phases))

    @given(profiles(), st.integers(500, 1500))
    @settings(max_examples=10, deadline=None)
    def test_trace_simulates(self, profile, n):
        """Anything the generator emits, the pipeline can execute."""
        from repro.config import base_config
        from repro.pipeline import Processor
        trace = generate_trace(profile, n, seed=1)
        proc = Processor(base_config(), trace)
        proc.prewarm()
        proc.run(until_committed=n, max_cycles=3_000_000)
        assert proc.committed_total == n
