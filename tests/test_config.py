"""Configuration: Table 1 / Table 2 encodings and validation."""

import dataclasses

import pytest

from repro.config import (
    LEVEL_TABLE,
    LEVEL_TRANSITION_PENALTY,
    CacheConfig,
    ModelKind,
    ProcessorConfig,
    ResourceLevel,
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    level_at,
    runahead_config,
)


class TestLevelTable:
    """Table 2 of the paper, verbatim."""

    def test_three_levels(self):
        assert len(LEVEL_TABLE) == 3

    @pytest.mark.parametrize("level,iq,rob,lsq", [
        (1, 64, 128, 64), (2, 160, 320, 160), (3, 256, 512, 256)])
    def test_entries(self, level, iq, rob, lsq):
        cfg = level_at(level)
        assert (cfg.iq_entries, cfg.rob_entries, cfg.lsq_entries) == \
            (iq, rob, lsq)

    @pytest.mark.parametrize("level,depth", [(1, 1), (2, 2), (3, 2)])
    def test_pipeline_depths(self, level, depth):
        cfg = level_at(level)
        assert cfg.iq_depth == depth
        assert cfg.rob_depth == depth
        assert cfg.lsq_depth == depth

    def test_transition_penalty(self):
        assert LEVEL_TRANSITION_PENALTY == 10

    def test_sizes_monotone(self):
        for a, b in zip(LEVEL_TABLE, LEVEL_TABLE[1:]):
            assert b.iq_entries > a.iq_entries
            assert b.rob_entries > a.rob_entries
            assert b.lsq_entries > a.lsq_entries
            assert b.iq_depth >= a.iq_depth

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            level_at(0)
        with pytest.raises(ValueError):
            level_at(4)

    def test_extra_wakeup_delay(self):
        assert level_at(1).extra_wakeup_delay == 0
        assert level_at(2).extra_wakeup_delay == 1
        assert level_at(3).extra_wakeup_delay == 1

    def test_extra_branch_penalty(self):
        assert level_at(1).extra_branch_penalty == 0
        assert level_at(2).extra_branch_penalty == 2


class TestResourceLevelValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ResourceLevel(iq_entries=0, rob_entries=1, lsq_entries=1,
                          iq_depth=1, rob_depth=1, lsq_depth=1)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ResourceLevel(iq_entries=4, rob_entries=4, lsq_entries=4,
                          iq_depth=0, rob_depth=1, lsq_depth=1)


class TestCacheConfig:
    def test_table1_l2_geometry(self):
        l2 = base_config().l2
        assert l2.size_bytes == 2 * 1024 * 1024
        assert l2.assoc == 4
        assert l2.line_bytes == 64
        assert l2.hit_latency == 12
        assert l2.num_sets == 8192

    def test_table1_l1d(self):
        l1d = base_config().l1d
        assert l1d.size_bytes == 64 * 1024
        assert l1d.assoc == 2
        assert l1d.line_bytes == 32
        assert l1d.hit_latency == 2

    def test_rejects_nonaligned_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3, line_bytes=64,
                        hit_latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * 4, assoc=4, line_bytes=64,
                        hit_latency=1)


class TestProcessorConfig:
    def test_base_defaults_match_table1(self):
        cfg = base_config()
        assert cfg.width == 4
        assert cfg.level == 1
        assert cfg.branch.history_bits == 16
        assert cfg.branch.pht_entries == 64 * 1024
        assert cfg.branch.btb_sets == 2048
        assert cfg.branch.mispredict_penalty == 10
        assert cfg.memory.min_latency == 300
        assert cfg.memory.bytes_per_cycle == 8
        assert cfg.fu.int_alu == 4
        assert cfg.fu.mem_ports == 2
        assert cfg.prefetcher.degree == 16
        assert cfg.prefetcher.table_entries == 4096

    def test_factories(self):
        assert base_config().model is ModelKind.FIXED
        assert fixed_config(2).level == 2
        assert ideal_config(3).model is ModelKind.IDEAL
        assert dynamic_config(3).model is ModelKind.DYNAMIC
        assert dynamic_config(3).level == 3
        assert runahead_config().model is ModelKind.RUNAHEAD

    def test_level_bounds_checked(self):
        with pytest.raises(ValueError):
            ProcessorConfig(level=4)
        with pytest.raises(ValueError):
            ProcessorConfig(level=0)

    def test_width_checked(self):
        with pytest.raises(ValueError):
            ProcessorConfig(width=0)

    def test_with_model(self):
        cfg = base_config().with_model(ModelKind.IDEAL, level=2)
        assert cfg.model is ModelKind.IDEAL
        assert cfg.level == 2

    def test_active_level(self):
        assert fixed_config(2).active_level.iq_entries == 160

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            base_config().width = 8
