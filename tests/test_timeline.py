"""Timeline sampling and sparkline rendering."""

import pytest

from repro.config import dynamic_config
from repro.pipeline import Processor
from repro.stats import TimelineSampler, record_timeline, sparkline

from tests.conftest import ialu, make_trace, warm_icache


def compute_trace(n=3000):
    return make_trace([ialu(i, dst=1 + (i % 8)) for i in range(n)])


class TestSampler:
    def test_samples_at_window_edges(self):
        proc = Processor(dynamic_config(3), compute_trace())
        warm_icache(proc)
        timeline = record_timeline(proc, until_committed=3000,
                                   window_cycles=100)
        assert len(timeline) >= 3
        cycles = [s.cycle for s in timeline.samples]
        assert cycles == sorted(cycles)
        assert all(c % 100 == 0 for c in cycles)

    def test_committed_sums_match(self):
        proc = Processor(dynamic_config(3), compute_trace())
        warm_icache(proc)
        timeline = record_timeline(proc, until_committed=3000,
                                   window_cycles=100)
        assert sum(s.committed for s in timeline.samples) <= 3000 + 3
        assert sum(s.committed for s in timeline.samples) > 2000

    def test_levels_recorded(self):
        proc = Processor(dynamic_config(3), compute_trace())
        warm_icache(proc)
        timeline = record_timeline(proc, until_committed=3000,
                                   window_cycles=100)
        assert set(timeline.levels()) <= {1, 2, 3}

    def test_window_validation(self):
        proc = Processor(dynamic_config(3), compute_trace())
        with pytest.raises(ValueError):
            TimelineSampler(proc, window_cycles=0)

    def test_ipcs_derived(self):
        proc = Processor(dynamic_config(3), compute_trace())
        warm_icache(proc)
        timeline = record_timeline(proc, until_committed=3000,
                                   window_cycles=100)
        for ipc in timeline.ipcs():
            assert 0.0 <= ipc <= 4.0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved_when_short(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_pooled_to_width(self):
        assert len(sparkline(range(1000), width=60)) == 60

    def test_monotone_mapping(self):
        line = sparkline([0, 5, 10], max_value=10)
        assert line[0] <= line[1] <= line[2] or line[0] == " "

    def test_all_zero(self):
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_explicit_max(self):
        capped = sparkline([1, 1], max_value=100)
        assert set(capped) <= set(" .:")
