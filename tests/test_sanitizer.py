"""The repro.debug invariant sanitizer and event-trace layer.

Covers the debug layer's contract from both sides: a clean run must
pass every invariant without perturbing timing (bit-identical cycle
counts), and each seeded bookkeeping fault from the mutation harness
must be detected by the invariant written for it.  The slot-tracker
unit tests pin the exact physical-slot semantics (FIFO wraparound,
squash tail-retraction, CAM holes) the shrink-vacancy measurement
rests on.
"""

import json

import pytest

from repro.config import dynamic_config, fixed_config
from repro.debug import (
    CamSlotTracker,
    DeadlockError,
    EventTrace,
    FifoSlotTracker,
    SanitizerError,
)
from repro.debug import mutations
from repro.debug.events import EVENT_KINDS
from repro.pipeline import Processor, simulate


# ----------------------------------------------------------------------
# event trace


class TestEventTrace:
    def test_emit_and_counts(self):
        trace = EventTrace(capacity=16)
        trace.emit(5, "fetch", 1, "iadd")
        trace.emit(6, "commit", 1)
        assert trace.emitted == 2
        assert trace.counts() == {"fetch": 1, "commit": 1}
        assert trace.records[0].as_dict() == {
            "cycle": 5, "kind": "fetch", "seq": 1, "detail": "iadd"}

    def test_unknown_kind_rejected(self):
        trace = EventTrace()
        with pytest.raises(ValueError, match="unknown event kind"):
            trace.emit(0, "teleport")

    def test_ring_overflow_keeps_whole_run_totals(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.emit(i, "issue", i)
        assert len(trace.records) == 4
        assert trace.emitted == 10
        assert trace.counts()["issue"] == 10
        assert [r.cycle for r in trace.records] == [6, 7, 8, 9]

    def test_render(self):
        trace = EventTrace()
        assert trace.render() == "(no events recorded)"
        trace.emit(3, "level", -1, "enlarge to level 2")
        out = trace.render()
        assert "level" in out and "enlarge to level 2" in out
        # machine events render a dash, not a bogus sequence number
        assert " -1 " not in out

    def test_to_jsonl(self, tmp_path):
        trace = EventTrace()
        trace.emit(1, "dispatch", 7, "load")
        trace.emit(2, "stall", -1, "dispatch blocked")
        path = tmp_path / "events.jsonl"
        assert trace.to_jsonl(str(path)) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["dispatch", "stall"]
        assert all(r["kind"] in EVENT_KINDS for r in rows)


# ----------------------------------------------------------------------
# slot trackers


class TestFifoSlotTracker:
    def test_commit_pops_head(self):
        t = FifoSlotTracker("ROB", 8)
        assert t.sync([1, 2, 3]) == []
        assert t.sync([2, 3]) == [1]
        assert [slot for __, slot in t.ring] == [1, 2]

    def test_squash_retracts_tail(self):
        t = FifoSlotTracker("ROB", 8)
        t.sync([1, 2, 3])
        assert t.sync([1]) == []          # 2,3 squashed, nothing committed
        t.sync([1, 9])                    # next allocation reuses slot 1
        assert list(t.ring) == [(1, 0), (9, 1)]

    def test_wraparound_assigns_physical_slots_modulo_capacity(self):
        t = FifoSlotTracker("ROB", 4)
        t.sync([1, 2, 3, 4])
        assert t.sync([3, 4]) == [1, 2]
        t.sync([3, 4, 5, 6])
        assert [slot for __, slot in t.ring] == [2, 3, 0, 1]

    def test_full_flush_split_by_commit_hint(self):
        t = FifoSlotTracker("ROB", 8)
        t.sync([1, 2, 3])
        # everything left at once: 2 commits + 1 squash, per the hint
        assert t.sync([10, 11], commits_hint=2) == [1, 2]
        # the squash retracted the tail to slot 2 before re-allocating
        assert list(t.ring) == [(10, 2), (11, 3)]

    def test_shrink_straddle_counts_divergence_and_compacts(self):
        t = FifoSlotTracker("ROB", 8)
        t.sync([1, 2, 3, 4, 5, 6])
        t.sync([5, 6])                    # survivors sit in slots 4 and 5
        assert t.resize(4) == 2           # both straddle the new boundary
        assert t.divergences == 1
        assert t.max_straddle == 2
        assert [slot for __, slot in t.ring] == [0, 1]   # re-packed
        assert t.capacity == 4

    def test_shrink_vacant_region_is_not_a_divergence(self):
        t = FifoSlotTracker("ROB", 8)
        t.sync([1, 2])                    # slots 0 and 1
        assert t.resize(4) == 0
        assert t.divergences == 0

    def test_non_contiguous_survivors_detected(self):
        t = FifoSlotTracker("ROB", 8)
        t.sync([1, 2, 3])
        with pytest.raises(SanitizerError, match="not a contiguous run"):
            t.sync([1, 3])                # 2 vanished from the middle


class TestCamSlotTracker:
    def test_lowest_free_slot_with_holes(self):
        t = CamSlotTracker("IQ", 4)
        t.sync([1, 2, 3])
        t.sync([1, 3])                    # 2 released out of order: hole
        t.sync([1, 3, 7])                 # newcomer fills the hole
        assert t.slot_of == {1: 0, 3: 2, 7: 1}

    def test_overflow_detected(self):
        t = CamSlotTracker("IQ", 2)
        with pytest.raises(SanitizerError, match="overflow"):
            t.sync([1, 2, 3])

    def test_shrink_compacts_and_enlarge_extends(self):
        t = CamSlotTracker("IQ", 8)
        t.sync([1, 2, 3, 4, 5])
        t.sync([4, 5])                    # survivors hold slots 3 and 4
        assert t.resize(2) == 2
        assert t.divergences == 1
        assert t.slot_of == {4: 0, 5: 1}
        assert t.resize(4) == 0           # enlarge is never a divergence
        t.sync([4, 5, 6, 7])
        assert t.slot_of[6] == 2 and t.slot_of[7] == 3


# ----------------------------------------------------------------------
# clean sanitized runs (the DYNAMIC model under real load)


@pytest.fixture(scope="module")
def sanitized_dynamic(libquantum_trace):
    """One sanitized DYNAMIC run shared by the assertions below."""
    proc = Processor(dynamic_config(3), libquantum_trace, sanitize=True)
    proc.run(until_committed=8_000)
    proc.debug.final_check()
    return proc


class TestCleanRun:
    def test_invariants_exercised(self, sanitized_dynamic):
        summary = sanitized_dynamic.debug.summary()
        checks = summary["invariant_checks"]
        for name in ("occupancy_bounds", "counter_conservation",
                     "level_capacity", "ground_truth_occupancy",
                     "mshr_bound", "timer_liveness", "rob_program_order",
                     "in_order_commit", "event_schedule",
                     "shrink_slot_vacancy"):
            assert checks.get(name, 0) > 0, f"{name} never exercised"
        assert summary["cycles_checked"] > 1_000

    def test_event_trace_mirrors_the_run(self, sanitized_dynamic):
        proc = sanitized_dynamic
        counts = proc.debug.events.counts()
        # every commit the processor saw was observed by the tracker
        assert counts["commit"] == proc.committed_total
        assert counts["dispatch"] >= proc.committed_total
        assert counts["fetch"] == counts["dispatch"]
        assert counts["level"] == (proc.stats.enlarge_transitions
                                   + proc.stats.shrink_transitions)

    def test_every_shrink_was_vacancy_checked(self, sanitized_dynamic):
        proc = sanitized_dynamic
        assert proc.stats.shrink_transitions > 0
        summary = proc.debug.summary()
        assert (summary["invariant_checks"]["shrink_slot_vacancy"]
                == proc.stats.shrink_transitions)
        # on this workload every shrink found its vacated region
        # physically empty — the occupancy approximation held exactly
        assert summary["shrink_divergences"] == {"ROB": 0, "IQ": 0,
                                                 "LSQ": 0}
        assert summary["max_straddle"] == {"ROB": 0, "IQ": 0, "LSQ": 0}

    def test_shrink_while_occupied_campaign(self):
        """Satellite: drive the DYNAMIC model through enlarge->shrink
        under heavy pointer-chasing load (mcf), where shrinks race live
        occupancy.  The drain protocol must be exercised and accounted,
        and the exact slot tracker quantifies how often the
        ``occupancy <= new_capacity`` vacancy approximation was
        optimistic about a wrapped occupied region."""
        from repro.workloads import generate_trace, profile
        trace = generate_trace(profile("mcf"), n_ops=9_000, seed=3)
        proc = Processor(dynamic_config(3), trace, sanitize=True)
        proc.run(until_committed=8_000)
        proc.debug.final_check()          # clean despite the churn
        stats = proc.stats
        assert stats.enlarge_transitions > 10
        assert stats.shrink_transitions > 10
        # shrink-while-occupied really happened: the policy had to stall
        # allocation to drain the condemned region, and that cost is
        # visible in the stats rather than hidden
        assert stats.stop_alloc_cycles > 0
        summary = proc.debug.summary()
        assert (summary["invariant_checks"]["shrink_slot_vacancy"]
                == stats.shrink_transitions)
        # under this load the approximation IS measurably optimistic:
        # some shrinks completed while the occupied window straddled the
        # new boundary (contents fit, but in the wrong physical slots) —
        # the divergence counters exist to quantify exactly this
        divergences = summary["shrink_divergences"]
        assert sum(divergences.values()) > 0
        assert all(divergences[r] <= stats.shrink_transitions
                   for r in ("ROB", "IQ", "LSQ"))
        assert max(summary["max_straddle"].values()) > 0

    def test_events_export_jsonl(self, sanitized_dynamic, tmp_path):
        trace = sanitized_dynamic.debug.events
        path = tmp_path / "pipeline_events.jsonl"
        written = trace.to_jsonl(str(path))
        assert written == min(trace.emitted, trace.capacity)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == written
        assert all(r["kind"] in EVENT_KINDS for r in rows)


class TestNonPerturbation:
    def test_sanitized_run_is_bit_identical(self, libquantum_trace):
        plain = simulate(dynamic_config(3), libquantum_trace,
                         warmup=1_000, measure=4_000)
        checked = simulate(dynamic_config(3), libquantum_trace,
                           warmup=1_000, measure=4_000, sanitize=True)
        assert checked.cycles == plain.cycles
        assert checked.instructions == plain.instructions

    def test_release_path_carries_no_debug_state(self, libquantum_trace):
        proc = Processor(fixed_config(1), libquantum_trace)
        assert proc.debug is None
        # no shadowing instance attributes on the hot path
        assert "step_cycle" not in proc.__dict__
        assert "_schedule" not in proc.__dict__


# ----------------------------------------------------------------------
# failure paths


class TestFailurePaths:
    def test_deadlock_report_names_the_wedged_state(self, libquantum_trace):
        proc = Processor(fixed_config(1), libquantum_trace, sanitize=True)
        proc.run(until_committed=100)
        # wedge the machine: forget every in-flight completion and mark
        # the resident ops incomplete, so the ROB head can never retire
        proc._events.clear()
        proc._ready.clear()
        for op in proc.rob:
            op.complete = False
        with pytest.raises(DeadlockError) as exc_info:
            proc.run(until_committed=4_000)
        message = str(exc_info.value)
        assert "deadlock at cycle" in message
        assert "rob=" in message and "decode_q=" in message
        assert "mshr:" in message
        # the attached debug harness contributes the event tail
        assert "last traced events" in message

    def test_sanitizer_failure_carries_event_context(self, libquantum_trace):
        proc = Processor(dynamic_config(3), libquantum_trace, sanitize=True)
        proc.run(until_committed=500)
        proc.window.rob.alloc_count += 7
        with pytest.raises(SanitizerError) as exc_info:
            proc.debug.final_check()
        message = str(exc_info.value)
        assert "conservation" in message
        assert "last events" in message

    def test_event_scheduled_in_the_past_detected(self, libquantum_trace):
        proc = Processor(fixed_config(1), libquantum_trace, sanitize=True)
        proc.run(until_committed=200)
        with pytest.raises(SanitizerError, match="scheduled in the past"):
            proc._schedule(proc.cycle - 1, 0, None)


# ----------------------------------------------------------------------
# mutation harness: every seeded fault must be caught


@pytest.mark.parametrize("name", sorted(mutations.MUTATIONS))
def test_seeded_fault_detected(name):
    detected, note = mutations.run_mutation(name)
    assert detected, f"{name} escaped the sanitizer: {note}"
