"""Telemetry layer: probe sampling, ring recorder, exports, neutrality.

The two invariants of :mod:`repro.telemetry` are locked in here:

* zero cost when off — an unprobed processor carries no telemetry
  wrappers and no per-cycle telemetry branch;
* digest neutrality — a probed run's canonical stat digest is
  bit-identical to a bare run (the PR 2 mutation-on-observation bug
  class, re-audited for every counter the probe reads).
"""

import os

import pytest

from repro.config import base_config, dynamic_config
from repro.pipeline import Processor, simulate
from repro.telemetry import (
    IntervalSample,
    PolicyEvent,
    Telemetry,
    TelemetryProbe,
    StageProfiler,
    grow_miss_coincidence,
    load_events_csv,
    load_samples_csv,
    render_report,
)
from repro.verify.digest import result_digest
from repro.workloads import generate_trace, profile

from tests.conftest import DATA_BASE, ialu, load, make_trace, warm_icache


def sample(cycle, cycles=64, committed=0, stalls=None, **kw):
    defaults = dict(level=1, rob_occ=0, rob_cap=128, iq_occ=0, iq_cap=64,
                    lsq_occ=0, lsq_cap=64, mshr_l1d=0, mshr_l2=0,
                    issued=0, dispatched=0, l2_misses=0, stop_alloc=0)
    defaults.update(kw)
    return IntervalSample(cycle=cycle, cycles=cycles, committed=committed,
                          stalls=stalls or {}, **defaults)


def missing_burst_trace(n_bursts=6, loads_per_burst=10, gap_ops=400):
    """Clusters of missing loads separated by compute stretches."""
    ops = []
    idx = 0
    addr = DATA_BASE + 0x100000
    for burst in range(n_bursts):
        for i in range(loads_per_burst):
            ops.append(load(idx, dst=1 + (i % 8), addr=addr))
            addr += 0x10000
            idx += 1
        for i in range(gap_ops):
            ops.append(ialu(idx, dst=1 + (i % 8)))
            idx += 1
    return ops


def probed_burst_run(period=64, **probe_kw):
    ops = missing_burst_trace()
    proc = Processor(dynamic_config(3), make_trace(ops))
    warm_icache(proc)
    probe = TelemetryProbe(period=period, **probe_kw)
    probe.attach(proc)
    proc.run(until_committed=len(ops))
    probe.finish()
    return proc, probe


# ----------------------------------------------------------------------
# recorder ring


class TestRecorderRing:
    def test_wraparound_keeps_totals(self):
        tel = Telemetry(period=10, capacity=4, event_capacity=3)
        for i in range(10):
            tel.add_sample(sample(cycle=(i + 1) * 10, cycles=10,
                                  committed=5, stalls={"deps": 2}))
        assert len(tel.samples) == 4
        assert tel.samples_emitted == 10
        assert tel.cycles_covered == 100
        assert tel.committed_total == 50
        assert tel.stall_totals == {"deps": 20}
        # ring holds the most recent samples
        assert [s.cycle for s in tel.samples] == [70, 80, 90, 100]

    def test_event_ring_wraps_counts_survive(self):
        tel = Telemetry(period=10, capacity=4, event_capacity=3)
        for i in range(7):
            tel.add_event(PolicyEvent(i, "l2_miss", 1))
        tel.add_event(PolicyEvent(99, "grow", 2))
        assert len(tel.events) == 3
        assert tel.events_emitted == 8
        assert tel.event_counts == {"l2_miss": 7, "grow": 1}

    def test_peaks_survive_wrap(self):
        tel = Telemetry(period=1, capacity=2)
        tel.add_sample(sample(cycle=1, cycles=1, rob_occ=100))
        tel.add_sample(sample(cycle=2, cycles=1, rob_occ=3))
        tel.add_sample(sample(cycle=3, cycles=1, rob_occ=4))
        assert tel.peak_rob == 100

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(period=0)
        with pytest.raises(ValueError):
            TelemetryProbe(period=0)


# ----------------------------------------------------------------------
# sampling-period edge cases


class TestSamplingPeriods:
    def test_period_one_samples_every_cycle(self):
        proc, probe = probed_burst_run(period=1, capacity=200_000)
        tel = probe.telemetry
        # every cycle has its own sample; a zero-cycle tail sample may
        # follow when the run ends by trace drain (the last step's
        # commits happen without a final advance)
        body = [s for s in tel.samples if s.cycles]
        assert all(s.cycles == 1 for s in body)
        assert tel.cycles_covered == proc.cycle
        assert tel.committed_total == proc.stats.committed_uops
        assert [s.cycle for s in body] == list(range(1, proc.cycle + 1))

    def test_period_longer_than_run(self):
        proc, probe = probed_burst_run(period=10**9)
        tel = probe.telemetry
        # only the partial interval flushed by finish()
        assert tel.samples_emitted == 1
        only = tel.samples[0]
        assert only.cycle == proc.cycle
        assert only.cycles == proc.cycle
        assert only.committed == proc.stats.committed_uops

    def test_deltas_sum_to_run_totals(self):
        proc, probe = probed_burst_run(period=64, capacity=100_000)
        tel = probe.telemetry
        stats = proc.stats
        assert sum(s.committed for s in tel.samples) == stats.committed_uops
        assert sum(s.issued for s in tel.samples) == stats.issued_uops
        assert (sum(s.l2_misses for s in tel.samples)
                == proc.hierarchy.demand_l2_misses)
        stall_sum = {}
        for s in tel.samples:
            for reason, slots in s.stalls.items():
                stall_sum[reason] = stall_sum.get(reason, 0) + slots
        assert stall_sum == stats.stall_slots
        assert tel.stall_totals == stats.stall_slots

    def test_finish_idempotent(self):
        proc, probe = probed_burst_run(period=64)
        emitted = probe.telemetry.samples_emitted
        probe.finish()
        assert probe.telemetry.samples_emitted == emitted


# ----------------------------------------------------------------------
# exports


class TestExports:
    def _recorded(self):
        __, probe = probed_burst_run(period=64)
        return probe.telemetry

    def test_jsonl_round_trip(self, tmp_path):
        tel = self._recorded()
        path = tel.to_jsonl(str(tmp_path / "run.jsonl"))
        loaded = Telemetry.from_jsonl(path)
        assert list(loaded.samples) == list(tel.samples)
        assert list(loaded.events) == list(tel.events)
        assert loaded.meta == tel.meta
        assert loaded.samples_emitted == tel.samples_emitted
        assert loaded.events_emitted == tel.events_emitted
        assert loaded.event_counts == tel.event_counts
        assert loaded.stall_totals == tel.stall_totals
        assert loaded.cycles_covered == tel.cycles_covered
        assert loaded.peak_rob == tel.peak_rob

    def test_csv_round_trip(self, tmp_path):
        tel = self._recorded()
        spath = tel.samples_csv(str(tmp_path / "s.csv"))
        epath = tel.events_csv(str(tmp_path / "e.csv"))
        assert load_samples_csv(spath) == list(tel.samples)
        assert load_events_csv(epath) == list(tel.events)

    def test_report_renders(self):
        tel = self._recorded()
        text = render_report(tel)
        assert "level timeline" in text
        assert "occupancy heat summary" in text
        assert "interval CPI stack" in text

    def test_from_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "sample"}\n')
        with pytest.raises(ValueError):
            Telemetry.from_jsonl(str(path))


# ----------------------------------------------------------------------
# events vs. the resizing policy


class TestPolicyEvents:
    def test_transitions_match_stats_log(self):
        proc, probe = probed_burst_run(period=64)
        tel = probe.telemetry
        recorded = [(e.cycle, e.level) for e in tel.events
                    if e.kind in ("grow", "shrink")]
        assert recorded == proc.stats.level_transitions
        assert tel.event_counts.get("grow", 0) == \
            proc.stats.enlarge_transitions
        assert tel.event_counts.get("shrink", 0) == \
            proc.stats.shrink_transitions

    def test_miss_events_match_hierarchy_count(self):
        proc, probe = probed_burst_run(period=64)
        assert (probe.telemetry.event_counts.get("l2_miss", 0)
                == proc.hierarchy.demand_l2_misses)

    def test_grow_events_trail_misses(self):
        __, probe = probed_burst_run(period=64)
        co = grow_miss_coincidence(probe.telemetry)
        assert co["grows"] >= 1
        assert co["matched"] == co["grows"]

    def test_level_series_consistent_with_transitions(self):
        __, probe = probed_burst_run(period=16, capacity=100_000)
        tel = probe.telemetry
        transitions = {e.cycle: e.level for e in tel.events
                       if e.kind in ("grow", "shrink")}
        level = 1
        expected = []
        cursor = sorted(transitions.items())
        for s in tel.samples:
            while cursor and cursor[0][0] <= s.cycle:
                level = cursor.pop(0)[1]
            expected.append(level)
        assert tel.levels() == expected


# ----------------------------------------------------------------------
# the two invariants


class TestInvariants:
    def test_zero_cost_when_off(self):
        proc = Processor(dynamic_config(3), make_trace(
            [ialu(i, dst=1 + (i % 8)) for i in range(100)]))
        assert proc.telemetry is None
        # no bound-method shadowing on a bare processor: the per-cycle
        # entry points resolve to the class methods
        for name in ("advance", "_apply_level", "step_cycle"):
            assert name not in proc.__dict__

    def test_attach_detach_restores(self):
        ops = missing_burst_trace(n_bursts=2)
        proc = Processor(dynamic_config(3), make_trace(ops))
        warm_icache(proc)
        probe = TelemetryProbe(period=64)
        probe.attach(proc)
        assert "advance" in proc.__dict__
        with pytest.raises(RuntimeError):
            probe.attach(proc)
        probe.detach()
        assert "advance" not in proc.__dict__
        assert "_apply_level" not in proc.__dict__
        assert proc.telemetry is None

    @pytest.mark.parametrize("program,config", [
        ("omnetpp", dynamic_config(3)),
        ("libquantum", dynamic_config(3)),
        ("gcc", base_config()),
    ])
    def test_digest_neutrality(self, program, config):
        def run(telemetry):
            trace = generate_trace(profile(program), n_ops=7_000, seed=1)
            return simulate(config, trace, warmup=2_000, measure=4_000,
                            telemetry=telemetry)
        bare = run(None)
        probe = TelemetryProbe(period=32)
        probed = run(probe)
        assert probe.telemetry.samples_emitted > 0
        assert result_digest(bare) == result_digest(probed)

    def test_digest_neutral_under_sanitizer(self):
        # probe and sanitizer chain on the same bound methods
        trace_a = generate_trace(profile("omnetpp"), n_ops=6_000, seed=1)
        trace_b = generate_trace(profile("omnetpp"), n_ops=6_000, seed=1)
        bare = simulate(dynamic_config(3), trace_a,
                        warmup=2_000, measure=3_000)
        probe = TelemetryProbe(period=64)
        both = simulate(dynamic_config(3), trace_b, warmup=2_000,
                        measure=3_000, sanitize=True, telemetry=probe)
        assert result_digest(bare) == result_digest(both)
        assert probe.telemetry.samples_emitted > 0


# ----------------------------------------------------------------------
# profiler


class TestProfiler:
    def test_stage_times_recorded(self):
        __, probe = probed_burst_run(period=64, profile=True)
        prof = probe.profiler
        assert prof is not None
        assert prof.calls["commit"] > 0
        assert prof.seconds["commit"] >= 0.0
        assert prof.wall_seconds > 0.0
        assert "commit" in prof.render()

    def test_profiled_run_timing_identical(self):
        ops = missing_burst_trace(n_bursts=2)
        plain = Processor(dynamic_config(3), make_trace(ops))
        warm_icache(plain)
        plain.run(until_committed=len(ops))
        profiled = Processor(dynamic_config(3), make_trace(ops))
        warm_icache(profiled)
        StageProfiler().attach(profiled)
        profiled.run(until_committed=len(ops))
        assert profiled.stats.cycles == plain.stats.cycles
        assert profiled.stats.committed_uops == plain.stats.committed_uops


# ----------------------------------------------------------------------
# campaign wiring


class TestCampaignTelemetry:
    def _settings(self, period):
        from repro.experiments.runner import Settings
        return Settings(warmup=1_500, measure=2_500, telemetry_period=period,
                        only_programs=("omnetpp",))

    def test_sweep_writes_artifact(self, tmp_path):
        from repro.experiments.cache import ResultStore
        from repro.experiments.runner import Sweep
        store = ResultStore(str(tmp_path))
        sweep = Sweep(self._settings(64), store=store)
        result = sweep.run("omnetpp", dynamic_config(3))
        assert sweep.telemetry_artifacts == 1
        artifacts = os.listdir(tmp_path / "telemetry")
        assert len(artifacts) == 1
        tel = Telemetry.from_jsonl(str(tmp_path / "telemetry" / artifacts[0]))
        assert tel.meta["program"] == "omnetpp"
        assert tel.samples_emitted > 0
        # the stored result is digest-identical to a bare run of the
        # same settings (telemetry_period is not part of the result key)
        bare_store = ResultStore(str(tmp_path / "bare"))
        bare = Sweep(self._settings(0), store=bare_store).run(
            "omnetpp", dynamic_config(3))
        assert result_digest(result) == result_digest(bare)

    def test_warm_cache_skips_when_artifact_present(self, tmp_path):
        from repro.experiments.cache import ResultStore
        from repro.experiments.runner import Sweep
        store = ResultStore(str(tmp_path))
        Sweep(self._settings(64), store=store).run(
            "omnetpp", dynamic_config(3))
        again = Sweep(self._settings(64), store=store)
        again.run("omnetpp", dynamic_config(3))
        assert again.sim_runs == 0
        assert again.cache_hits == 1

    def test_missing_artifact_forces_rerun(self, tmp_path):
        from repro.experiments.cache import ResultStore
        from repro.experiments.runner import Sweep
        store = ResultStore(str(tmp_path))
        first = Sweep(self._settings(64), store=store)
        first.run("omnetpp", dynamic_config(3))
        tdir = tmp_path / "telemetry"
        for name in os.listdir(tdir):
            os.unlink(tdir / name)
        again = Sweep(self._settings(64), store=store)
        again.run("omnetpp", dynamic_config(3))
        assert again.sim_runs == 1
        assert len(os.listdir(tdir)) == 1

    def test_execute_campaign_reruns_for_missing_artifact(self, tmp_path):
        from repro.experiments.cache import (
            JobRecorder, ResultStore, recording, telemetry_dir)
        from repro.experiments.parallel import execute_campaign
        from repro.experiments.runner import Sweep
        store = ResultStore(str(tmp_path))
        settings = self._settings(64)
        recorder = JobRecorder()
        with recording(recorder):
            Sweep(settings, store=store).run("omnetpp", dynamic_config(3))
        report = execute_campaign(recorder, store, jobs=1)
        assert report.executed == 1
        assert report.telemetry_artifacts == 1
        assert report.per_program_seconds.get("omnetpp", 0.0) > 0.0
        # warm: result cached AND artifact present -> nothing to do
        report2 = execute_campaign(recorder, store, jobs=1)
        assert report2.executed == 0
        # delete the artifact: the cached job must execute again
        tdir = telemetry_dir(store)
        for name in os.listdir(tdir):
            os.unlink(os.path.join(tdir, name))
        report3 = execute_campaign(recorder, store, jobs=1)
        assert report3.executed == 1
        assert len(os.listdir(tdir)) == 1
