"""Focused pipeline timing details: front-end structure, resource
stalls, transition bookkeeping, and step/advance mechanics."""

import pytest

from repro.config import (
    ProcessorConfig,
    ResourceLevel,
    base_config,
    dynamic_config,
)
from repro.pipeline import Processor
from repro.pipeline.core import DECODE_LATENCY, FETCH_BUFFER

from tests.conftest import (
    CODE_BASE,
    DATA_BASE,
    branch,
    ialu,
    load,
    make_trace,
    run_ops,
    store,
    warm_icache,
)


class TestFrontEnd:
    def test_minimum_latency_includes_decode(self):
        """A single op takes at least fetch + decode + issue + commit."""
        proc = run_ops([ialu(0, dst=1)])
        assert proc.stats.cycles >= DECODE_LATENCY + 2

    def test_fetch_buffer_bounds_runahead_of_dispatch(self):
        """With dispatch blocked by a full ROB, fetch stops at the
        buffer limit instead of running ahead forever."""
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        ops += [ialu(1 + i, dst=2 + (i % 4), srcs=(1,)) for i in range(400)]
        proc = Processor(base_config(), make_trace(ops))
        warm_icache(proc)
        proc.run(until_committed=1)   # just the load
        assert len(proc._decode_q) <= FETCH_BUFFER

    def test_taken_branch_costs_a_fetch_bubble(self):
        """A dense sequence of taken branches fetches ~1/cycle, not 4."""
        ops = []
        for i in range(40):
            ops.append(branch(i, taken=True, target=CODE_BASE + 4 * (i + 1)))
        # train the BTB first via a warmup pass over the same PCs
        proc = Processor(base_config(), make_trace(ops + ops))
        warm_icache(proc)
        proc._pretrain_predictor()
        proc.run(until_committed=len(ops) * 2)
        assert proc.stats.cycles >= 60   # >= ~1 cycle per taken branch

    def test_icache_miss_stalls_fetch(self):
        proc = Processor(base_config(), make_trace(
            [ialu(i, dst=1 + i % 8) for i in range(8)]))
        # no warm_icache: the first line must go to memory
        proc.run(until_committed=8)
        assert proc.stats.cycles > 300


class TestResourceStalls:
    def _tiny_levels(self):
        return (ResourceLevel(iq_entries=8, rob_entries=16, lsq_entries=4,
                              iq_depth=1, rob_depth=1, lsq_depth=1),)

    def test_small_rob_limits_mlp(self):
        """With a 16-entry ROB, far fewer misses overlap."""
        ops = [load(i, dst=1 + (i % 8), addr=DATA_BASE + 0x10000 * i)
               for i in range(24)]
        small = ProcessorConfig(levels=self._tiny_levels(), level=1)
        tiny = run_ops(ops, small)
        big = run_ops(ops)
        assert tiny.stats.cycles > 1.5 * big.stats.cycles

    def test_lsq_full_blocks_dispatch(self):
        ops = [load(i, dst=1 + (i % 8), addr=DATA_BASE + 0x10000 * i)
               for i in range(16)]
        small = ProcessorConfig(levels=self._tiny_levels(), level=1)
        proc = run_ops(ops, small)
        assert proc.window.lsq.full_events > 0

    def test_peak_occupancy_respects_capacity(self):
        ops = [load(i, dst=1 + (i % 8), addr=DATA_BASE + 0x10000 * i)
               for i in range(16)]
        small = ProcessorConfig(levels=self._tiny_levels(), level=1)
        proc = run_ops(ops, small)
        assert proc.window.rob.peak_occupancy <= 16
        assert proc.window.lsq.peak_occupancy <= 4


class TestTransitions:
    def _burst(self):
        ops = []
        for i in range(8):
            ops.append(load(i, dst=1 + i % 4, addr=DATA_BASE + 0x20000 * i))
        ops += [ialu(8 + i, dst=1 + (i % 8)) for i in range(3000)]
        return ops

    def test_transition_log_records_level_changes(self):
        proc = Processor(dynamic_config(3), make_trace(self._burst()))
        warm_icache(proc)
        proc.run(until_committed=3008)
        log = proc.stats.level_transitions
        assert log, "expected at least one transition"
        cycles = [c for c, __ in log]
        assert cycles == sorted(cycles)
        levels = [lvl for __, lvl in log]
        assert max(levels) >= 2
        assert levels[-1] == 1       # shrunk back during the compute tail

    def test_transition_counts_match_log(self):
        proc = Processor(dynamic_config(3), make_trace(self._burst()))
        warm_icache(proc)
        proc.run(until_committed=3008)
        stats = proc.stats
        ups = sum(1 for (__, lvl), (___, prev) in zip(
            stats.level_transitions[1:], stats.level_transitions)
            if lvl > prev)
        # first transition is always an enlarge from level 1
        ups += 1 if stats.level_transitions[0][1] > 1 else 0
        assert stats.enlarge_transitions == ups

    def test_zero_penalty_config(self):
        from dataclasses import replace
        config = replace(dynamic_config(3), transition_penalty=0)
        proc = Processor(config, make_trace(self._burst()))
        warm_icache(proc)
        proc.run(until_committed=3008)
        assert proc.stats.transition_stall_cycles == 0


class TestStepAdvance:
    def test_manual_stepping_matches_run(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(200)]
        auto = run_ops(ops)
        manual = Processor(base_config(), make_trace(ops))
        warm_icache(manual)
        while manual.committed_total < 200:
            delta = manual.step_cycle()
            if delta == 0:
                break
            manual.advance(delta)
        assert manual.cycle == auto.cycle
        assert manual.stats.committed_uops == auto.stats.committed_uops

    def test_partial_advance_is_legal(self):
        """Advancing by less than the suggested delta (as the multicore
        lockstep does) must not change results."""
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000),
               ialu(1, dst=2, srcs=(1,))]
        auto = run_ops(ops)
        manual = Processor(base_config(), make_trace(ops))
        warm_icache(manual)
        while manual.committed_total < 2:
            delta = manual.step_cycle()
            if delta == 0:
                break
            manual.advance(min(delta, 7))   # never jump more than 7
        assert manual.cycle == auto.cycle

    def test_step_returns_zero_when_drained(self):
        proc = Processor(base_config(), make_trace([ialu(0, dst=1)]))
        warm_icache(proc)
        proc.run(until_committed=1)
        assert proc.step_cycle() == 0
