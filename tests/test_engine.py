"""The pluggable execution-engine layer (:mod:`repro.pipeline.engine`).

The heavyweight guarantee — digest bit-identity between the reference
and fast engines over the full program table — lives in the
``engine-equivalence`` oracle (``python -m repro.verify engines``).
These tests pin the plumbing around it: engine selection, the
sanitizer/telemetry fallback rule, segmented-run equivalence, and the
elapsed-based livelock bound of :meth:`Processor.run`.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import base_config, dynamic_config
from repro.debug.errors import DeadlockError
from repro.pipeline import (
    ENGINE_NAMES,
    FastEngine,
    Processor,
    ReferenceEngine,
    get_engine,
    simulate,
)
from repro.pipeline.engine import _must_defer
from repro.verify.digest import result_digest
from repro.workloads import generate_trace, profile


def _trace(program="leslie3d", n_ops=4_000, seed=1):
    return generate_trace(profile(program), n_ops=n_ops, seed=seed)


class TestEngineSelection:
    def test_registry(self):
        assert ENGINE_NAMES == ("reference", "fast")
        assert isinstance(get_engine("reference"), ReferenceEngine)
        assert isinstance(get_engine("fast"), FastEngine)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp")

    def test_simulate_engine_argument_overrides_config(self):
        trace = _trace(n_ops=2_500)
        config = dataclasses.replace(base_config(), engine="fast")
        ref = simulate(config, trace, warmup=500, measure=1_500,
                       engine="reference")
        fast = simulate(config, trace, warmup=500, measure=1_500)
        assert result_digest(ref) == result_digest(fast)


class TestFallbackRule:
    """Per-cycle observers force the reference stepper (the fast loop
    would be invisible to them)."""

    def _proc(self, **kwargs):
        proc = Processor(base_config(), _trace(n_ops=1_000), **kwargs)
        return proc

    def test_plain_processor_is_eligible(self):
        assert not _must_defer(self._proc())

    def test_sanitizer_defers(self):
        assert _must_defer(self._proc(sanitize=True))

    def test_no_fast_forward_defers(self):
        proc = self._proc()
        proc.fast_forward = False
        assert _must_defer(proc)

    def test_shadowed_step_cycle_defers(self):
        proc = self._proc()
        proc.step_cycle = proc.step_cycle   # bound-method shadowing
        assert _must_defer(proc)

    def test_telemetry_defers(self):
        from repro.telemetry import TelemetryProbe
        proc = self._proc()
        TelemetryProbe(period=64).attach(proc)
        assert _must_defer(proc)

    def test_sanitized_simulate_still_digest_identical(self):
        # engine="fast" with sanitize=True must transparently defer —
        # and therefore still produce the reference digest
        trace = _trace(n_ops=2_500)
        plain = simulate(base_config(), trace, warmup=500, measure=1_500)
        checked = simulate(base_config(), trace, warmup=500, measure=1_500,
                           sanitize=True, engine="fast")
        assert result_digest(plain) == result_digest(checked)


class TestSegmentedRuns:
    def test_fast_engine_resumes_across_segments(self):
        """Chopping one run into arbitrary fast-engine segments must
        land on the same state as one reference run (the warmup/measure
        split in simulate() relies on exactly this)."""
        trace = _trace("milc", n_ops=4_000)
        config = dynamic_config(3)

        ref = Processor(config, trace)
        ref.prewarm()
        ref.run(until_committed=3_000)

        fast = Processor(config, trace)
        fast.prewarm()
        engine = get_engine("fast")
        for target in (700, 1_234, 2_999, 3_000):
            engine.run(fast, until_committed=target)
        assert fast.cycle == ref.cycle
        assert fast.committed_total == ref.committed_total
        assert (result_digest(fast.result())
                == result_digest(ref.result()))


class TestLivelockBound:
    def test_bound_sized_from_remaining_commits(self):
        """The livelock allowance is elapsed-based: a run() resumed at
        a high commit count gets a budget for the commits *left*, not
        for the absolute target."""
        proc = Processor(base_config(), _trace(n_ops=3_000))
        proc.prewarm()
        proc.run(until_committed=1_000)
        entry_cycle = proc.cycle

        # livelock: cycles advance, nothing commits
        proc.step_cycle = lambda: 1
        with pytest.raises(DeadlockError, match="livelock"):
            proc.run(until_committed=1_100)
        # remaining=100 -> allowance (100 + 1000) * 600, not
        # (1100 + 1000) * 600
        assert proc.cycle - entry_cycle <= (100 + 1_000) * 600 + 1

    def test_explicit_max_cycles_still_respected(self):
        proc = Processor(base_config(), _trace(n_ops=3_000))
        proc.prewarm()
        proc.step_cycle = lambda: 1
        with pytest.raises(DeadlockError):
            proc.run(until_committed=10, max_cycles=50)
        assert proc.cycle <= 52
