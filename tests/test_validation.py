"""The built-in reproduction self-check."""

import pytest

from repro.experiments.runner import Settings
from repro.validation import Check, validate

TINY = Settings(all_programs=False, warmup=1_500, measure=4_000)


@pytest.fixture(scope="module")
def checks():
    return validate(settings=TINY, verbose=False)


class TestValidate:
    def test_all_claims_hold_at_tiny_scale(self, checks):
        failed = [c.name for c in checks if not c.passed]
        assert not failed, f"failed claims: {failed}"

    def test_covers_the_headline_figures(self, checks):
        names = {c.name.split(".")[0] for c in checks}
        assert {"table3", "fig04", "fig07", "fig09", "fig12"} <= names

    def test_checks_carry_detail(self, checks):
        for check in checks:
            assert check.claim and check.detail

    def test_verbose_prints(self, capsys):
        validate(settings=TINY, verbose=True)
        out = capsys.readouterr().out
        assert "PASS" in out and "claims hold" in out

    def test_check_dataclass(self):
        check = Check(name="x", claim="y", passed=True, detail="z")
        assert check.passed
