"""Experiment runner machinery: Settings, Sweep caching, CLI parsing."""

import pytest

from repro.config import base_config, fixed_config
from repro.experiments.runner import (
    Settings,
    Sweep,
    cli_settings,
    quick_settings,
    render_table,
)


class TestSettings:
    def test_defaults(self):
        s = Settings()
        assert s.all_programs
        assert s.trace_ops == s.warmup + s.measure + 1000

    def test_selected_subset(self):
        s = Settings(all_programs=False)
        assert len(s.programs()) == 14
        assert len(s.memory_programs()) == 8
        assert len(s.compute_programs()) == 6

    def test_full_set_partitions(self):
        s = Settings()
        mem, comp = s.memory_programs(), s.compute_programs()
        assert set(mem) | set(comp) == set(s.programs())
        assert not set(mem) & set(comp)

    def test_quick_settings_smaller(self):
        q = quick_settings()
        assert not q.all_programs
        assert q.measure < Settings().measure

    def test_frozen(self):
        with pytest.raises(Exception):
            Settings().measure = 5


class TestSweepCache:
    @pytest.fixture(scope="class")
    def sweep(self):
        return Sweep(Settings(all_programs=False, warmup=800,
                              measure=2000))

    def test_traces_cached(self, sweep):
        assert sweep.trace("gcc") is sweep.trace("gcc")

    def test_results_cached_by_config(self, sweep):
        a = sweep.run("gcc", base_config())
        b = sweep.run("gcc", base_config())
        assert a is b

    def test_distinct_levels_distinct_results(self, sweep):
        a = sweep.run("gcc", fixed_config(1))
        b = sweep.run("gcc", fixed_config(2))
        assert a is not b

    def test_key_extra_separates(self, sweep):
        a = sweep.run("gcc", base_config())
        b = sweep.run("gcc", base_config(), key_extra="other")
        assert a is not b

    def test_energy_annotated(self, sweep):
        res = sweep.run("gcc", base_config())
        assert res.energy_nj > 0 and res.edp > 0

    def test_speedup_helper(self, sweep):
        assert sweep.speedup("gcc", sweep.base("gcc")) == \
            pytest.approx(1.0)

    def test_gm_speedups(self, sweep):
        gm = sweep.gm_speedups(("gcc",), sweep.base)
        assert gm == pytest.approx(1.0)


class TestCLISettings:
    def test_defaults(self):
        s = cli_settings([])
        assert s.all_programs and s.measure == 15_000

    def test_flags(self):
        s = cli_settings(["--selected", "--measure", "5000",
                          "--warmup", "1000", "--seed", "9"])
        assert not s.all_programs
        assert (s.measure, s.warmup, s.seed) == (5000, 1000, 9)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["col", "x"], [["aaaa", "1"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines if l.strip()}) <= 2

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
