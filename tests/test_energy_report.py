"""Energy breakdown reporting."""

import pytest

from repro.config import base_config, dynamic_config
from repro.energy import (
    EnergyModel,
    breakdown_rows,
    compare_breakdowns,
    render_breakdown,
)
from repro.pipeline import simulate
from repro.workloads import generate_trace, profile


@pytest.fixture(scope="module")
def run_pair():
    trace = generate_trace(profile("omnetpp"), n_ops=8000, seed=3)
    base = simulate(base_config(), trace, warmup=2000, measure=5000)
    dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=5000)
    return base, dyn


class TestBreakdownRows:
    def test_shares_sum_to_one(self, run_pair):
        base, __ = run_pair
        bd = EnergyModel().breakdown(base, base_config())
        rows = breakdown_rows(bd)
        assert sum(share for __, ___, share in rows) == pytest.approx(1.0)
        assert len(rows) == 5

    def test_values_match_breakdown(self, run_pair):
        base, __ = run_pair
        bd = EnergyModel().breakdown(base, base_config())
        rows = dict((name, val) for name, val, __ in breakdown_rows(bd))
        assert rows["window"] == pytest.approx(bd.window_nj)
        assert rows["memory"] == pytest.approx(bd.memory_nj)


class TestRendering:
    def test_render_breakdown(self, run_pair):
        base, __ = run_pair
        text = render_breakdown(base, base_config())
        assert "omnetpp" in text
        assert "window" in text and "leakage" in text and "total" in text

    def test_compare_breakdowns(self, run_pair):
        base, dyn = run_pair
        text = compare_breakdowns([
            ("base", base, base_config()),
            ("resize", dyn, dynamic_config(3)),
        ])
        assert "base" in text and "resize" in text
        assert text.count("nJ") >= 12

    def test_dynamic_window_energy_higher_per_cycle(self, run_pair):
        """The enlarged window's CAMs cost more per event — visible in
        the component split."""
        base, dyn = run_pair
        model = EnergyModel()
        base_bd = model.breakdown(base, base_config())
        dyn_bd = model.breakdown(dyn, dynamic_config(3))
        base_rate = base_bd.window_nj / base.instructions
        dyn_rate = dyn_bd.window_nj / dyn.instructions
        assert dyn_rate > base_rate
