"""Multi-core system with shared L2 + memory channel."""

import pytest

from repro.config import base_config, dynamic_config, fixed_config
from repro.multicore import MultiCoreSystem, simulate_multicore
from repro.workloads import generate_trace, profile

from tests.conftest import CODE_BASE, ialu, make_trace, warm_icache


def compute_traces(n_cores=2, n_ops=1500):
    return [make_trace([ialu(i, dst=1 + (i % 8)) for i in range(n_ops)],
                       name=f"core{c}")
            for c in range(n_cores)]


@pytest.fixture(scope="module")
def mixed_system():
    programs = ("leslie3d", "gcc")
    traces = [generate_trace(profile(p), n_ops=7000, seed=3)
              for p in programs]
    return simulate_multicore([dynamic_config(3)] * 2, traces,
                              warmup=1500, measure=4000)


class TestConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            MultiCoreSystem([base_config()], compute_traces(2))

    def test_requires_agreeing_shared_config(self):
        from dataclasses import replace
        from repro.config import CacheConfig
        odd = replace(base_config(), l2=CacheConfig(
            size_bytes=1024 * 1024, assoc=4, line_bytes=64, hit_latency=12))
        with pytest.raises(ValueError, match="agree"):
            MultiCoreSystem([base_config(), odd], compute_traces(2))

    def test_l2_is_shared_object(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        assert system.cores[0].hierarchy.l2 is system.cores[1].hierarchy.l2
        assert system.cores[0].hierarchy.l1d is not \
            system.cores[1].hierarchy.l1d

    def test_memory_is_shared_object(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        assert system.cores[0].hierarchy.memory is \
            system.cores[1].hierarchy.memory


class TestExecution:
    def test_all_cores_commit(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.run(until_committed_each=1500)
        for core in system.cores:
            assert core.committed_total == 1500

    def test_lockstep_clocks_close(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.run(until_committed_each=1000)
        cycles = [core.cycle for core in system.cores]
        # identical workloads in lockstep finish at identical times
        assert max(cycles) - min(cycles) <= 4

    def test_aggregate_ipc(self, mixed_system):
        assert mixed_system.aggregate_ipc() > 0
        per_core = [r.ipc for r in mixed_system.results()]
        assert mixed_system.aggregate_ipc() <= sum(per_core) + 0.01

    def test_channel_utilisation_sane(self, mixed_system):
        # no upper clamp any more: >1.0 is legitimate end-of-window
        # backlog; the schedule-headroom invariant inside the call is
        # what guards against corrupt accounting
        assert mixed_system.channel_utilisation() >= 0.0

    def test_per_core_results(self, mixed_system):
        results = mixed_system.results()
        assert results[0].program == "leslie3d"
        assert results[1].program == "gcc"
        assert all(r.ipc > 0 for r in results)


class TestLockstep:
    def test_transiently_idle_core_not_retired(self):
        """Regression: ``step_cycle() == 0`` alone must not retire a
        core — only a drained trace does.  A core that reports no
        progress for a few cycles (e.g. waiting on a shared resource)
        has to keep running; the old loop dropped it on the first 0
        with nothing committed."""
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        core = system.cores[1]
        real_step = core.step_cycle
        calls = {"n": 0}

        def flaky_step():
            calls["n"] += 1
            if calls["n"] <= 3:
                return 0
            return real_step()

        core.step_cycle = flaky_step
        system.run(until_committed_each=1000)
        assert core.committed_total >= 1000

    def test_max_cycles_bound_covers_all_cores(self):
        """The livelock bound is taken over every core's clock, not
        core 0's: a core resuming from a much later cycle (e.g. a
        restored measurement segment) must not trip it spuriously."""
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.cores[1].cycle += 2_000_000
        system.run(until_committed_each=800)
        for core in system.cores:
            assert core.committed_total >= 800

    def test_prewarm_budget_split_evenly(self):
        system = MultiCoreSystem([base_config()] * 4, compute_traces(4))
        seen = []
        for core in system.cores:
            core.prewarm = (
                lambda budget_fraction, _seen=seen:
                _seen.append(budget_fraction))
        system.prewarm()
        assert seen == [pytest.approx(0.625 / 4)] * 4

    def test_core_order_permutation_invariant(self):
        """With zero shared state (pure-ALU traces, disjoint PC ranges,
        pre-warmed I-caches) each trace's result must not depend on
        which core slot it runs in."""
        chains = {
            "straight": [ialu(i, dst=1 + (i % 8)) for i in range(1200)],
            "chained": [ialu(8192 + i, dst=1 + (i % 3),
                             srcs=(1 + ((i + 1) % 3),))
                        for i in range(1200)],
        }

        def per_program(order):
            traces = [make_trace(chains[name], name=name)
                      for name in order]
            system = MultiCoreSystem([base_config()] * 2, traces)
            for core in system.cores:
                warm_icache(core, CODE_BASE, CODE_BASE + 4 * 9400)
            system.run(until_committed_each=1200)
            return {r.program: (r.cycles, r.instructions)
                    for r in system.results()}

        assert per_program(("straight", "chained")) == \
            per_program(("chained", "straight"))

    def test_run_twice_is_deterministic(self):
        def fingerprint():
            traces = [generate_trace(profile(p), n_ops=7000, seed=3)
                      for p in ("leslie3d", "gcc")]
            system = simulate_multicore([dynamic_config(3)] * 2, traces,
                                        warmup=1500, measure=4000)
            return [(r.cycles, r.instructions, r.ipc)
                    for r in system.results()]
        assert fingerprint() == fingerprint()


class TestChannelAccounting:
    def test_banked_memory_utilisation(self):
        from dataclasses import replace
        cfg = base_config()
        cfg = replace(cfg, memory=replace(cfg.memory,
                                          organisation="banked"))
        traces = [generate_trace(profile(p), n_ops=7000, seed=3)
                  for p in ("libquantum", "leslie3d")]
        system = simulate_multicore([cfg] * 2, traces,
                                    warmup=1500, measure=4000)
        # a memory-heavy pair keeps the banked channel busy; the call
        # itself re-checks the schedule-headroom invariant
        assert system.channel_utilisation() > 0.0

    def test_corrupt_busy_accounting_raises(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.run(until_committed_each=500)
        system.shared_memory.busy_cycles += 10_000_000
        with pytest.raises(AssertionError, match="corrupt"):
            system.channel_utilisation()


class TestContention:
    def test_shared_memory_slows_memory_core(self):
        """A memory-bound core runs slower next to another memory-bound
        core than next to a compute core (channel contention)."""
        def leslie_ipc(neighbour):
            traces = [generate_trace(profile("leslie3d"), 7000, seed=3),
                      generate_trace(profile(neighbour), 7000, seed=4)]
            system = simulate_multicore([base_config()] * 2, traces,
                                        warmup=1500, measure=4000)
            return system.results()[0].ipc
        assert leslie_ipc("sjeng") > leslie_ipc("libquantum")

    def test_resizing_pays_at_chip_level(self):
        programs = ("leslie3d", "sphinx3")
        def chip_ipc(config):
            traces = [generate_trace(profile(p), 7000, seed=3)
                      for p in programs]
            system = simulate_multicore([config] * 2, traces,
                                        warmup=1500, measure=4000)
            return system.aggregate_ipc()
        assert chip_ipc(dynamic_config(3)) > 1.15 * chip_ipc(base_config())
