"""Multi-core system with shared L2 + memory channel."""

import pytest

from repro.config import base_config, dynamic_config, fixed_config
from repro.multicore import MultiCoreSystem, simulate_multicore
from repro.workloads import generate_trace, profile

from tests.conftest import ialu, make_trace


def compute_traces(n_cores=2, n_ops=1500):
    return [make_trace([ialu(i, dst=1 + (i % 8)) for i in range(n_ops)],
                       name=f"core{c}")
            for c in range(n_cores)]


@pytest.fixture(scope="module")
def mixed_system():
    programs = ("leslie3d", "gcc")
    traces = [generate_trace(profile(p), n_ops=7000, seed=3)
              for p in programs]
    return simulate_multicore([dynamic_config(3)] * 2, traces,
                              warmup=1500, measure=4000)


class TestConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            MultiCoreSystem([base_config()], compute_traces(2))

    def test_requires_agreeing_shared_config(self):
        from dataclasses import replace
        from repro.config import CacheConfig
        odd = replace(base_config(), l2=CacheConfig(
            size_bytes=1024 * 1024, assoc=4, line_bytes=64, hit_latency=12))
        with pytest.raises(ValueError, match="agree"):
            MultiCoreSystem([base_config(), odd], compute_traces(2))

    def test_l2_is_shared_object(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        assert system.cores[0].hierarchy.l2 is system.cores[1].hierarchy.l2
        assert system.cores[0].hierarchy.l1d is not \
            system.cores[1].hierarchy.l1d

    def test_memory_is_shared_object(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        assert system.cores[0].hierarchy.memory is \
            system.cores[1].hierarchy.memory


class TestExecution:
    def test_all_cores_commit(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.run(until_committed_each=1500)
        for core in system.cores:
            assert core.committed_total == 1500

    def test_lockstep_clocks_close(self):
        system = MultiCoreSystem([base_config()] * 2, compute_traces(2))
        system.run(until_committed_each=1000)
        cycles = [core.cycle for core in system.cores]
        # identical workloads in lockstep finish at identical times
        assert max(cycles) - min(cycles) <= 4

    def test_aggregate_ipc(self, mixed_system):
        assert mixed_system.aggregate_ipc() > 0
        per_core = [r.ipc for r in mixed_system.results()]
        assert mixed_system.aggregate_ipc() <= sum(per_core) + 0.01

    def test_channel_utilisation_bounded(self, mixed_system):
        assert 0.0 <= mixed_system.channel_utilisation() <= 1.0

    def test_per_core_results(self, mixed_system):
        results = mixed_system.results()
        assert results[0].program == "leslie3d"
        assert results[1].program == "gcc"
        assert all(r.ipc > 0 for r in results)


class TestContention:
    def test_shared_memory_slows_memory_core(self):
        """A memory-bound core runs slower next to another memory-bound
        core than next to a compute core (channel contention)."""
        def leslie_ipc(neighbour):
            traces = [generate_trace(profile("leslie3d"), 7000, seed=3),
                      generate_trace(profile(neighbour), 7000, seed=4)]
            system = simulate_multicore([base_config()] * 2, traces,
                                        warmup=1500, measure=4000)
            return system.results()[0].ipc
        assert leslie_ipc("sjeng") > leslie_ipc("libquantum")

    def test_resizing_pays_at_chip_level(self):
        programs = ("leslie3d", "sphinx3")
        def chip_ipc(config):
            traces = [generate_trace(profile(p), 7000, seed=3)
                      for p in programs]
            system = simulate_multicore([config] * 2, traces,
                                        warmup=1500, measure=4000)
            return system.aggregate_ipc()
        assert chip_ipc(dynamic_config(3)) > 1.15 * chip_ipc(base_config())
