"""The distributed fabric: coordinator/worker serving, cluster dedup.

The acceptance bar (ISSUE 7): N workers serving a duplicate-heavy
stream produce bit-identical digests to a single-node run while each
unique simulation executes exactly once cluster-wide; a worker killed
mid-job triggers a lease-timeout requeue with no torn store entries
and no duplicate execution visible in the digests; admission pressure
propagates through the coordinator as (possibly fractional)
``Retry-After`` hints.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.experiments.cache import ResultStore, TieredResultStore
from repro.experiments.parallel import _run_job
from repro.service.client import ClusterClient, QueueFull, ServiceClient, ServiceError
from repro.service.cluster import Coordinator, WorkerAgent, parse_coordinator
from repro.service.frontend import format_retry_after
from repro.service.jobs import build_spec
from repro.verify.digest import result_digest

#: ~60 ms of simulation per unique shape
FAST = {"program": "mcf", "model": "dynamic", "level": 3,
        "warmup": 500, "measure": 1_500, "seed": 1}
#: seconds of simulation: long enough to SIGKILL a worker mid-job
SLOW = {"program": "mcf", "model": "dynamic", "seed": 9,
        "warmup": 1_000, "measure": 40_000}


def _start_coordinator(tmp_path, **kwargs):
    defaults = dict(port=0, queue_limit=16,
                    cache_dir=str(tmp_path / "shared"))
    defaults.update(kwargs)
    coord = Coordinator(**defaults)
    thread = coord.start_in_thread()
    client = ClusterClient(port=coord.port)
    client.wait_ready(timeout=30)
    return coord, thread, client


def _stop(coord, thread):
    coord.request_stop()
    thread.join(timeout=60)
    assert not thread.is_alive()


def _start_agent(coord, tmp_path, name, **kwargs):
    defaults = dict(name=name, slots=2,
                    cache_dir=str(tmp_path / f"local-{name}"),
                    lease_wait=0.5, retry_interval=0.1)
    defaults.update(kwargs)
    agent = WorkerAgent(f"http://127.0.0.1:{coord.port}", **defaults)
    thread = threading.Thread(target=agent.run, daemon=True)
    thread.start()
    return agent, thread


def _wait_until(predicate, timeout=20.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def _execute_grant(grant, shared_dir):
    """What a worker does, inlined: derive the spec, run, write back."""
    spec = build_spec(grant["payload"])
    assert spec.key == grant["key"]
    __, result, __busy = _run_job(spec)
    ResultStore(shared_dir).put(spec.key, result)
    return result


# ----------------------------------------------------------- worker protocol


class TestWorkerProtocol:
    def test_register_lease_complete_roundtrip(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            answer = client.register_worker(name="proto", slots=2)
            wid = answer["worker_id"]
            assert answer["lease_ttl"] == coord.lease_ttl
            assert answer["shared_cache_dir"] == coord.store.directory

            record = client.submit(dict(FAST))[0]
            grants = client.lease(wid, max_jobs=2)["jobs"]
            assert len(grants) == 1
            assert grants[0]["job_id"] == record["id"]
            assert grants[0]["attempt"] == 1
            assert grants[0]["payload"] == FAST
            assert client.job(record["id"])["state"] == "running"

            result = _execute_grant(grants[0], coord.store.directory)
            client.complete(wid, grants[0]["key"], ok=True,
                            busy_seconds=0.05)
            finished = client.job(record["id"])
            assert finished["state"] == "done"
            assert finished["result"]["digest"] == result_digest(result)
            assert client.metrics()["repro_service_simulations_total"] == 1
        finally:
            _stop(coord, thread)

    def test_unknown_worker_gets_404(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            with pytest.raises(ServiceError) as err:
                client.lease("w9999")
            assert err.value.status == 404
        finally:
            _stop(coord, thread)

    def test_success_report_without_store_entry_fails_the_job(self, tmp_path):
        """'ok' is only believed when the shared store backs it up."""
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            wid = client.register_worker(name="liar")["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(wid)["jobs"][0]
            client.complete(wid, grant["key"], ok=True)  # never wrote it
            finished = client.job(record["id"])
            assert finished["state"] == "failed"
            assert "no entry" in finished["error"]
        finally:
            _stop(coord, thread)

    def test_worker_failure_fails_fast_without_requeue(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            wid = client.register_worker(name="sad")["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(wid)["jobs"][0]
            client.complete(wid, grant["key"], ok=False,
                            error="ValidationError: version skew")
            finished = client.job(record["id"])
            assert finished["state"] == "failed"
            assert "version skew" in finished["error"]
            assert client.metrics()["repro_service_requeues_total"] == 0
        finally:
            _stop(coord, thread)

    def test_affinity_prefers_jobs_in_advertised_shards(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            jobs = [dict(FAST, seed=seed) for seed in range(1, 9)]
            keys = [build_spec(payload).key for payload in jobs]
            client.submit(jobs)
            # advertise exactly one queued job's shard: not the first,
            # so FIFO and affinity would pick differently
            wid = client.register_worker(
                name="affine", prefixes=[keys[5][:2]])["worker_id"]
            grant = client.lease(wid, prefixes=[keys[5][:2]],
                                 max_jobs=1)["jobs"][0]
            assert grant["key"] == keys[5]
            metrics = client.metrics()
            assert metrics["repro_service_affinity_hits_total"] == 1
            # without a matching shard, work-stealing takes the FIFO head
            grant = client.lease(wid, prefixes=["zz"], max_jobs=1)["jobs"][0]
            assert grant["key"] == keys[0]
            assert client.metrics()["repro_service_affinity_misses_total"] == 1
        finally:
            _stop(coord, thread)

    def test_lease_expiry_requeues_for_the_next_worker(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path,
                                                   lease_ttl=0.3)
        try:
            dead = client.register_worker(name="doomed")["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(dead)["jobs"][0]
            # the worker never renews: the reaper requeues after the TTL
            assert _wait_until(
                lambda: client.job(record["id"])["state"] == "queued")
            events = coord.jobs[record["id"]].events
            assert any(e.get("requeued") for e in events)

            rescuer = client.register_worker(name="rescuer")["worker_id"]
            regrant = client.lease(rescuer)["jobs"][0]
            assert regrant["key"] == grant["key"]
            assert regrant["attempt"] == 2
            _execute_grant(regrant, coord.store.directory)
            client.complete(rescuer, regrant["key"], ok=True)
            finished = client.job(record["id"])
            assert finished["state"] == "done"
            assert finished["attempts"] == 2
            metrics = client.metrics()
            assert metrics["repro_service_leases_expired_total"] >= 1
            assert metrics["repro_service_requeues_total"] >= 1
        finally:
            _stop(coord, thread)

    def test_requeue_budget_exhaustion_fails_the_job(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path,
                                                   lease_ttl=0.2,
                                                   max_requeues=0)
        try:
            wid = client.register_worker(name="onlyshot")["worker_id"]
            record = client.submit(dict(FAST))[0]
            client.lease(wid)
            assert _wait_until(
                lambda: client.job(record["id"])["state"] == "failed")
            assert "lease expired" in client.job(record["id"])["error"]
        finally:
            _stop(coord, thread)

    def test_dead_workers_landed_write_satisfies_the_requeue(self, tmp_path):
        """A worker can die *after* its atomic store write: the requeue
        path finds the entry and the job completes with no re-run."""
        coord, thread, client = _start_coordinator(tmp_path,
                                                   lease_ttl=0.3)
        try:
            wid = client.register_worker(name="posthumous")["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(wid)["jobs"][0]
            result = _execute_grant(grant, coord.store.directory)
            # no complete() call: the worker died right after the write
            assert _wait_until(
                lambda: client.job(record["id"])["state"] == "done")
            finished = client.job(record["id"])
            assert finished["result"]["digest"] == result_digest(result)
            assert client.metrics()["repro_service_requeues_total"] == 0
        finally:
            _stop(coord, thread)

    def test_deregister_requeues_held_leases_immediately(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            wid = client.register_worker(name="leaver")["worker_id"]
            record = client.submit(dict(FAST))[0]
            client.lease(wid)
            assert client.deregister(wid)["requeued"] == 1
            assert client.job(record["id"])["state"] == "queued"
            assert client.healthz()["workers"] == []
        finally:
            _stop(coord, thread)

    def test_stale_completion_after_expiry_is_tolerated(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path,
                                                   lease_ttl=0.2)
        try:
            wid = client.register_worker(name="slowpoke")["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(wid)["jobs"][0]
            assert _wait_until(  # lease expires, job requeued
                lambda: client.job(record["id"])["state"] == "queued")
            answer = client.complete(wid, grant["key"], ok=True)
            assert answer["accepted"] is False
            assert client.metrics()["repro_service_stale_completions_total"] == 1
            assert client.job(record["id"])["state"] == "queued"
        finally:
            _stop(coord, thread)


# ----------------------------------------------- admission + backpressure


class TestClusterAdmission:
    def test_retry_after_propagates_measured_worker_pressure(self, tmp_path):
        """The 429 hint scales with measured execute latency over
        cluster slots — and may be fractional."""
        coord, thread, client = _start_coordinator(tmp_path,
                                                   queue_limit=2)
        try:
            wid = client.register_worker(name="meter", slots=1)["worker_id"]
            record = client.submit(dict(FAST))[0]
            grant = client.lease(wid)["jobs"][0]
            _execute_grant(grant, coord.store.directory)
            # teach the coordinator its per-job cost: 123 ms
            client.complete(wid, grant["key"], ok=True, busy_seconds=0.123)
            assert client.job(record["id"])["state"] == "done"

            client.submit([dict(SLOW, seed=21), dict(SLOW, seed=22)])
            with pytest.raises(QueueFull) as err:
                client.submit(dict(SLOW, seed=23))
            # 2 outstanding / 1 slot x 0.123s mean = 0.246s
            assert err.value.retry_after == pytest.approx(0.246, abs=0.05)
            assert 0 < err.value.retry_after < 1
        finally:
            _stop(coord, thread)

    def test_drain_rejects_pending_and_refuses_new_work(self, tmp_path):
        coord, thread, client = _start_coordinator(tmp_path,
                                                   drain_grace=0.2)
        record = client.submit(dict(FAST))[0]  # pending: no workers
        _stop(coord, thread)
        assert coord.jobs[record["id"]].state == "rejected"
        status, __, body = coord.submit_batch([dict(FAST)])
        assert status == 503

    def test_format_retry_after(self):
        assert format_retry_after(2.0) == "2"
        assert format_retry_after(1) == "1"
        assert format_retry_after(0.25) == "0.250"
        assert format_retry_after(0.05) == "0.050"


# ------------------------------------------------------------- end to end


class TestClusterEndToEnd:
    def test_duplicate_heavy_stream_dedups_cluster_wide(self, tmp_path):
        """Two workers, duplicate-heavy batch: every unique simulation
        runs exactly once cluster-wide, digests are bit-identical to
        the library path, and a resubmission is served from the store."""
        coord, thread, client = _start_coordinator(tmp_path)
        agents = []
        try:
            for index in range(2):
                agents.append(_start_agent(coord, tmp_path, f"w{index}"))
            batch = [dict(FAST, seed=seed)
                     for seed in (1, 2, 3) for __ in range(2)]
            records = client.submit_and_wait(batch, timeout=120)
            assert [r["state"] for r in records] == ["done"] * 6
            assert client.metrics()["repro_service_simulations_total"] == 3

            # bit-identity against the direct library path
            for record, payload in zip(records, batch):
                __, local, __b = _run_job(build_spec(payload))
                assert record["result"]["digest"] == result_digest(local)
            # both records of each duplicate pair carry one digest
            digests = [r["result"]["digest"] for r in records]
            assert digests[0::2] == digests[1::2]

            again = client.submit_and_wait(batch, timeout=120)
            assert all(r["cached"] for r in again)
            assert client.metrics()["repro_service_simulations_total"] == 3
            assert [r["result"]["digest"] for r in again] == digests
        finally:
            for agent, __ in agents:
                agent.stop()
            for __, athread in agents:
                athread.join(timeout=30)
            _stop(coord, thread)

    def test_sigkill_mid_job_requeues_with_no_torn_entries(self, tmp_path):
        """The chaos case: a worker *process* SIGKILLed mid-execution.
        The lease expires, the job requeues onto a healthy worker, and
        every store entry still unpickles (atomic writes)."""
        coord, thread, client = _start_coordinator(tmp_path,
                                                   lease_ttl=1.0)
        rescuer = athread = None
        try:
            src = os.path.abspath(
                os.path.join(os.path.dirname(repro.__file__), ".."))
            env = dict(os.environ, PYTHONPATH=src)
            victim = subprocess.Popen(
                [sys.executable, "-m", "repro.service", "worker",
                 "--coordinator", f"http://127.0.0.1:{coord.port}",
                 "--name", "victim", "--slots", "1",
                 "--cache-dir", str(tmp_path / "victim-local")],
                env=env, cwd=str(tmp_path),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            try:
                assert _wait_until(lambda: client.healthz()["workers"],
                                   timeout=30)
                record = client.submit(dict(SLOW))[0]
                assert _wait_until(
                    lambda: client.job(record["id"])["state"] == "running",
                    timeout=30)
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=10)
            finally:
                if victim.poll() is None:
                    victim.kill()

            rescuer, athread = _start_agent(coord, tmp_path, "rescuer",
                                            slots=1)
            finished = client.wait(record["id"], timeout=120)
            assert finished["state"] == "done"
            assert finished["attempts"] >= 2
            metrics = client.metrics()
            assert metrics["repro_service_leases_expired_total"] >= 1
            assert metrics["repro_service_requeues_total"] >= 1
            # digest identical to the library path despite the murder
            __, local, __b = _run_job(build_spec(SLOW))
            assert finished["result"]["digest"] == result_digest(local)
            # no torn store entries: every file on disk unpickles
            check = ResultStore(coord.store.directory)
            entries = list(check.iter_disk())
            assert entries
            for key, *__rest in entries:
                assert check.get(key) is not None
        finally:
            if rescuer is not None:
                rescuer.stop()
                athread.join(timeout=30)
            _stop(coord, thread)

    def test_worker_version_skew_is_detected_not_stored(self, tmp_path):
        """A grant whose content address this worker cannot re-derive
        (simulator version skew) fails loudly instead of writing a
        wrong-version result into the shared store."""
        coord, thread, client = _start_coordinator(tmp_path)
        try:
            agent = WorkerAgent(f"http://127.0.0.1:{coord.port}",
                                name="skewed", cache_dir=str(tmp_path / "sk"))
            assert agent._register()
            agent._execute_one({"key": "0" * 64, "payload": dict(FAST)})
            assert agent.failed == 1 and agent.executed == 0
            assert ResultStore(coord.store.directory).disk_entries() == 0
        finally:
            _stop(coord, thread)


# ---------------------------------------------------------- tiered store


class TestTieredStore:
    def _result(self):
        spec = build_spec(dict(FAST))
        key, result, __ = _run_job(spec)
        return key, result

    def test_write_back_reaches_the_shared_tier(self, tmp_path):
        store = TieredResultStore(str(tmp_path / "local"),
                                  str(tmp_path / "shared"))
        key, result = self._result()
        store.put(key, result)
        assert ResultStore(str(tmp_path / "local")).get(key) is not None
        assert ResultStore(str(tmp_path / "shared")).get(key) is not None

    def test_read_through_promotes_into_the_local_tier(self, tmp_path):
        shared = ResultStore(str(tmp_path / "shared"))
        key, result = self._result()
        shared.put(key, result)
        store = TieredResultStore(str(tmp_path / "local"), shared)
        assert store.shard_prefixes() == []
        fetched = store.get(key)
        assert fetched is not None
        assert store.shared_hits == 1 and store.misses == 0
        # promoted: now a local disk entry, and the shard is advertised
        assert store.shard_prefixes() == [key[:2]]
        assert ResultStore(str(tmp_path / "local")).get(key) is not None

    def test_miss_in_both_tiers_counts_once(self, tmp_path):
        store = TieredResultStore(str(tmp_path / "local"),
                                  str(tmp_path / "shared"))
        assert store.get("ab" * 32) is None
        assert store.misses == 1
        assert store.contains("ab" * 32) is False

    def test_contains_spans_both_tiers(self, tmp_path):
        shared = ResultStore(str(tmp_path / "shared"))
        key, result = self._result()
        shared.put(key, result)
        store = TieredResultStore(str(tmp_path / "local"), shared)
        assert store.contains(key)


# ------------------------------------------------------------------- CLI


class TestAddressParsing:
    def test_parse_coordinator_forms(self):
        assert parse_coordinator("http://box:9000") == ("box", 9000)
        assert parse_coordinator("https://box:9000/") == ("box", 9000)
        assert parse_coordinator("box:9000") == ("box", 9000)
        assert parse_coordinator("box") == ("box", 8321)
        with pytest.raises(ValueError):
            parse_coordinator("http://:9000")
