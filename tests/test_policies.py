"""Comparator resizing policies and the policy factory."""

import pytest

from repro.config import LEVEL_TABLE
from repro.core import (
    BanditWindowPolicy,
    ContributionPolicy,
    MLPAwarePolicy,
    OccupancyPolicy,
    StaticPolicy,
    make_policy,
)
from repro.pipeline import WindowSet


@pytest.fixture
def window():
    return WindowSet(LEVEL_TABLE, level=1)


class TestStaticPolicy:
    def test_never_changes(self, window):
        p = StaticPolicy(2)
        p.on_l2_miss(5)
        for cycle in range(100):
            d = p.tick(cycle, window)
            assert d.new_level is None and not d.stop_alloc
        assert p.level == 2

    def test_no_timers(self):
        assert StaticPolicy(1).next_timer() is None
        assert not StaticPolicy(1).wants_tick_every_cycle


class TestOccupancyPolicy:
    def test_blind_to_mlp(self, window):
        p = OccupancyPolicy(max_level=3, period=64)
        p.on_l2_miss(0)     # must be a no-op by design
        d = p.tick(63, window)
        assert d.new_level is None

    def test_enlarges_on_full_stalls(self, window):
        p = OccupancyPolicy(max_level=3, period=64,
                            enlarge_stall_threshold=0.05)
        window.iq.allocate(64)
        for cycle in range(70):
            # the dispatch stage records one full event per stalled cycle
            window.note_alloc_stall(1, 1, 0)
            d = p.tick(cycle, window)
            if d.new_level is not None:
                break
        assert p.level == 2

    def test_shrinks_when_underused(self, window):
        p = OccupancyPolicy(max_level=3, period=64, shrink_threshold=0.9)
        p.level = 2
        window.resize_to(2)
        window.iq.allocate(4)             # far below 0.9 * 64
        changed = None
        for cycle in range(200):
            d = p.tick(cycle, window)
            if d.new_level is not None:
                changed = d.new_level
                break
        assert changed == 1

    def test_stop_alloc_while_draining(self, window):
        p = OccupancyPolicy(max_level=3, period=16, shrink_threshold=0.9)
        p.level = 2
        window.resize_to(2)
        window.iq.allocate(4)             # IQ underused: shrink wanted
        window.rob.allocate(200)          # but the ROB region isn't vacant
        saw_stop = False
        for cycle in range(100):
            d = p.tick(cycle, window)
            saw_stop = saw_stop or d.stop_alloc
        assert saw_stop
        assert p.level == 2


class TestContributionPolicy:
    def test_probes_upward(self, window):
        p = ContributionPolicy(max_level=3, period=32)
        changed = []
        for cycle in range(100):
            window.committed += 2
            d = p.tick(cycle, window)
            if d.new_level is not None:
                changed.append(d.new_level)
                window.resize_to(d.new_level)
        assert 2 in changed

    def test_reverts_unprofitable_probe(self, window):
        p = ContributionPolicy(max_level=3, period=32, keep_gain=1.5)
        levels = []
        for cycle in range(640):
            window.committed += 2     # flat rate: probe never pays
            d = p.tick(cycle, window)
            if d.new_level is not None:
                window.resize_to(d.new_level)
            levels.append(p.level)
        assert max(levels) >= 2
        # every enlargement trial reverts, so the run is dominated by
        # level 1 — not pinned at the trial level
        assert levels.count(1) > len(levels) * 0.6

    def test_reference_rate_is_windowed_not_ratcheted(self, window):
        """A transient high-IPC phase must not permanently inflate the
        keep threshold: the reference rate after any check is the rate
        of the most recent period, never a historic high-water mark."""
        p = ContributionPolicy(max_level=3, period=32, keep_gain=1.1)
        rates = {0: 8, 1: 8, 2: 2, 3: 2, 4: 2, 5: 2, 6: 2}
        for cycle in range(7 * 32):
            window.committed += rates.get(cycle // 32, 2)
            d = p.tick(cycle, window)
            if d.new_level is not None:
                window.resize_to(d.new_level)
        # after the spike decayed, the reference follows the recent
        # 2/cycle phase — a ratcheted reference would still hold ~8
        assert p._last_rate < 4.0

    def test_deferred_check_uses_elapsed_cycles(self, window):
        """A check deferred past _next_check (stop_alloc drain) divides
        by the cycles actually elapsed, not the nominal period."""
        p = ContributionPolicy(max_level=3, period=32)
        p.level = 2
        p._want_shrink = True
        p._next_check = 32
        window.resize_to(2)
        window.rob.allocate(200)          # level-1 region not vacant
        for cycle in range(64):           # drain blocks for 64 cycles
            assert p.tick(cycle, window).stop_alloc
        window.rob.release(200)
        d = p.tick(64, window)            # shrink completes
        assert d.new_level == 1
        window.resize_to(1)
        window.committed = 130            # 130 commits over 97 cycles
        p.tick(97, window)                # deferred check fires here
        assert p._last_rate == pytest.approx(130 / 97)

    def test_commit_counter_wired_from_processor(self):
        """End-to-end: the processor keeps WindowSet.committed current,
        so the policy measures real commit throughput (a regression for
        the comparator reading a counter nothing ever wrote)."""
        from repro.config import dynamic_config
        from repro.pipeline import Processor
        from repro.workloads import generate_trace, profile
        trace = generate_trace(profile("sjeng"), n_ops=6_000, seed=3)
        proc = Processor(dynamic_config(3), trace,
                         policy=ContributionPolicy(max_level=3, period=256))
        proc.run(until_committed=5_000)
        assert proc.window.committed == proc.committed_total
        # ILP-bound trace: probes do not pay, so the policy must have
        # enlarged AND shrunk back instead of pinning itself at max
        assert proc.stats.enlarge_transitions > 0
        assert proc.stats.shrink_transitions > 0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("mlp", MLPAwarePolicy),
        ("occupancy", OccupancyPolicy),
        ("contribution", ContributionPolicy),
        ("static", StaticPolicy),
        ("bandit:ucb", BanditWindowPolicy),
        ("bandit:egreedy", BanditWindowPolicy),
        ("bandit:ucb:7", BanditWindowPolicy),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name, 3, 300), cls)

    def test_bandit_seed_parsed(self):
        assert make_policy("bandit:ucb:7", 3, 300).seed == 7
        assert make_policy("bandit:ucb", 3, 300).seed == 1

    @pytest.mark.parametrize("name", ["bandit", "bandit:thompson",
                                      "bandit:ucb:nope"])
    def test_bad_bandit_specs(self, name):
        with pytest.raises(ValueError):
            make_policy(name, 3, 300)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_static_with_level(self, level):
        p = make_policy(f"static:{level}", 3, 300)
        assert isinstance(p, StaticPolicy)
        assert p.level == level

    def test_bare_static_is_level_one(self):
        assert make_policy("static", 3, 300).level == 1

    @pytest.mark.parametrize("name", ["static:0", "static:4", "static:x"])
    def test_bad_static_level(self, name):
        with pytest.raises(ValueError):
            make_policy(name, 3, 300)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("bogus", 3, 300)


class TestOccupancyElapsedDenominator:
    def test_deferred_check_divides_by_elapsed(self, window):
        """Stall rate over a deferred evaluation window uses the actual
        elapsed cycles; the old period denominator over-reported the
        rate (full_events/period > full_events/elapsed), triggering
        spurious enlargements after every drain."""
        p = OccupancyPolicy(max_level=3, period=64,
                            enlarge_stall_threshold=0.05)
        p.level = 2
        window.resize_to(2)
        # force a shrink request, then block it for 100 cycles so the
        # next evaluation is deferred well past _next_check
        p._want_shrink = True
        window.rob.allocate(200)
        for cycle in range(100):
            assert p.tick(cycle, window).stop_alloc
        window.rob.release(200)
        d = p.tick(100, window)            # shrink completes at 100
        assert d.new_level == 1
        window.resize_to(1)
        # 8 stalled cycles over the 101-cycle window: 8/101 ≈ 0.079,
        # under the nominal-period misread 8/64 = 0.125.  With a 0.1
        # threshold only the buggy denominator would enlarge.
        p.enlarge_stall_threshold = 0.1
        p.shrink_threshold = 0.0           # keep the shrink path quiet
        for _ in range(8):
            window.note_alloc_stall(1, 1, 0)
        d = p.tick(101, window)
        assert d.new_level is None
        assert p.level == 1


class TestPinning:
    @pytest.mark.parametrize("name", ["mlp", "occupancy", "contribution",
                                      "bandit:ucb", "bandit:egreedy"])
    def test_pin_freezes_level(self, name):
        p = make_policy(name, 3, 300).pin(2)
        assert p.pinned_level == 2
        assert p.level == 2

    def test_pin_rejects_bad_level(self):
        with pytest.raises(ValueError, match="pin level"):
            make_policy("mlp", 3, 300).pin(0)

    def test_unpinned_by_default(self):
        assert make_policy("mlp", 3, 300).pinned_level is None
