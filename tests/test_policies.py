"""Comparator resizing policies and the policy factory."""

import pytest

from repro.config import LEVEL_TABLE
from repro.core import (
    ContributionPolicy,
    MLPAwarePolicy,
    OccupancyPolicy,
    StaticPolicy,
    make_policy,
)
from repro.pipeline import WindowSet


@pytest.fixture
def window():
    return WindowSet(LEVEL_TABLE, level=1)


class TestStaticPolicy:
    def test_never_changes(self, window):
        p = StaticPolicy(2)
        p.on_l2_miss(5)
        for cycle in range(100):
            d = p.tick(cycle, window)
            assert d.new_level is None and not d.stop_alloc
        assert p.level == 2

    def test_no_timers(self):
        assert StaticPolicy(1).next_timer() is None
        assert not StaticPolicy(1).wants_tick_every_cycle


class TestOccupancyPolicy:
    def test_blind_to_mlp(self, window):
        p = OccupancyPolicy(max_level=3, period=64)
        p.on_l2_miss(0)     # must be a no-op by design
        d = p.tick(63, window)
        assert d.new_level is None

    def test_enlarges_on_full_stalls(self, window):
        p = OccupancyPolicy(max_level=3, period=64,
                            enlarge_stall_threshold=0.05)
        window.iq.allocate(64)
        for cycle in range(70):
            # the dispatch stage records one full event per stalled cycle
            window.note_alloc_stall(1, 1, 0)
            d = p.tick(cycle, window)
            if d.new_level is not None:
                break
        assert p.level == 2

    def test_shrinks_when_underused(self, window):
        p = OccupancyPolicy(max_level=3, period=64, shrink_threshold=0.9)
        p.level = 2
        window.resize_to(2)
        window.iq.allocate(4)             # far below 0.9 * 64
        changed = None
        for cycle in range(200):
            d = p.tick(cycle, window)
            if d.new_level is not None:
                changed = d.new_level
                break
        assert changed == 1

    def test_stop_alloc_while_draining(self, window):
        p = OccupancyPolicy(max_level=3, period=16, shrink_threshold=0.9)
        p.level = 2
        window.resize_to(2)
        window.iq.allocate(4)             # IQ underused: shrink wanted
        window.rob.allocate(200)          # but the ROB region isn't vacant
        saw_stop = False
        for cycle in range(100):
            d = p.tick(cycle, window)
            saw_stop = saw_stop or d.stop_alloc
        assert saw_stop
        assert p.level == 2


class TestContributionPolicy:
    def test_probes_upward(self, window):
        p = ContributionPolicy(max_level=3, period=32)
        changed = []
        for cycle in range(100):
            p.committed += 2
            d = p.tick(cycle, window)
            if d.new_level is not None:
                changed.append(d.new_level)
                window.resize_to(d.new_level)
        assert 2 in changed

    def test_reverts_unprofitable_probe(self, window):
        p = ContributionPolicy(max_level=3, period=32, keep_gain=1.5)
        levels = []
        for cycle in range(200):
            p.committed += 2     # flat rate: probe never pays
            d = p.tick(cycle, window)
            if d.new_level is not None:
                window.resize_to(d.new_level)
            levels.append(p.level)
        assert max(levels) >= 2
        assert levels[-1] < max(levels)   # came back down


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("mlp", MLPAwarePolicy),
        ("occupancy", OccupancyPolicy),
        ("contribution", ContributionPolicy),
        ("static", StaticPolicy),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name, 3, 300), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("bogus", 3, 300)
