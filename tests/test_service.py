"""The simulation service: job API, dedup, admission control, drain.

The acceptance bar (ISSUE 5): a batch submitted twice through
``repro.service.client`` is served entirely from the ``ResultStore``
the second time (0 simulations), results are bit-identical to direct
``simulate()`` calls, queue-full requests receive 429, and a drain
finishes running jobs, rejects queued ones and leaves no orphaned
workers or corrupt cache entries.
"""

from __future__ import annotations

import time

import pytest

from repro.config import dynamic_config
from repro.energy import EnergyModel
from repro.pipeline import simulate
from repro.service.client import QueueFull, ServiceClient, ServiceError
from repro.service.jobs import ValidationError, build_spec
from repro.service.loadgen import build_job_mix, run_load
from repro.service.metrics import ServiceMetrics, parse_exposition
from repro.service.server import SimulationService
from repro.verify.digest import result_digest
from repro.workloads import generate_trace, profile

#: small but non-trivial job: ~60 ms of simulation
JOB = {"program": "mcf", "model": "dynamic", "level": 3,
       "warmup": 500, "measure": 1_500, "seed": 1}
BATCH = [
    JOB,
    {"program": "gcc", "model": "base", "warmup": 500, "measure": 1_500},
    dict(JOB),  # exact duplicate: must coalesce, not re-execute
    {"program": "leslie3d", "model": "ideal", "level": 2,
     "warmup": 500, "measure": 1_500},
]


def _start(tmp_path, **kwargs):
    defaults = dict(port=0, workers=2, queue_limit=16,
                    cache_dir=str(tmp_path / "cache"))
    defaults.update(kwargs)
    service = SimulationService(**defaults)
    thread = service.start_in_thread()
    client = ServiceClient(port=service.port)
    client.wait_ready(timeout=30)
    return service, thread, client


def _stop(service, thread):
    service.request_stop()
    thread.join(timeout=60)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("svc")
    service, thread, client = _start(tmp)
    yield service, client
    _stop(service, thread)


# ---------------------------------------------------------------- validation


class TestValidation:
    def test_unknown_program(self):
        with pytest.raises(ValidationError, match="unknown program"):
            build_spec({"program": "nope"})

    def test_unknown_model_and_keys(self):
        with pytest.raises(ValidationError, match="unknown model"):
            build_spec({"program": "mcf", "model": "quantum"})
        with pytest.raises(ValidationError, match="unknown job keys"):
            build_spec({"program": "mcf", "frobnicate": 1})

    def test_level_bounds(self):
        with pytest.raises(ValidationError):
            build_spec({"program": "mcf", "model": "fixed", "level": 9})

    def test_policy_only_for_dynamic(self):
        with pytest.raises(ValidationError, match="policy"):
            build_spec({"program": "mcf", "model": "base",
                        "policy": "mlp"})
        spec = build_spec({"program": "mcf", "model": "dynamic",
                           "policy": "occupancy"})
        assert type(spec.policy).__name__ == "OccupancyPolicy"

    def test_config_overrides_validated(self):
        spec = build_spec({"program": "mcf",
                           "config": {"transition_penalty": 20,
                                      "memory": {"min_latency": 400}}})
        assert spec.config.transition_penalty == 20
        assert spec.config.memory.min_latency == 400
        with pytest.raises(ValidationError, match="unknown config field"):
            build_spec({"program": "mcf", "config": {"warp_drive": 1}})
        with pytest.raises(ValidationError):
            build_spec({"program": "mcf", "config": {"width": -1}})

    def test_telemetry_needs_disk_store(self):
        with pytest.raises(ValidationError, match="telemetry_period"):
            build_spec({"program": "mcf", "telemetry_period": 128},
                       telemetry_dir=None)

    def test_same_key_as_campaign_path(self):
        """The service addresses jobs exactly like Sweep.run does."""
        from repro.experiments.cache import result_key
        spec = build_spec(JOB)
        assert spec.key == result_key(
            "mcf", dynamic_config(3), seed=1, warmup=500, measure=1_500,
            trace_ops=500 + 1_500 + 1_000)

    def test_http_400_names_the_field(self, served):
        __, client = served
        with pytest.raises(ServiceError) as err:
            client.submit({"program": "mcf", "model": "quantum"})
        assert err.value.status == 400
        assert "unknown model" in str(err.value)


# ----------------------------------------------------------------- execution


class TestExecution:
    def test_dedup_and_bit_identity(self, served):
        """The acceptance criterion: second submission fully cached,
        results bit-identical to a direct simulate() call."""
        service, client = served
        before = client.metrics()

        first = client.submit_and_wait(BATCH, timeout=120)
        assert [r["state"] for r in first] == ["done"] * len(BATCH)
        # the in-batch duplicate coalesced onto one execution
        assert first[2]["coalesced"] and not first[2]["cached"]
        assert first[0]["result"]["digest"] == first[2]["result"]["digest"]

        after_first = client.metrics()
        executed = (after_first["repro_service_simulations_total"]
                    - before["repro_service_simulations_total"])
        assert executed == 3  # 4 jobs, 1 duplicate

        second = client.submit_and_wait(BATCH, timeout=120)
        assert all(r["state"] == "done" and r["cached"] for r in second)
        after_second = client.metrics()
        assert (after_second["repro_service_simulations_total"]
                == after_first["repro_service_simulations_total"])
        assert [r["result"]["digest"] for r in second] \
            == [r["result"]["digest"] for r in first]

        # bit-identity against the library path, via the canonical digest
        trace = generate_trace(profile("mcf"), n_ops=3_000, seed=1)
        local = simulate(dynamic_config(3), trace, warmup=500,
                         measure=1_500)
        EnergyModel().annotate(local, dynamic_config(3))
        assert first[0]["result"]["digest"] == result_digest(local)
        assert first[0]["result"]["ipc"] == local.ipc
        assert first[0]["result"]["cycles"] == local.cycles

    def test_events_stream_records_lifecycle(self, served):
        __, client = served
        record = client.submit({"program": "milc", "model": "base",
                                "warmup": 400, "measure": 1_000})[0]
        events = [e["event"] for e in client.events(record["id"])]
        assert events[0] == "queued"
        assert events[-1] in ("done", "failed")
        if events[-1] == "done" and "running" in events:
            assert events.index("running") < events.index("done")

    def test_job_endpoint_and_404(self, served):
        __, client = served
        record = client.submit_and_wait(
            {"program": "mcf", "model": "base",
             "warmup": 400, "measure": 1_000})[0]
        fetched = client.job(record["id"])
        assert fetched["state"] == "done"
        assert fetched["result"]["program"] == "mcf"
        with pytest.raises(ServiceError) as err:
            client.job("j999999")
        assert err.value.status == 404

    def test_healthz_programs_metrics(self, served):
        __, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert "mcf" in client.programs()
        metrics = client.metrics()
        assert metrics["repro_service_up"] == 1
        assert metrics["repro_service_workers"] == 2
        assert ('repro_service_stage_latency_seconds'
                '{stage="total",quantile="0.5"}') in metrics


# ------------------------------------------------- admission control + drain


class TestAdmissionAndDrain:
    def test_queue_full_gets_429_with_retry_after(self, tmp_path):
        service, thread, client = _start(tmp_path, workers=1,
                                         queue_limit=2)
        try:
            slow = [{"program": p, "model": "dynamic", "seed": 5,
                     "warmup": 1_000, "measure": 12_000}
                    for p in ("mcf", "leslie3d")]
            admitted = client.submit(slow)
            assert len(admitted) == 2
            with pytest.raises(QueueFull) as err:
                client.submit({"program": "milc", "model": "dynamic",
                               "seed": 5, "warmup": 1_000,
                               "measure": 12_000})
            assert err.value.retry_after >= 1
            # cached work is admission-free even when the queue is full
            for record in admitted:
                client.wait(record["id"], timeout=60)
        finally:
            _stop(service, thread)

    def test_drain_finishes_running_rejects_queued(self, tmp_path):
        service, thread, client = _start(tmp_path, workers=1,
                                         queue_limit=4)
        slow = [{"program": p, "model": "dynamic", "seed": 6,
                 "warmup": 1_000, "measure": 10_000}
                for p in ("mcf", "leslie3d", "milc")]
        admitted = client.submit(slow)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(admitted[0]["id"])["state"] == "running":
                break
            time.sleep(0.02)
        workers = list(getattr(service._executor, "_processes", {}).values())
        _stop(service, thread)  # SIGTERM-equivalent: request_stop + join

        states = [service.jobs[r["id"]].state for r in admitted]
        assert states[0] == "done"  # the running job finished
        assert "rejected" in states  # queued ones were dropped
        assert all(s in ("done", "rejected") for s in states)
        # workers reaped: no orphaned pool processes from this service
        # (other fixtures' pools may still be alive in-process)
        assert workers
        for proc in workers:
            proc.join(timeout=10)
            assert not proc.is_alive()
        # no corrupt cache entries: every stored file unpickles
        from repro.experiments.cache import ResultStore
        check = ResultStore(service.store.directory)
        for key, *__ in check.iter_disk():
            assert check.get(key) is not None

    def test_submissions_rejected_while_draining(self, tmp_path):
        service, thread, client = _start(tmp_path)
        _stop(service, thread)
        status, __, body = service.submit_batch([dict(JOB)])
        assert status == 503

    def test_worker_crash_is_retried(self, tmp_path):
        service, thread, client = _start(tmp_path, workers=1,
                                         queue_limit=4, max_retries=2)
        try:
            record = client.submit({"program": "mcf", "model": "dynamic",
                                    "seed": 7, "warmup": 1_000,
                                    "measure": 15_000})[0]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(record["id"])["state"] == "running":
                    break
                time.sleep(0.02)
            # murder the worker processes mid-job
            for proc in list(getattr(service._executor,
                                     "_processes", {}).values()):
                proc.terminate()
            finished = client.wait(record["id"], timeout=60)
            assert finished["state"] == "done"
            assert finished["attempts"] >= 2
            assert client.metrics()["repro_service_retries_total"] >= 1
        finally:
            _stop(service, thread)


# ---------------------------------------------------------- client semantics


class _StuckClient(ServiceClient):
    """A client whose jobs never finish — and no server to bother."""

    def __init__(self, jobs=3):
        super().__init__(port=1)
        self._jobs = jobs

    def submit(self, jobs):
        return [{"id": f"j{n}", "state": "queued"}
                for n in range(self._jobs)]

    def job(self, job_id):
        return {"id": job_id, "state": "running"}


class TestClientSemantics:
    def test_submit_and_wait_deadline_is_shared_across_the_batch(self):
        """Regression: the timeout used to be per *job*, so a stuck
        batch of N jobs blocked for N x timeout."""
        client = _StuckClient(jobs=3)
        started = time.monotonic()
        with pytest.raises(TimeoutError, match="still"):
            client.submit_and_wait([{}] * 3, timeout=0.5)
        elapsed = time.monotonic() - started
        assert elapsed < 1.25  # one shared deadline, not 3 x 0.5s

    def test_truncated_event_stream_raises_not_silently_ends(self):
        """Regression: a connection dropped before the terminal event
        used to end the generator exactly like a completed stream."""
        import socket as socketlib

        server = socketlib.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def serve_one_truncated_stream():
            conn, __ = server.accept()
            conn.recv(65536)
            line = b'{"event": "queued", "job": "j1", "seq": 0}\n'
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/x-ndjson\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n"
                         + f"{len(line):X}\r\n".encode() + line + b"\r\n")
            conn.close()  # dies without a terminal event or final chunk
            server.close()

        import threading
        threading.Thread(target=serve_one_truncated_stream,
                         daemon=True).start()
        client = ServiceClient(port=port, timeout=10.0)
        with pytest.raises(ServiceError, match="truncated|dropped"):
            list(client.events("j1"))

    def test_fractional_retry_after_round_trips(self):
        from repro.service.frontend import format_retry_after
        assert format_retry_after(3.0) == "3"
        assert format_retry_after(0.25) == "0.250"
        # the client parses either form back to the same float
        assert float(format_retry_after(0.25)) == 0.25
        assert float(format_retry_after(3.0)) == 3.0


# ------------------------------------------------------------------- loadgen


class TestLoadgen:
    def test_job_mix_is_deterministic(self):
        a = build_job_mix(42, 6, ("mcf", "gcc"), measure=1_000, warmup=300)
        b = build_job_mix(42, 6, ("mcf", "gcc"), measure=1_000, warmup=300)
        assert a == b
        c = build_job_mix(43, 6, ("mcf", "gcc"), measure=1_000, warmup=300)
        assert a != c

    def test_run_reports_throughput_latency_and_hits(self, served):
        __, client = served
        report = run_load(client, rps=10, duration=1.5, seed=11,
                          measure=1_000, warmup=300, distinct=3)
        assert report.offered == 15
        assert report.completed + report.rejected + report.failed \
            + report.errors == report.offered
        assert report.completed > 0
        assert report.failed == report.errors == 0
        # 3 distinct shapes over 15 requests: duplicates must hit
        assert report.cache_hit_rate > 0
        assert report.latency.count == report.completed
        assert report.latency.percentile(0.5) > 0
        text = report.render()
        assert "p95" in text and "hit rate" in text

        # identical seed -> identical offered mix -> fully cached rerun
        again = run_load(client, rps=10, duration=1.5, seed=11,
                         measure=1_000, warmup=300, distinct=3)
        assert again.cache_hit_rate == 1.0

    def test_retry_429_honours_fractional_retry_after(self):
        """A 429'd submit sleeps the server's (fractional) Retry-After
        and resubmits instead of counting the request as rejected."""

        class FlakyAdmission(ServiceClient):
            def __init__(self):
                super().__init__(port=1)
                self.rejections = 2
                self.submits = 0

            def submit(self, jobs):
                self.submits += 1
                if self.rejections:
                    self.rejections -= 1
                    raise QueueFull("queue full", retry_after=0.05)
                return [{"id": "j1", "state": "queued"}]

            def wait(self, job_id, timeout=120.0, poll=0.05):
                return {"id": job_id, "state": "done", "cached": True}

        client = FlakyAdmission()
        report = run_load(client, rps=10, duration=0.1, seed=3,
                          retry_429=3)
        assert report.offered == 1
        assert report.retried == 2 and client.submits == 3
        assert report.rejected == 0 and report.completed == 1

        # with retries exhausted the request counts as rejected
        client = FlakyAdmission()
        client.rejections = 99
        report = run_load(client, rps=10, duration=0.1, seed=3,
                          retry_429=2)
        assert report.rejected == 1 and report.retried == 2
        assert "retried after 429" in report.render()


# ------------------------------------------------------------------- metrics


class TestMetrics:
    def test_exposition_round_trip(self):
        metrics = ServiceMetrics()
        metrics.inc("jobs_submitted", 3)
        metrics.inc("cache_hits")
        metrics.inc("simulations")
        metrics.observe("total", 0.25)
        metrics.gauges["queue_depth"] = lambda: 4
        parsed = parse_exposition(metrics.render())
        assert parsed["repro_service_jobs_submitted_total"] == 3
        assert parsed["repro_service_queue_depth"] == 4
        assert parsed["repro_service_cache_hit_rate"] == 0.5
        assert parsed['repro_service_stage_latency_seconds_count'
                      '{stage="total"}'] == 1

    def test_latency_reservoir_percentiles(self):
        from repro.telemetry import LatencyReservoir
        reservoir = LatencyReservoir(limit=100)
        for value in range(1, 101):
            reservoir.record(value / 100.0)
        assert reservoir.percentile(0.0) == 0.01
        assert reservoir.percentile(1.0) == 1.0
        assert abs(reservoir.percentile(0.5) - 0.5) <= 0.011
        assert reservoir.count == 100
        # ring behaviour past the limit stays deterministic
        reservoir.record(9.9)
        assert reservoir.count == 101
        assert reservoir.max == 9.9
