"""Determinism of the parallel campaign path.

The acceptance bar for the execution layer: a campaign fanned out over
worker processes must produce **bit-identical** results to the serial
path — same cycle counts, same float series, same everything except
wall-clock.  These tests run a small 2-program, 3-experiment campaign
both ways and compare the machine-readable series exactly.
"""

from __future__ import annotations

import importlib

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.cache import JobRecorder, ResultStore, recording
from repro.experiments.parallel import execute_campaign, plan_campaign
from repro.experiments.runner import Settings, Sweep

#: one memory-intensive + one compute-intensive program keeps every
#: experiment's per-category geometric means well-defined
SETTINGS = Settings(warmup=800, measure=1_500,
                    only_programs=("leslie3d", "gcc"))
EXP_IDS = ("fig07", "table3", "fig08")


def _campaign_series(store: ResultStore) -> tuple[dict, Sweep]:
    sweep = Sweep(SETTINGS, store=store)
    series = {}
    for exp_id in EXP_IDS:
        module = importlib.import_module(EXPERIMENTS[exp_id])
        series[exp_id] = module.run(sweep=sweep).series
    return series, sweep


@pytest.fixture(scope="module")
def serial_series():
    series, __ = _campaign_series(ResultStore(None))
    return series


class TestPlanning:
    def test_planner_collects_deduplicated_jobs(self):
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        assert len(recorder) > 0
        # fig07 alone needs base+fix2+fix3+dyn+ideal2+ideal3 per program
        assert len(recorder) >= 6 * len(SETTINGS.programs())
        # every key appears once: keys are the dedup
        assert len(set(recorder.jobs)) == len(recorder)

    def test_planning_leaves_no_recorder_behind(self):
        from repro.experiments.cache import active_recorder
        plan_campaign(EXP_IDS[:1], SETTINGS)
        assert active_recorder() is None

    def test_recording_context_restores_previous(self):
        from repro.experiments.cache import active_recorder
        outer = JobRecorder()
        with recording(outer):
            with recording(JobRecorder()):
                pass
            assert active_recorder() is outer
        assert active_recorder() is None


class TestParallelDeterminism:
    def test_parallel_matches_serial_bitwise(self, serial_series, tmp_path):
        """--jobs 4 campaign == serial campaign, bit for bit."""
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        report = execute_campaign(recorder, store, jobs=4)
        assert report.executed == report.planned > 0

        series, sweep = _campaign_series(store)
        # every simulation the experiments asked for was pre-planned
        assert sweep.sim_runs == 0
        assert sweep.cache_hits > 0
        # dict == compares floats exactly: bit-identical or bust
        assert series == serial_series

    def test_warm_cache_second_run_simulates_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        first = execute_campaign(recorder, store, jobs=2)
        assert first.executed > 0

        again = execute_campaign(plan_campaign(EXP_IDS, SETTINGS),
                                 ResultStore(str(tmp_path)), jobs=2)
        assert again.executed == 0
        assert again.already_cached == again.planned == first.planned

    def test_inline_jobs1_matches_serial(self, serial_series, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        report = execute_campaign(recorder, store, jobs=1)
        assert report.workers == 1
        series, __ = _campaign_series(store)
        assert series == serial_series


class TestExecutionReport:
    def test_utilisation_bounds(self, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS[:1], SETTINGS)
        report = execute_campaign(recorder, store, jobs=2)
        assert 0.0 < report.utilisation() <= 1.0
        assert report.wall_seconds > 0
        assert report.busy_seconds > 0
        assert sum(report.per_program.values()) == report.executed
