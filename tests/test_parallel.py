"""Determinism of the parallel campaign path.

The acceptance bar for the execution layer: a campaign fanned out over
worker processes must produce **bit-identical** results to the serial
path — same cycle counts, same float series, same everything except
wall-clock.  These tests run a small 2-program, 3-experiment campaign
both ways and compare the machine-readable series exactly.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import parallel
from repro.experiments.cache import JobRecorder, ResultStore, recording
from repro.experiments.parallel import (
    deliver_sigterm_as_interrupt,
    execute_campaign,
    plan_campaign,
)
from repro.experiments.runner import Settings, Sweep

#: one memory-intensive + one compute-intensive program keeps every
#: experiment's per-category geometric means well-defined
SETTINGS = Settings(warmup=800, measure=1_500,
                    only_programs=("leslie3d", "gcc"))
EXP_IDS = ("fig07", "table3", "fig08")


def _campaign_series(store: ResultStore) -> tuple[dict, Sweep]:
    sweep = Sweep(SETTINGS, store=store)
    series = {}
    for exp_id in EXP_IDS:
        module = importlib.import_module(EXPERIMENTS[exp_id])
        series[exp_id] = module.run(sweep=sweep).series
    return series, sweep


@pytest.fixture(scope="module")
def serial_series():
    series, __ = _campaign_series(ResultStore(None))
    return series


class TestPlanning:
    def test_planner_collects_deduplicated_jobs(self):
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        assert len(recorder) > 0
        # fig07 alone needs base+fix2+fix3+dyn+ideal2+ideal3 per program
        assert len(recorder) >= 6 * len(SETTINGS.programs())
        # every key appears once: keys are the dedup
        assert len(set(recorder.jobs)) == len(recorder)

    def test_planning_leaves_no_recorder_behind(self):
        from repro.experiments.cache import active_recorder
        plan_campaign(EXP_IDS[:1], SETTINGS)
        assert active_recorder() is None

    def test_recording_context_restores_previous(self):
        from repro.experiments.cache import active_recorder
        outer = JobRecorder()
        with recording(outer):
            with recording(JobRecorder()):
                pass
            assert active_recorder() is outer
        assert active_recorder() is None


class TestParallelDeterminism:
    def test_parallel_matches_serial_bitwise(self, serial_series, tmp_path):
        """--jobs 4 campaign == serial campaign, bit for bit."""
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        report = execute_campaign(recorder, store, jobs=4)
        assert report.executed == report.planned > 0

        series, sweep = _campaign_series(store)
        # every simulation the experiments asked for was pre-planned
        assert sweep.sim_runs == 0
        assert sweep.cache_hits > 0
        # dict == compares floats exactly: bit-identical or bust
        assert series == serial_series

    def test_warm_cache_second_run_simulates_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        first = execute_campaign(recorder, store, jobs=2)
        assert first.executed > 0

        again = execute_campaign(plan_campaign(EXP_IDS, SETTINGS),
                                 ResultStore(str(tmp_path)), jobs=2)
        assert again.executed == 0
        assert again.already_cached == again.planned == first.planned

    def test_inline_jobs1_matches_serial(self, serial_series, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        report = execute_campaign(recorder, store, jobs=1)
        assert report.workers == 1
        series, __ = _campaign_series(store)
        assert series == serial_series


#: module-level (hence picklable) fault injections: with the fork start
#: method the monkeypatched ``parallel._run_job`` travels into the pool
#: workers, so a campaign can be failed or interrupted deterministically
_REAL_RUN_JOB = parallel._run_job


def _fail_on_leslie3d(spec):
    if spec.program == "leslie3d":
        raise RuntimeError("injected worker failure")
    return _REAL_RUN_JOB(spec)


def _interrupt_on_leslie3d(spec):
    if spec.program == "leslie3d":
        raise KeyboardInterrupt
    return _REAL_RUN_JOB(spec)


class TestInterruptedCampaign:
    """A killed or failing campaign must reap its workers and keep the
    results that did complete (the store writes are atomic, so every
    booked entry is whole and a re-run resumes from it)."""

    def _interrupted_run(self, tmp_path, monkeypatch, injected, raises):
        monkeypatch.setattr(parallel, "_run_job", injected)
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS, SETTINGS)
        with pytest.raises(raises):
            execute_campaign(recorder, store, jobs=2)
        # pool.shutdown(wait=True) ran on the unwind: no orphans
        assert multiprocessing.active_children() == []
        return recorder, store

    def test_failure_books_completed_and_resumes(self, tmp_path,
                                                 monkeypatch):
        recorder, store = self._interrupted_run(
            tmp_path, monkeypatch, _fail_on_leslie3d, RuntimeError)
        survivors = [key for key, *__ in store.iter_disk()]
        assert len(survivors) < len(recorder.jobs)

        # every survivor is a complete, loadable entry ...
        check = ResultStore(str(tmp_path))
        for key in survivors:
            assert check.get(key) is not None
        # ... and a healthy re-run picks up exactly where it stopped
        monkeypatch.setattr(parallel, "_run_job", _REAL_RUN_JOB)
        resumed = execute_campaign(plan_campaign(EXP_IDS, SETTINGS),
                                   ResultStore(str(tmp_path)), jobs=2)
        assert resumed.already_cached == len(survivors)
        assert resumed.executed == resumed.planned - len(survivors)

    def test_interrupt_unwinds_the_same_way(self, tmp_path, monkeypatch):
        recorder, store = self._interrupted_run(
            tmp_path, monkeypatch, _interrupt_on_leslie3d,
            KeyboardInterrupt)
        for key, *__ in store.iter_disk():
            assert ResultStore(str(tmp_path)).get(key) is not None


class TestSigtermTranslation:
    def test_sigterm_raises_keyboardinterrupt(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with deliver_sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # interrupted by the handler immediately
                pytest.fail("SIGTERM was not delivered")
        assert signal.getsignal(signal.SIGTERM) is before

    def test_handler_restored_on_clean_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with deliver_sigterm_as_interrupt():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_noop_outside_main_thread(self):
        """Embedders (the serving layer) own signal handling on their
        own threads — the context must not try to install handlers
        there (``signal.signal`` would raise)."""
        before = signal.getsignal(signal.SIGTERM)
        outcome = {}

        def body():
            try:
                with deliver_sigterm_as_interrupt():
                    outcome["entered"] = True
            except Exception as exc:  # pragma: no cover
                outcome["error"] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome.get("entered") is True
        assert "error" not in outcome
        assert signal.getsignal(signal.SIGTERM) is before


class TestExecutionReport:
    def test_utilisation_bounds(self, tmp_path):
        store = ResultStore(str(tmp_path))
        recorder = plan_campaign(EXP_IDS[:1], SETTINGS)
        report = execute_campaign(recorder, store, jobs=2)
        assert 0.0 < report.utilisation() <= 1.0
        assert report.wall_seconds > 0
        assert report.busy_seconds > 0
        assert sum(report.per_program.values()) == report.executed
