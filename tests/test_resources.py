"""Resizable window resources (paper Figure 3 semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LEVEL_TABLE
from repro.pipeline import WindowResource, WindowSet


class TestWindowResource:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowResource("x", capacity=0, max_capacity=4)
        with pytest.raises(ValueError):
            WindowResource("x", capacity=8, max_capacity=4)

    def test_allocate_release(self):
        r = WindowResource("x", 4, 8)
        r.allocate(3)
        assert r.occupancy == 3 and r.free == 1
        r.release(2)
        assert r.occupancy == 1

    def test_overflow_raises(self):
        r = WindowResource("x", 2, 8)
        r.allocate(2)
        with pytest.raises(RuntimeError):
            r.allocate()

    def test_underflow_raises(self):
        r = WindowResource("x", 2, 8)
        with pytest.raises(RuntimeError):
            r.release()

    def test_is_full_is_a_pure_query(self):
        """Observation and recording are split: any number of is_full()
        calls must leave the stall signal untouched."""
        r = WindowResource("x", 1, 8)
        assert not r.is_full()
        r.allocate()
        for __ in range(5):
            assert r.is_full()
        assert r.full_events == 0
        r.note_full()
        assert r.full_events == 1

    def test_release_count_tracked(self):
        r = WindowResource("x", 4, 8)
        r.allocate(3)
        r.release(2)
        assert r.alloc_count == 3
        assert r.release_count == 2
        assert r.alloc_count - r.release_count == r.occupancy

    def test_peak_occupancy(self):
        r = WindowResource("x", 4, 8)
        r.allocate(3)
        r.release(3)
        r.allocate(1)
        assert r.peak_occupancy == 3

    def test_grow(self):
        r = WindowResource("x", 4, 8)
        r.resize(8)
        assert r.capacity == 8
        with pytest.raises(ValueError):
            r.resize(9)

    def test_shrink_requires_vacancy(self):
        r = WindowResource("x", 8, 8)
        r.allocate(6)
        assert not r.can_shrink_to(4)
        with pytest.raises(RuntimeError):
            r.resize(4)
        r.release(3)
        assert r.can_shrink_to(4)
        r.resize(4)
        assert r.capacity == 4


class TestWindowSet:
    def test_level_sizes_applied(self):
        w = WindowSet(LEVEL_TABLE, level=2)
        assert w.iq.capacity == 160
        assert w.rob.capacity == 320
        assert w.lsq.capacity == 160

    def test_physical_max_defaults_to_top(self):
        w = WindowSet(LEVEL_TABLE, level=1)
        assert w.iq.max_capacity == 256
        assert w.rob.max_capacity == 512

    def test_physical_max_override(self):
        w = WindowSet(LEVEL_TABLE, level=1, max_level=1)
        assert w.iq.max_capacity == 64

    def test_resize_to_level(self):
        w = WindowSet(LEVEL_TABLE, level=1)
        w.resize_to(3)
        assert w.iq.capacity == 256
        w.resize_to(1)
        assert w.iq.capacity == 64

    def test_shrink_check_is_joint(self):
        """Figure 5 line 16: ALL three resources must be shrinkable
        simultaneously."""
        w = WindowSet(LEVEL_TABLE, level=2)
        w.rob.allocate(200)     # > level-1 ROB of 128
        assert not w.can_shrink_to(1)
        w.rob.release(100)      # now 100 <= 128
        assert w.can_shrink_to(1)

    def test_has_room(self):
        w = WindowSet(LEVEL_TABLE, level=1)
        assert w.has_room(1, 1, 1)
        w.iq.allocate(64)
        assert not w.has_room(1, 1, 0)

    def test_has_room_never_mutates(self):
        """Querying fullness twice in one cycle must not double-count
        the stall-rate signal the resizing policies consume."""
        w = WindowSet(LEVEL_TABLE, level=1)
        w.iq.allocate(64)
        for __ in range(3):
            assert not w.has_room(1, 1, 0)
        assert w.iq.full_events == 0
        assert w.rob.full_events == 0
        assert w.lsq.full_events == 0

    def test_note_alloc_stall_charges_lacking_resources(self):
        w = WindowSet(LEVEL_TABLE, level=1)
        w.iq.allocate(64)
        w.lsq.allocate(64)
        w.note_alloc_stall(1, 1, 1)
        assert w.iq.full_events == 1
        assert w.lsq.full_events == 1
        assert w.rob.full_events == 0       # the ROB had room
        w.note_alloc_stall(1, 1, 0)         # non-mem op: LSQ not needed
        assert w.iq.full_events == 2
        assert w.lsq.full_events == 1


class TestOccupancyInvariant:
    @given(st.lists(st.sampled_from(["alloc", "release", "grow", "shrink"]),
                    min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_never_violates_bounds(self, actions):
        """Property: under any interleaving of legal operations,
        0 <= occupancy <= capacity <= max_capacity."""
        r = WindowResource("x", 4, 16)
        for action in actions:
            if action == "alloc" and r.free > 0:
                r.allocate()
            elif action == "release" and r.occupancy > 0:
                r.release()
            elif action == "grow" and r.capacity < r.max_capacity:
                r.resize(r.capacity + 2 if r.capacity + 2 <= 16 else 16)
            elif action == "shrink" and r.can_shrink_to(max(1, r.capacity - 2)):
                if r.capacity - 2 >= 1:
                    r.resize(r.capacity - 2)
            assert 0 <= r.occupancy <= r.capacity <= r.max_capacity
