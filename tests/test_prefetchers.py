"""Alternative prefetchers and the factory."""

import pytest

from repro.config import PrefetcherConfig
from repro.memory import (
    NextLinePrefetcher,
    NoPrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)


def cfg(kind="stride", degree=4, enabled=True):
    return PrefetcherConfig(kind=kind, degree=degree, enabled=enabled)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("stride", StridePrefetcher),
        ("stream", StreamPrefetcher),
        ("nextline", NextLinePrefetcher),
        ("none", NoPrefetcher),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_prefetcher(cfg(kind)), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher(cfg("magic"))


class TestNoPrefetcher:
    def test_never_prefetches(self):
        p = NoPrefetcher(cfg("none"))
        assert p.train(0x100, 0x4000, miss=True) == []


class TestNextLine:
    def test_prefetches_on_miss(self):
        p = NextLinePrefetcher(cfg("nextline", degree=4))
        out = p.train(0x100, 0x4000, miss=True)
        assert out == [0x4040, 0x4080, 0x40C0, 0x4100]

    def test_quiet_on_hit(self):
        p = NextLinePrefetcher(cfg("nextline"))
        assert p.train(0x100, 0x4000, miss=False) == []

    def test_disabled(self):
        p = NextLinePrefetcher(cfg("nextline", enabled=False))
        assert p.train(0x100, 0x4000, miss=True) == []

    def test_line_aligned(self):
        p = NextLinePrefetcher(cfg("nextline", degree=2))
        out = p.train(0x100, 0x4013, miss=True)
        assert all(a % 64 == 0 for a in out)


class TestStreamBuffers:
    def test_second_sequential_miss_starts_stream(self):
        p = StreamPrefetcher(cfg("stream"), depth=4)
        assert p.train(0x100, 0x4000, miss=True) == []
        out = p.train(0x200, 0x4040, miss=True)   # PC-blind: pc differs
        assert out == [0x4080, 0x40C0, 0x4100, 0x4140]

    def test_descending_stream(self):
        p = StreamPrefetcher(cfg("stream"), depth=2)
        p.train(0x100, 0x8000, miss=True)
        out = p.train(0x100, 0x8000 - 64, miss=True)
        assert out == [0x8000 - 128, 0x8000 - 192]

    def test_stream_advances(self):
        p = StreamPrefetcher(cfg("stream"), depth=2)
        p.train(0x100, 0x4000, miss=True)
        p.train(0x100, 0x4040, miss=True)
        out = p.train(0x100, 0x4080, miss=True)
        assert out == [0x40C0, 0x4100]

    def test_unrelated_misses_no_prefetch(self):
        p = StreamPrefetcher(cfg("stream"))
        assert p.train(0x100, 0x4000, miss=True) == []
        assert p.train(0x100, 0x90000, miss=True) == []

    def test_stream_capacity_lru(self):
        p = StreamPrefetcher(cfg("stream"), max_streams=4)
        for i in range(10):
            p.train(0x100, 0x10000 * i, miss=True)
        assert len(p._streams) <= 4

    def test_reset(self):
        p = StreamPrefetcher(cfg("stream"))
        p.train(0x100, 0x4000, miss=True)
        p.reset()
        assert not p._streams and p.trained == 0


class TestIntegration:
    def test_hierarchy_honours_kind(self):
        from dataclasses import replace
        from repro.config import base_config
        from repro.memory import MemoryHierarchy
        config = replace(base_config(),
                         prefetcher=PrefetcherConfig(kind="none"))
        mem = MemoryHierarchy(config)
        for i in range(6):
            mem.load(0x50000 + i * 64, cycle=i * 400, pc=0x400)
        assert mem.prefetch_fills == 0

    def test_stream_prefetcher_fills_l2(self):
        from dataclasses import replace
        from repro.config import base_config
        from repro.memory import MemoryHierarchy
        config = replace(base_config(),
                         prefetcher=PrefetcherConfig(kind="stream"))
        mem = MemoryHierarchy(config)
        for i in range(6):
            mem.load(0x50000 + i * 64, cycle=i * 400, pc=0x400 + 4 * i)
        assert mem.prefetch_fills > 0
