"""Pipeline core timing semantics, tested with hand-written micro-traces.

These tests pin down the cycle-level behaviours the paper's evaluation
rests on: back-to-back issue (and its loss under a pipelined IQ), issue
width and FU contention, memory access timing through the hierarchy,
store-to-load forwarding, branch misprediction recovery, and squash
bookkeeping.
"""

import pytest

from repro.config import (
    ModelKind,
    ProcessorConfig,
    ResourceLevel,
    base_config,
)
from repro.isa import MicroOp, OpClass
from repro.pipeline import Processor

from tests.conftest import (
    branch,
    warm_icache,
    ialu,
    load,
    make_trace,
    run_ops,
    single_depth_levels,
    store,
    DATA_BASE,
)


def config_with_depth(depth: int) -> ProcessorConfig:
    return ProcessorConfig(levels=single_depth_levels(depth), level=1)


class TestBasicExecution:
    def test_empty_pipeline_drains(self):
        proc = run_ops([ialu(0, dst=1)])
        assert proc.committed_total == 1

    def test_independent_ops_reach_full_width(self):
        """64 independent IALUs on a 4-wide machine: ~4 IPC."""
        ops = [ialu(i, dst=1 + (i % 16)) for i in range(64)]
        proc = run_ops(ops)
        assert proc.committed_total == 64
        assert proc.stats.ipc > 2.5

    def test_dependent_chain_is_serial(self):
        """A chain of N dependent 1-cycle IALUs takes ~N cycles."""
        ops = [ialu(0, dst=1)]
        ops += [ialu(i, dst=1, srcs=(1,)) for i in range(1, 50)]
        proc = run_ops(ops)
        assert 50 <= proc.stats.cycles <= 70

    def test_imul_latency_on_chain(self):
        """Chained 3-cycle multiplies take ~3N cycles."""
        ops = [MicroOp(0x400000 + 4 * i, OpClass.IMUL, dst=1, srcs=(1,))
               for i in range(30)]
        proc = run_ops(ops)
        assert 90 <= proc.stats.cycles <= 115

    def test_determinism(self, gcc_trace):
        def run():
            p = Processor(base_config(), gcc_trace)
            p.run(until_committed=3000)
            return (p.cycle, p.stats.committed_uops,
                    p.hierarchy.l2.misses, p.predictor.mispredictions)
        assert run() == run()


class TestPipelinedIQ:
    def test_depth2_breaks_back_to_back(self):
        """The paper's core ILP cost: at IQ depth 2, a chain of
        dependent 1-cycle ops runs at one issue per 2 cycles."""
        ops = [ialu(0, dst=1)]
        ops += [ialu(i, dst=1, srcs=(1,)) for i in range(1, 50)]
        shallow = run_ops(ops, config_with_depth(1))
        deep = run_ops(ops, config_with_depth(2))
        assert deep.stats.cycles >= shallow.stats.cycles + 40

    def test_depth2_does_not_slow_long_ops(self):
        """Producers with latency >= depth hide the extra wakeup stage."""
        ops = [MicroOp(0x400000 + 4 * i, OpClass.IMUL, dst=1, srcs=(1,))
               for i in range(30)]
        shallow = run_ops(ops, config_with_depth(1))
        deep = run_ops(ops, config_with_depth(2))
        assert deep.stats.cycles <= shallow.stats.cycles + 5

    def test_depth2_does_not_slow_independent_ops(self):
        ops = [ialu(i, dst=1 + (i % 16)) for i in range(64)]
        shallow = run_ops(ops, config_with_depth(1))
        deep = run_ops(ops, config_with_depth(2))
        assert deep.stats.cycles <= shallow.stats.cycles + 6

    def test_ideal_model_ignores_depth(self):
        """The IDEAL model uses the sizes but not the pipelining."""
        ops = [ialu(0, dst=1)]
        ops += [ialu(i, dst=1, srcs=(1,)) for i in range(1, 50)]
        config = ProcessorConfig(levels=single_depth_levels(2), level=1,
                                 model=ModelKind.IDEAL)
        ideal = run_ops(ops, config)
        fixed = run_ops(ops, config_with_depth(1))
        assert abs(ideal.stats.cycles - fixed.stats.cycles) <= 2


class TestFunctionUnits:
    def test_mem_port_limit(self):
        """2 load/store ports: 32 independent L1-hitting loads need at
        least 16 issue cycles."""
        ops = []
        proc0 = Processor(base_config(), make_trace([ialu(0, dst=1)]))
        for i in range(32):
            ops.append(load(i, dst=1 + (i % 8), addr=DATA_BASE + 8 * i))
        proc = Processor(base_config(), make_trace(ops))
        warm_icache(proc)
        for i in range(32):      # prewarm L1 so loads are 2-cycle hits
            proc.hierarchy.l1d.install(DATA_BASE + 8 * i, ready_at=0)
        proc.run(until_committed=32)
        assert proc.stats.cycles >= 16

    def test_fp_ops_use_fp_units(self):
        """4 independent FP adds per cycle are sustainable (4 fpALUs)."""
        ops = [MicroOp(0x400000 + 4 * i, OpClass.FPALU, dst=33 + (i % 8))
               for i in range(64)]
        proc = run_ops(ops)
        assert proc.stats.ipc > 2.0

    def test_imul_throughput_limited_to_two(self):
        """2 iMUL/DIV units: 40 independent multiplies take >= 20 cycles."""
        ops = [MicroOp(0x400000 + 4 * i, OpClass.IMUL, dst=1 + (i % 16))
               for i in range(40)]
        proc = run_ops(ops)
        assert proc.stats.cycles >= 20


class TestMemoryTiming:
    def test_load_hit_latency(self):
        proc = Processor(base_config(), make_trace(
            [load(0, dst=1, addr=DATA_BASE)]))
        warm_icache(proc)
        proc.hierarchy.l1d.install(DATA_BASE, ready_at=0)
        proc.run(until_committed=1)
        assert proc.hierarchy.average_load_latency() == 2.0

    def test_load_miss_costs_memory_latency(self):
        proc = run_ops([load(0, dst=1, addr=DATA_BASE)])
        assert proc.hierarchy.average_load_latency() >= 300

    def test_independent_misses_overlap(self):
        """MLP: 8 independent missing loads finish in ~1 memory latency,
        not 8."""
        ops = [load(i, dst=1 + i, addr=DATA_BASE + 0x10000 * i)
               for i in range(8)]
        proc = run_ops(ops)
        assert proc.stats.cycles < 2 * 330
        assert proc.result().mlp > 3.0

    def test_dependent_misses_serialise(self):
        """Pointer chase: each load's address needs the previous load."""
        ops = [load(0, dst=1, addr=DATA_BASE)]
        ops += [load(i, dst=1, addr=DATA_BASE + 0x10000 * i, srcs=(1,))
                for i in range(1, 5)]
        proc = run_ops(ops)
        assert proc.stats.cycles >= 5 * 300

    def test_store_to_load_forwarding(self):
        """A load reading a just-stored word forwards from the LSQ
        instead of paying a miss."""
        ops = [ialu(0, dst=2),
               store(1, addr=DATA_BASE + 0x40000, srcs=(2,)),
               load(2, dst=1, addr=DATA_BASE + 0x40000)]
        proc = run_ops(ops)
        assert proc.stats.cycles < 50
        assert proc.hierarchy.average_load_latency() < 10

    def test_load_does_not_wait_for_unrelated_store(self):
        """Perfect disambiguation: a load to a different address never
        waits for an older store (even a slow one)."""
        slow_load = load(0, dst=2, addr=DATA_BASE + 0x70000)
        dependent_store = store(1, addr=DATA_BASE + 0x40000, srcs=(2,))
        other_load = load(2, dst=3, addr=DATA_BASE + 8)
        proc = Processor(base_config(), make_trace(
            [slow_load, dependent_store, other_load]))
        warm_icache(proc)
        proc.hierarchy.l1d.install(DATA_BASE + 8, ready_at=0)
        proc.run(until_committed=3)
        # the independent load completed long before the store's data
        assert proc.hierarchy.load_latency_sum < 320 + 4


class TestBranches:
    def _loop_trace(self, iterations=40, body=6):
        """A loop whose back-edge is perfectly learnable."""
        ops = []
        head = 0
        for it in range(iterations):
            for i in range(body):
                ops.append(ialu(i, dst=1 + (i % 8)))
            last = it == iterations - 1
            ops.append(branch(body, taken=not last, target=0x40_0000))
        return ops

    def test_predictable_loop_few_mispredicts(self):
        # a 16-bit gshare needs ~16 iterations to fill its history with
        # the loop pattern; after that the back edge is fully predicted
        proc = run_ops(self._loop_trace(iterations=100))
        assert proc.predictor.mispredictions <= 20

    def test_mispredict_injects_wrong_path(self):
        """An untrained taken branch mispredicts; wrong-path micro-ops
        are fetched, then squashed."""
        ops = [ialu(0, dst=1),
               branch(1, taken=True, target=0x40_8000),
               ialu(2, dst=2)]
        proc = run_ops(ops)
        assert proc.predictor.mispredictions >= 1
        assert proc.stats.wrong_path_uops > 0
        assert proc.stats.squashed_uops > 0
        assert proc.committed_total == 3

    def test_mispredict_penalty_at_least_configured(self):
        base = run_ops([ialu(i, dst=1 + i % 8) for i in range(10)])
        with_miss = run_ops(
            [ialu(0, dst=1), branch(1, taken=True, target=0x40_8000)]
            + [ialu(2 + i, dst=1 + i % 8) for i in range(8)])
        assert with_miss.stats.cycles >= base.stats.cycles + 10

    def test_wrong_path_ops_never_commit(self):
        ops = [branch(0, taken=True, target=0x40_8000), ialu(1, dst=1)]
        proc = run_ops(ops)
        assert proc.stats.committed_uops == 2
        assert proc.stats.committed_branches == 1

    def test_mispredict_distance_stat(self):
        ops = [ialu(0, dst=1),
               branch(1, taken=True, target=0x40_8000),
               ialu(2, dst=2)]
        proc = run_ops(ops)
        assert len(proc.stats.mispredict_distances) >= 1


class TestSquashInvariants:
    def test_resources_free_after_squash(self):
        ops = [branch(0, taken=True, target=0x40_8000)]
        ops += [ialu(1 + i, dst=1 + i % 8) for i in range(30)]
        proc = run_ops(ops)
        window = proc.window
        assert window.rob.occupancy == 0
        assert window.iq.occupancy == 0
        assert window.lsq.occupancy == 0

    def test_map_table_consistent_after_squash(self):
        """After recovery, dataflow through the squash point works."""
        ops = [ialu(0, dst=5),
               branch(1, taken=True, target=0x40_8000),
               ialu(2, dst=6, srcs=(5,)),
               ialu(3, dst=7, srcs=(6,))]
        proc = run_ops(ops)
        assert proc.committed_total == 4


class TestRunLoop:
    def test_max_cycles_guard(self):
        ops = [load(0, dst=1, addr=DATA_BASE + 0x50000)]
        proc = Processor(base_config(), make_trace(ops))
        with pytest.raises(RuntimeError, match="exceeded"):
            proc.run(until_committed=1, max_cycles=10)

    def test_run_past_trace_end_stops(self):
        proc = Processor(base_config(), make_trace([ialu(0, dst=1)]))
        proc.run(until_committed=100)     # only 1 op exists
        assert proc.committed_total == 1

    def test_fast_forward_preserves_cycle_accounting(self):
        """Cycles spent idle (fast-forwarded) are still accounted."""
        ops = [load(0, dst=1, addr=DATA_BASE + 0x60000),
               ialu(1, dst=2, srcs=(1,))]
        proc = run_ops(ops)
        assert proc.stats.cycles >= 300
        assert sum(proc.stats.level_cycles.values()) == proc.stats.cycles

    def test_reset_measurement_keeps_state(self, gcc_trace):
        proc = Processor(base_config(), gcc_trace)
        proc.run(until_committed=2000)
        proc.reset_measurement()
        assert proc.stats.committed_uops == 0
        # run() may overshoot by up to the commit width - 1
        boundary = proc.committed_total
        assert 2000 <= boundary <= 2003
        proc.run(until_committed=4000)
        assert proc.stats.committed_uops == proc.committed_total - boundary
