"""Learned controllers: seeded bandits, distilled tables, determinism.

The determinism contract is the headline: exploration is a pure
function of ``(seed, draw_index)``, so the same seed replays
bit-identically across runs, engines and worker processes, a different
seed keys a different content address, and the sanitizer/telemetry
instrumentation never perturbs a digest.
"""

from __future__ import annotations

import json

import pytest

from repro.config import LEVEL_TABLE, dynamic_config
from repro.core import (
    BANDIT_KINDS,
    BanditWindowPolicy,
    TablePolicy,
    make_policy,
    policy_specs,
    seeded_unit,
)
from repro.experiments.cache import (
    JobRecorder,
    JobSpec,
    ResultStore,
    policy_fingerprint,
    result_key,
)
from repro.experiments.parallel import execute_campaign
from repro.pipeline import WindowSet, simulate
from repro.verify.digest import result_digest
from repro.workloads import (
    ADVERSARIAL_PROFILES,
    ADVERSARIAL_PROGRAMS,
    adversarial_profile,
    generate_trace,
    profile,
    program_names,
)

CFG = dynamic_config(3)
WARMUP, MEASURE = 2_000, 6_000
TRACE_OPS = WARMUP + MEASURE + 1_000


def bandit(kind="ucb", seed=1, **kw):
    return BanditWindowPolicy(CFG.max_level, kind=kind, seed=seed, **kw)


def run_smoke(program, policy, *, engine=None, sanitize=False,
              telemetry=None, seed=1):
    trace = generate_trace(profile(program), n_ops=TRACE_OPS, seed=seed)
    return simulate(CFG, trace, warmup=WARMUP, measure=MEASURE,
                    policy=policy, engine=engine, sanitize=sanitize,
                    telemetry=telemetry)


class TestSeededUnit:
    def test_pure_function(self):
        assert seeded_unit(7, 42) == seeded_unit(7, 42)
        assert seeded_unit(7, 42, salt=1) == seeded_unit(7, 42, salt=1)

    def test_range(self):
        for i in range(500):
            assert 0.0 <= seeded_unit(3, i) < 1.0

    def test_sensitivity(self):
        base = seeded_unit(1, 1)
        assert seeded_unit(2, 1) != base
        assert seeded_unit(1, 2) != base
        assert seeded_unit(1, 1, salt=1) != base


@pytest.fixture
def window():
    return WindowSet(LEVEL_TABLE, level=1)


def drive(policy, window, cycles, rate_by_level, miss_every=200):
    """Tick the policy with a deterministic synthetic commit rate per
    level, applying its resize decisions like the processor would."""
    committed = 0
    for cycle in range(1, cycles + 1):
        committed += rate_by_level[policy.level]
        window.committed = committed
        if miss_every and cycle % miss_every == 0:
            policy.on_l2_miss(cycle)
        decision = policy.tick(cycle, window)
        if decision.new_level is not None:
            window.resize_to(decision.new_level)


class TestBanditPolicy:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown bandit kind"):
            BanditWindowPolicy(3, kind="thompson")

    @pytest.mark.parametrize("kind", BANDIT_KINDS)
    def test_no_misses_stays_level_one(self, window, kind):
        p = bandit(kind)
        drive(p, window, 30_000, {1: 2, 2: 3, 3: 4}, miss_every=0)
        assert p.level == 1

    @pytest.mark.parametrize("kind", BANDIT_KINDS)
    def test_stale_misses_fall_back_to_level_one(self, window, kind):
        """Eligibility needs *recent* misses: two at the start must not
        license exploration thousands of cycles later."""
        p = bandit(kind)
        p.on_l2_miss(10)
        p.on_l2_miss(20)
        drive(p, window, 30_000, {1: 2, 2: 3, 3: 4}, miss_every=0)
        assert p.level == 1

    def test_learns_small_window_under_misses(self, window):
        """Misses alone must not force enlargement (the anti-DYN case):
        when level 1 commits fastest the bandit must end there."""
        p = bandit("ucb")
        drive(p, window, 80_000, {1: 4, 2: 2, 3: 1})
        assert p._arm == 1 and p.level == 1

    def test_learns_large_window_under_misses(self, window):
        p = bandit("ucb")
        drive(p, window, 80_000, {1: 1, 2: 2, 3: 4})
        assert p._arm == 3

    def test_pin_degrades_to_static_fast_path(self):
        p = make_policy("bandit:ucb", 3, 300).pin(2)
        assert p.pinned_level == 2
        assert p.level == 2

    def test_seed_and_kind_in_fingerprint(self):
        prints = {policy_fingerprint(p) for p in (
            bandit("ucb", 1), bandit("ucb", 2),
            bandit("egreedy", 1), bandit("egreedy", 2))}
        assert len(prints) == 4

    def test_factory_parses_kind_and_seed(self):
        p = make_policy("bandit:egreedy:9", 3, 300)
        assert isinstance(p, BanditWindowPolicy)
        assert p.kind == "egreedy" and p.seed == 9

    @pytest.mark.parametrize("spec", ["bandit", "bandit:thompson",
                                      "bandit:ucb:x", "bandit:ucb:1:2"])
    def test_factory_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            make_policy(spec, 3, 300)


class TestTablePolicy:
    def test_bucket_mapping(self, window):
        p = TablePolicy(3, thresholds=(2, 8), levels=(1, 2, 3), period=64)
        window.committed = 0
        for miss_count, expect in ((0, 1), (3, 2), (50, 3)):
            p._misses = miss_count
            p._next_check = 0
            decision = p.tick(1, window)
            if decision.new_level is not None:
                window.resize_to(decision.new_level)
            assert p.level == expect or p._want_shrink

    def test_validation(self):
        with pytest.raises(ValueError, match="levels"):
            TablePolicy(3, thresholds=(1,), levels=(1,))
        with pytest.raises(ValueError, match="ascend"):
            TablePolicy(3, thresholds=(4, 1), levels=(1, 2, 3))
        with pytest.raises(ValueError, match="outside"):
            TablePolicy(3, thresholds=(1,), levels=(1, 9))

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text(json.dumps(
            {"thresholds": [2, 8], "levels": [1, 2, 3], "period": 512}))
        p = TablePolicy.from_file(str(path), 3)
        assert p.thresholds == (2, 8)
        assert p.levels == (1, 2, 3)
        assert p.period == 512

    def test_from_file_missing_key(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"thresholds": [1]}))
        with pytest.raises(ValueError, match="missing key"):
            TablePolicy.from_file(str(path), 3)

    def test_contents_not_path_fingerprinted(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        payload = json.dumps({"thresholds": [2], "levels": [1, 3]})
        a.write_text(payload)
        b.write_text(payload)
        assert (policy_fingerprint(TablePolicy.from_file(str(a), 3))
                == policy_fingerprint(TablePolicy.from_file(str(b), 3)))


class TestSeededDeterminism:
    """Same seed => bit-identical; different seed => different key."""

    @pytest.mark.parametrize("kind", BANDIT_KINDS)
    def test_replay_bit_identical(self, kind):
        first = run_smoke("libquantum", bandit(kind))
        again = run_smoke("libquantum", bandit(kind))
        assert result_digest(first) == result_digest(again)

    @pytest.mark.parametrize("kind", BANDIT_KINDS)
    def test_engines_bit_identical(self, kind):
        ref = run_smoke("libquantum", bandit(kind), engine="reference")
        fast = run_smoke("libquantum", bandit(kind), engine="fast")
        assert result_digest(ref) == result_digest(fast)

    def test_different_seed_different_result_key(self):
        keys = {result_key("mcf", CFG, seed=1, warmup=WARMUP,
                           measure=MEASURE, trace_ops=TRACE_OPS,
                           policy=bandit("egreedy", seed=s))
                for s in (1, 2, 3)}
        assert len(keys) == 3

    def test_different_seed_different_exploration(self):
        digests = {result_digest(run_smoke("mcf", bandit("egreedy", seed=s)))
                   for s in (1, 2, 3)}
        assert len(digests) == 3

    def test_sanitize_digest_identical(self):
        bare = run_smoke("libquantum", bandit("ucb"))
        checked = run_smoke("libquantum", bandit("ucb"), sanitize=True)
        assert result_digest(bare) == result_digest(checked)

    def test_telemetry_digest_identical_and_events_recorded(self):
        from repro.telemetry import TelemetryProbe
        bare = run_smoke("libquantum", bandit("ucb"))
        probe = TelemetryProbe(period=256)
        sampled = run_smoke("libquantum", bandit("ucb"), telemetry=probe)
        assert result_digest(bare) == result_digest(sampled)
        assert probe.telemetry.event_counts.get("pull", 0) > 0
        assert probe.telemetry.event_counts.get("reward", 0) > 0
        assert BanditWindowPolicy.listener is None

    def test_cross_process_bit_identical(self, tmp_path):
        """A bandit job through the campaign worker pool must match the
        in-process run — no process-local state in exploration."""
        recorder = JobRecorder()
        spec = JobSpec(
            key=result_key("libquantum", CFG, seed=1, warmup=WARMUP,
                           measure=MEASURE, trace_ops=TRACE_OPS,
                           policy=bandit("ucb")),
            program="libquantum", config=CFG, policy=bandit("ucb"),
            seed=1, warmup=WARMUP, measure=MEASURE, trace_ops=TRACE_OPS)
        recorder.record(spec)
        store = ResultStore(str(tmp_path))
        execute_campaign(recorder, store, jobs=2)
        shipped = store.get(spec.key)
        assert shipped is not None
        local = run_smoke("libquantum", bandit("ucb"))
        assert result_digest(shipped) == result_digest(local)


class TestAdversarialWorkloads:
    def test_registry_contents(self):
        assert set(ADVERSARIAL_PROGRAMS) == {
            "adv_phaseflip", "adv_missburst", "adv_deceptive"}
        for name in ADVERSARIAL_PROGRAMS:
            assert adversarial_profile(name).name == name

    def test_not_in_paper_table(self):
        assert not set(ADVERSARIAL_PROGRAMS) & set(program_names())

    def test_profile_lookup_falls_back(self):
        for name in ADVERSARIAL_PROGRAMS:
            assert profile(name) is ADVERSARIAL_PROFILES[name]

    def test_unknown_adversarial_name(self):
        with pytest.raises(KeyError, match="unknown adversarial"):
            adversarial_profile("adv_nope")

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_PROGRAMS))
    def test_traces_generate(self, name):
        trace = generate_trace(adversarial_profile(name), n_ops=2_000,
                               seed=1)
        assert len(trace.ops) == 2_000


class TestRegistryDocsSync:
    def test_error_lists_every_spec(self):
        with pytest.raises(ValueError) as err:
            make_policy("bogus", 3, 300)
        for spec in policy_specs():
            assert spec in str(err.value)

    def test_handbook_covers_every_family(self):
        import os
        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(here, "docs", "policies.md"),
                  encoding="utf-8") as fh:
            handbook = fh.read()
        for spec in policy_specs():
            assert f"`{spec}`" in handbook, (
                f"docs/policies.md is missing the registry spec {spec!r}")
