"""The differential/metamorphic verification subsystem (repro.verify).

The oracle tests here run reduced slices (one or two programs, a level
or two) so the suite stays fast; the full smoke-corpus sweep runs in CI
via ``python -m repro.verify``.
"""

import copy
import json

import pytest

from repro.config import dynamic_config
from repro.core import StaticPolicy, make_policy
from repro.verify import (
    OracleOutcome,
    check_degenerate_memory,
    check_fast_forward_equivalence,
    check_monotonicity,
    check_pin_equivalence,
    diff_payloads,
    digest_payload,
    result_digest,
)
from repro.verify.golden import check_golden, write_golden
from repro.verify.oracles import (
    ADAPTIVE_POLICIES, report, smoke_trace, _smoke_run)


@pytest.fixture(scope="module")
def gcc_result():
    return _smoke_run(dynamic_config(3), smoke_trace("gcc"))


class TestDigest:
    def test_deterministic(self, gcc_result):
        assert result_digest(gcc_result) == result_digest(gcc_result)

    def test_identical_reruns_share_digest(self, gcc_result):
        rerun = _smoke_run(dynamic_config(3), smoke_trace("gcc"))
        assert result_digest(rerun) == result_digest(gcc_result)

    def test_sensitive_to_timing_stats(self, gcc_result):
        mutated = copy.deepcopy(gcc_result)
        mutated.stats.cycles += 1
        mutated.cycles += 1
        assert result_digest(mutated) != result_digest(gcc_result)

    def test_insensitive_to_ff_variant_counters(self, gcc_result):
        """The documented exclusions really are excluded."""
        mutated = copy.deepcopy(gcc_result)
        mutated.stats.fetch_stall_cycles += 100
        mutated.stats.dispatch_stall_cycles += 100
        mutated.stats.stall_slots["policy_timer"] = 999
        mutated.energy_nj = 123.0
        mutated.edp = 456.0
        assert result_digest(mutated) == result_digest(gcc_result)

    def test_diff_payloads_names_the_field(self, gcc_result):
        mutated = copy.deepcopy(gcc_result)
        mutated.stats.committed_loads += 7
        diffs = diff_payloads(digest_payload(gcc_result),
                              digest_payload(mutated))
        assert any("stats.committed_loads" in d for d in diffs)

    def test_diff_payloads_empty_for_equal(self, gcc_result):
        payload = digest_payload(gcc_result)
        assert diff_payloads(payload, payload) == []


class TestPinEquivalenceOracle:
    def test_passes_on_gcc_all_policies(self):
        outcomes = check_pin_equivalence(
            programs=("gcc",), levels=(2,))
        assert len(outcomes) == len(ADAPTIVE_POLICIES)
        assert all(o.passed for o in outcomes), report(outcomes)
        subjects = [o.subject for o in outcomes]
        for name in ("bandit:ucb", "bandit:egreedy"):
            assert any(name in s for s in subjects)

    def test_pinned_run_is_bit_identical_to_static(self):
        """The oracle's core relation, asserted directly for one pair —
        including the cycle count, not just the digest."""
        config = dynamic_config(3)
        trace = smoke_trace("libquantum")
        static = _smoke_run(config, trace, policy=StaticPolicy(3))
        pinned = _smoke_run(config, trace, policy=make_policy(
            "mlp", config.max_level, config.memory.min_latency).pin(3))
        assert pinned.cycles == static.cycles
        assert result_digest(pinned) == result_digest(static)


class TestDegenerateMemoryOracle:
    def test_all_policy_families(self):
        """Satellite requirement: the degenerate-memory oracle covers
        every make_policy family (static and the bandits included)."""
        outcomes = check_degenerate_memory(
            policies=("mlp", "static", "occupancy", "contribution",
                      "bandit:ucb", "bandit:egreedy"))
        assert all(o.passed for o in outcomes), report(outcomes)
        subjects = [o.subject for o in outcomes]
        for name in ("mlp", "static", "occupancy", "contribution",
                     "bandit:ucb", "bandit:egreedy"):
            assert any(s.startswith(name) for s in subjects)
        # the level-1 pinning claim is asserted for the policies whose
        # only trigger is a demand miss — miss-gated exploration makes
        # the bandits part of that set
        assert any("mlp stays at level 1" in s for s in subjects)
        assert any("bandit:ucb stays at level 1" in s for s in subjects)


class TestMonotonicityOracle:
    def test_synthetic_family(self):
        outcomes = check_monotonicity(programs=())
        assert len(outcomes) == 2
        assert all(o.passed for o in outcomes), report(outcomes)


class TestFastForwardOracle:
    def test_gcc(self):
        outcomes = check_fast_forward_equivalence(programs=("gcc",))
        assert all(o.passed for o in outcomes), report(outcomes)


class TestGolden:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "golden.json")
        payload = write_golden(path, programs=("gcc",))
        assert payload["digests"]["gcc"]
        outcomes = check_golden(path)
        assert all(o.passed for o in outcomes), report(outcomes)

    def test_detects_drift(self, tmp_path):
        path = str(tmp_path / "golden.json")
        write_golden(path, programs=("gcc",))
        with open(path) as fh:
            golden = json.load(fh)
        golden["digests"]["gcc"]["dynamic"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(golden, fh)
        outcomes = check_golden(path)
        failed = [o for o in outcomes if not o.passed]
        assert [o.subject for o in failed] == ["gcc/dynamic"]

    def test_detects_version_skew(self, tmp_path):
        path = str(tmp_path / "golden.json")
        write_golden(path, programs=("gcc",))
        with open(path) as fh:
            golden = json.load(fh)
        golden["sim_version"] = "0-stale"
        with open(path, "w") as fh:
            json.dump(golden, fh)
        outcomes = check_golden(path)
        assert len(outcomes) == 1          # digests not even compared
        assert not outcomes[0].passed
        assert "regenerate" in outcomes[0].detail

    def test_missing_file(self, tmp_path):
        outcomes = check_golden(str(tmp_path / "absent.json"))
        assert len(outcomes) == 1 and not outcomes[0].passed

    def test_committed_golden_file_matches_simulator(self):
        """The repo's committed golden digests are current.  If this
        fails, either regenerate (intentional behaviour change, with a
        SIM_VERSION bump) or find the unintentional timing change."""
        outcomes = check_golden()
        assert all(o.passed for o in outcomes), report(outcomes)


class TestFuzz:
    def test_paired_fuzz_inline(self):
        from repro.verify.fuzz import run_fuzz
        outcomes = run_fuzz(n_pairs=2, jobs=1)
        assert len(outcomes) == 2
        assert {o.oracle for o in outcomes} == {"fuzz-ff", "fuzz-pin"}
        assert all(o.passed for o in outcomes), report(outcomes)

    def test_deterministic_pairs(self):
        from repro.verify.fuzz import _pair_for
        kind_a, subject_a, a1, a2 = _pair_for(3, base_seed=9)
        kind_b, subject_b, b1, b2 = _pair_for(3, base_seed=9)
        assert (kind_a, subject_a) == (kind_b, subject_b)
        assert a1.key == b1.key and a2.key == b2.key
        assert a1.key != a2.key


class TestCli:
    def test_check_subcommand(self, tmp_path):
        from repro.verify.__main__ import main
        path = str(tmp_path / "golden.json")
        write_golden(path, programs=("gcc",))
        assert main(["check", "--path", path]) == 0
        assert main(["check", "--path", str(tmp_path / "nope.json")]) == 1

    def test_regen_subcommand(self, tmp_path, capsys):
        from repro.verify.__main__ import main
        path = str(tmp_path / "golden.json")
        assert main(["regen", "--path", path]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["check", "--path", path]) == 0

    def test_fuzz_subcommand(self, capsys):
        from repro.verify.__main__ import main
        assert main(["fuzz", "--pairs", "2", "--jobs", "1"]) == 0
        assert "2/2" in capsys.readouterr().out


class TestOutcomeReport:
    def test_report_lines(self):
        outcomes = [OracleOutcome("o", "a", True),
                    OracleOutcome("o", "b", False, "boom")]
        text = report(outcomes)
        assert "ok   [o] a" in text
        assert "FAIL [o] b: boom" in text
        assert "1/2" in text
