"""CPI stack analysis."""

import pytest

from repro.analysis import CPIStack, compare_cpi_stacks, cpi_stack, render_cpi_stack
from repro.config import base_config, dynamic_config, fixed_config
from repro.pipeline import simulate
from repro.workloads import generate_trace, profile

from tests.conftest import DATA_BASE, ialu, load, run_ops


@pytest.fixture(scope="module")
def leslie_runs():
    trace = generate_trace(profile("leslie3d"), n_ops=9000, seed=3)
    base = simulate(base_config(), trace, warmup=2000, measure=6000)
    dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=6000)
    return base, dyn


class TestDecomposition:
    def test_components_sum_to_total(self, leslie_runs):
        base, __ = leslie_runs
        stack = cpi_stack(base)
        assert sum(stack.components.values()) == \
            pytest.approx(stack.total, rel=0.02)

    def test_base_component_is_inverse_width(self, leslie_runs):
        base, __ = leslie_runs
        stack = cpi_stack(base)
        assert stack.components["base"] == pytest.approx(0.25)

    def test_requires_stats(self, leslie_runs):
        base, __ = leslie_runs
        stripped = type(base)(**{**base.__dict__, "stats": None})
        with pytest.raises(ValueError):
            cpi_stack(stripped)

    def test_memory_program_dominated_by_dram(self, leslie_runs):
        base, __ = leslie_runs
        stack = cpi_stack(base)
        assert stack.fraction("mem_dram") > 0.4
        assert stack.memory_share() > 0.4

    def test_window_attacks_dram_component(self, leslie_runs):
        base, dyn = leslie_runs
        dram_base = cpi_stack(base).components.get("mem_dram", 0)
        dram_dyn = cpi_stack(dyn).components.get("mem_dram", 0)
        assert dram_dyn < 0.75 * dram_base

    def test_compute_program_has_tiny_dram_share(self):
        trace = generate_trace(profile("gcc"), n_ops=9000, seed=3)
        base = simulate(base_config(), trace, warmup=2000, measure=6000)
        stack = cpi_stack(base)
        assert stack.fraction("mem_dram") < 0.1

    def test_dependence_chain_shows_as_deps(self):
        ops = [ialu(0, dst=1)]
        ops += [ialu(i, dst=1, srcs=(1,)) for i in range(1, 60)]
        proc = run_ops(ops)
        stack = cpi_stack(proc.result())
        assert stack.fraction("deps") > 0.3

    def test_single_miss_shows_as_dram(self):
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        ops += [ialu(1 + i, dst=2 + i % 4, srcs=(1,)) for i in range(10)]
        proc = run_ops(ops)
        stack = cpi_stack(proc.result())
        assert stack.fraction("mem_dram") > 0.5


class TestRendering:
    def test_render(self, leslie_runs):
        base, __ = leslie_runs
        text = render_cpi_stack(cpi_stack(base))
        assert "DRAM" in text and "cycles/uop" in text

    def test_compare(self, leslie_runs):
        base, dyn = leslie_runs
        a, b = cpi_stack(base), cpi_stack(dyn)
        b.model = "resizing"
        text = compare_cpi_stacks([a, b])
        assert "resizing" in text and "total CPI" in text

    def test_empty_stack_fractions(self):
        stack = CPIStack(program="x", model="y", total=0.0)
        assert stack.fraction("mem_dram") == 0.0
