"""ISA: register naming, micro-op records, latency table."""

import pytest

from repro.isa import (
    EXEC_LATENCY,
    FP_REG_BASE,
    MicroOp,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_LOGICAL_REGS,
    OpClass,
    REG_INVALID,
    fp_reg,
    int_reg,
    is_branch_op,
    is_fp_reg,
    is_int_reg,
    is_mem_op,
    reg_name,
)


class TestRegisters:
    def test_flat_space(self):
        assert NUM_LOGICAL_REGS == NUM_INT_REGS + NUM_FP_REGS == 64

    def test_int_reg_mapping(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_reg_mapping(self):
        assert fp_reg(0) == FP_REG_BASE == 32
        assert fp_reg(31) == 63

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)

    def test_predicates(self):
        assert is_int_reg(5) and not is_fp_reg(5)
        assert is_fp_reg(40) and not is_int_reg(40)
        assert not is_int_reg(64) and not is_fp_reg(64)

    def test_names(self):
        assert reg_name(3) == "r3"
        assert reg_name(fp_reg(4)) == "f4"
        assert reg_name(REG_INVALID) == "-"
        with pytest.raises(ValueError):
            reg_name(99)


class TestOpClass:
    def test_mem_predicate(self):
        assert is_mem_op(OpClass.LOAD)
        assert is_mem_op(OpClass.STORE)
        assert not is_mem_op(OpClass.IALU)
        assert not is_mem_op(OpClass.BRANCH)

    def test_branch_predicate(self):
        assert is_branch_op(OpClass.BRANCH)
        assert not is_branch_op(OpClass.LOAD)

    def test_latency_table_complete(self):
        for op in OpClass:
            assert op in EXEC_LATENCY
            assert EXEC_LATENCY[op] >= 1

    def test_latency_ordering(self):
        assert EXEC_LATENCY[OpClass.IALU] == 1
        assert EXEC_LATENCY[OpClass.IMUL] > EXEC_LATENCY[OpClass.IALU]
        assert EXEC_LATENCY[OpClass.IDIV] > EXEC_LATENCY[OpClass.IMUL]
        assert EXEC_LATENCY[OpClass.FPMUL] > EXEC_LATENCY[OpClass.FPALU]


class TestMicroOp:
    def test_defaults(self):
        op = MicroOp(0x1000, OpClass.IALU, dst=3, srcs=(1, 2))
        assert op.pc == 0x1000
        assert not op.is_mem and not op.is_branch
        assert op.dst == 3 and op.srcs == (1, 2)

    def test_load_properties(self):
        op = MicroOp(0x1000, OpClass.LOAD, dst=1, addr=0x2000, size=8)
        assert op.is_load and op.is_mem and not op.is_store

    def test_store_properties(self):
        op = MicroOp(0x1000, OpClass.STORE, srcs=(1,), addr=0x2000, size=8)
        assert op.is_store and op.is_mem and not op.is_load

    def test_branch_properties(self):
        op = MicroOp(0x1000, OpClass.BRANCH, taken=True, target=0x2000)
        assert op.is_branch and op.taken and op.target == 0x2000

    def test_repr_smoke(self):
        op = MicroOp(0x1000, OpClass.LOAD, dst=1, srcs=(2,), addr=0x80,
                     size=8)
        text = repr(op)
        assert "load" in text and "r1" in text and "0x80" in text

    def test_slots_reject_new_attrs(self):
        op = MicroOp(0x1000, OpClass.NOP)
        with pytest.raises(AttributeError):
            op.bogus = 1
