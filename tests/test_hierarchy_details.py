"""Memory hierarchy edge cases: writebacks, prefetch gating, shared use."""

from dataclasses import replace

import pytest

from repro.config import PrefetcherConfig, base_config
from repro.memory import AccessPath, MemoryHierarchy


def hierarchy(**memory_overrides):
    config = base_config()
    if memory_overrides:
        config = replace(config,
                         memory=replace(config.memory, **memory_overrides))
    return MemoryHierarchy(config)


class TestWritebacks:
    def _fill_set_with_dirty(self, mem):
        """Dirty enough same-set L2 lines to force a dirty eviction."""
        # L2: 8192 sets, 64B lines -> same set every 512KB
        stride = 8192 * 64
        for i in range(6):   # assoc is 4: at least 2 evictions
            mem.store(0x100000 + i * stride, cycle=i * 400)
        return mem

    def test_disabled_by_default(self):
        mem = self._fill_set_with_dirty(hierarchy())
        assert mem.l2_writebacks == 0

    def test_dirty_eviction_counts_when_enabled(self):
        mem = self._fill_set_with_dirty(hierarchy(model_writebacks=True))
        assert mem.l2_writebacks >= 1

    def test_writeback_consumes_bandwidth(self):
        off = self._fill_set_with_dirty(hierarchy())
        on = self._fill_set_with_dirty(hierarchy(model_writebacks=True))
        assert on.memory.requests > off.memory.requests

    def test_clean_eviction_never_writes_back(self):
        mem = hierarchy(model_writebacks=True)
        stride = 8192 * 64
        for i in range(6):
            mem.load(0x100000 + i * stride, cycle=i * 400, pc=0x400)
        assert mem.l2_writebacks == 0

    def test_l1_dirty_evict_marks_l2_dirty(self):
        mem = hierarchy(model_writebacks=True)
        mem.store(0x100000, cycle=0)               # dirty in L1 + L2 fill
        # evict the L1 line: L1D is 1024 sets x 32B, same set every 32KB
        for i in range(1, 4):                       # assoc 2
            mem.load(0x100000 + i * 1024 * 32, cycle=400 + i, pc=0x400)
        line = mem.l2.lookup(0x100000, update_lru=False)
        assert line is not None and line.dirty


class TestPrefetchGating:
    def test_prefetches_dropped_under_backlog(self):
        mem = hierarchy()
        # saturate the channel far beyond the gate threshold
        for i in range(40):
            mem.memory.schedule(0)
        before = mem.prefetch_fills
        # steady stride stream that would normally prefetch
        for i in range(4):
            mem.load(0x500000 + i * 64, cycle=i, pc=0x400)
        assert mem.prefetch_fills == before

    def test_prefetch_not_refetched_when_pending(self):
        mem = hierarchy()
        for i in range(4):
            mem.load(0x500000 + i * 64, cycle=i * 350, pc=0x400)
        requests = mem.memory.requests
        # re-trigger immediately: all candidates already resident/pending
        mem.load(0x500000 + 4 * 64, cycle=1500, pc=0x400)
        assert mem.memory.requests <= requests + 2


class TestSharedComponents:
    def test_two_facades_share_l2_state(self):
        from repro.memory import Cache, MSHRFile, MainMemory
        config = base_config()
        l2 = Cache(config.l2, name="L2s")
        mshr = MSHRFile(config.l2.mshr_entries)
        channel = MainMemory(config.memory, line_bytes=64)
        a = MemoryHierarchy(config, shared_l2=l2, shared_l2_mshr=mshr,
                            shared_memory=channel)
        b = MemoryHierarchy(config, shared_l2=l2, shared_l2_mshr=mshr,
                            shared_memory=channel)
        a.load(0x900000, cycle=0, pc=0x400)
        # facade B sees A's fill as an L2 hit (after the fill lands)
        res = b.load(0x900000, cycle=2_000, pc=0x404)
        assert res.l2_hit and not res.l2_miss

    def test_private_miss_listeners(self):
        from repro.memory import Cache, MSHRFile, MainMemory
        config = base_config()
        l2 = Cache(config.l2, name="L2s")
        mshr = MSHRFile(config.l2.mshr_entries)
        channel = MainMemory(config.memory, line_bytes=64)
        a = MemoryHierarchy(config, shared_l2=l2, shared_l2_mshr=mshr,
                            shared_memory=channel)
        b = MemoryHierarchy(config, shared_l2=l2, shared_l2_mshr=mshr,
                            shared_memory=channel)
        events_a, events_b = [], []
        a.add_l2_miss_listener(events_a.append)
        b.add_l2_miss_listener(events_b.append)
        a.load(0x900000, cycle=0, pc=0x400)
        assert len(events_a) == 1
        assert not events_b           # B's controller is blind to A's miss


class TestWrongPathAccounting:
    def test_wrong_path_load_trains_prefetcher(self):
        mem = hierarchy()
        for i in range(4):
            mem.load(0x500000 + i * 64, cycle=i * 350, pc=0x400,
                     path=AccessPath.WRONG)
        assert mem.prefetcher.trained >= 4

    def test_store_path_classified(self):
        mem = hierarchy()
        mem.store(0x900000, cycle=0, path=AccessPath.WRONG)
        usage = mem.line_usage().as_dict()
        assert usage["wrongpath_useless"] == 1
