"""Statistics: histograms, MLP computation, counters, aggregation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    IntervalHistogram,
    SimStats,
    SimulationResult,
    geometric_mean,
    mlp_from_intervals,
)


class TestIntervalHistogram:
    def test_binning(self):
        h = IntervalHistogram(bin_width=8, max_value=32)
        for v in (0, 7, 8, 31, 32, 100):
            h.add(v)
        assert h.bins[0] == 2     # 0 and 7
        assert h.bins[1] == 1     # 8
        assert h.bins[3] == 1     # 31
        assert h.bins[4] == 2     # overflow: 32 and 100

    def test_rejects_negative(self):
        h = IntervalHistogram()
        with pytest.raises(ValueError):
            h.add(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalHistogram(bin_width=0)
        with pytest.raises(ValueError):
            IntervalHistogram(bin_width=16, max_value=8)

    def test_mean(self):
        h = IntervalHistogram()
        h.add_all([10, 20, 30])
        assert h.mean == 20

    def test_fraction_below(self):
        h = IntervalHistogram(bin_width=8, max_value=64)
        h.add_all([0, 4, 9, 100])
        assert h.fraction_below(8) == 0.5
        assert h.fraction_below(16) == 0.75

    def test_peak_bin(self):
        h = IntervalHistogram(bin_width=8, max_value=64)
        h.add_all([1, 2, 3, 50, 50])
        assert h.peak_bin() == 0
        assert h.peak_bin(skip_first=2) == 6   # 48-56

    def test_rows_labels(self):
        h = IntervalHistogram(bin_width=8, max_value=16)
        rows = h.rows()
        assert rows[0][0] == "0-8"
        assert rows[-1][0] == ">=16"

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_count_conserved(self, values):
        h = IntervalHistogram(bin_width=8, max_value=128)
        h.add_all(values)
        assert sum(h.bins) == h.count == len(values)


class TestMLP:
    def test_empty(self):
        assert mlp_from_intervals([]) == 0.0

    def test_serial_misses_mlp_one(self):
        assert mlp_from_intervals([(0, 300), (300, 600)]) == 1.0

    def test_fully_overlapped(self):
        assert mlp_from_intervals([(0, 300), (0, 300)]) == 2.0

    def test_partial_overlap(self):
        mlp = mlp_from_intervals([(0, 300), (150, 450)])
        assert mlp == pytest.approx(600 / 450)

    def test_unsorted_input(self):
        assert mlp_from_intervals([(300, 600), (0, 300)]) == 1.0

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 300)),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_mlp_bounds(self, raw):
        """Property: 1 <= MLP <= number of misses."""
        intervals = [(s, s + d) for s, d in raw]
        mlp = mlp_from_intervals(intervals)
        assert 1.0 <= mlp <= len(intervals) + 1e-9


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestSimStats:
    def test_ipc(self):
        s = SimStats()
        assert s.ipc == 0.0
        s.cycles, s.committed_uops = 100, 250
        assert s.ipc == 2.5

    def test_level_residency(self):
        s = SimStats()
        s.note_level_cycles(1, 70)
        s.note_level_cycles(3, 30)
        res = s.level_residency()
        assert res == {1: 0.7, 3: 0.3}

    def test_mispredict_distance(self):
        s = SimStats()
        s.committed_uops = 100
        s.note_mispredict_commit()
        s.committed_uops = 350
        s.note_mispredict_commit()
        assert s.mispredict_distances == [100, 250]
        assert s.average_mispredict_distance() == 175

    def test_mispredict_distance_no_mispredicts(self):
        s = SimStats()
        s.committed_uops = 5000
        assert s.average_mispredict_distance() == 5000.0

    def test_miss_intervals_sorted(self):
        s = SimStats()
        s.l2_miss_cycles = [50, 10, 30]
        assert s.miss_intervals() == [20, 20]

    def test_reset(self):
        s = SimStats()
        s.committed_uops = 10
        s.note_level_cycles(2, 5)
        s.activity.fetches = 7
        s.reset()
        assert s.committed_uops == 0
        assert s.level_cycles == {}
        assert s.activity.fetches == 0


class TestSimulationResult:
    def _result(self, ipc):
        return SimulationResult(program="x", model="fixed", level=1,
                                cycles=1000, instructions=int(1000 * ipc),
                                ipc=ipc, avg_load_latency=5.0,
                                mispredict_rate=0.01, mlp=2.0)

    def test_speedup(self):
        assert self._result(2.0).speedup_over(self._result(1.0)) == 2.0

    def test_speedup_zero_base(self):
        with pytest.raises(ValueError):
            self._result(1.0).speedup_over(self._result(0.0))

    def test_summary_line(self):
        line = self._result(1.5).summary_line()
        assert "x" in line and "1.500" in line
