"""Runahead execution engine."""

import pytest

from repro.config import base_config, runahead_config
from repro.pipeline import Processor
from repro.runahead import RunaheadCauseStatusTable

from tests.conftest import (
    DATA_BASE,
    ialu,
    load,
    make_trace,
    store,
    warm_icache,
)


def run_runahead(ops, until=None):
    proc = Processor(runahead_config(), make_trace(ops))
    warm_icache(proc)
    proc.run(until_committed=until or len(ops))
    return proc


def stream_with_misses(n_lines=24, per_line_ops=12):
    """Missing load followed by compute, repeatedly: classic runahead
    territory (each miss blocks the ROB head while later misses could
    have been started)."""
    ops = []
    idx = 0
    for i in range(n_lines):
        ops.append(load(idx, dst=1, addr=DATA_BASE + 0x4000 * i,
                        srcs=()))
        idx += 1
        for j in range(per_line_ops):
            ops.append(ialu(idx, dst=2 + (j % 6), srcs=(1,)))
            idx += 1
    return ops


class TestRCST:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunaheadCauseStatusTable(0)

    def test_first_encounter_is_useful(self):
        t = RunaheadCauseStatusTable(8)
        assert t.predicts_useful(0x100)

    def test_learns_useless(self):
        t = RunaheadCauseStatusTable(8)
        t.update(0x100, useful=False)
        t.update(0x100, useful=False)
        assert not t.predicts_useful(0x100)
        assert t.suppressions == 1

    def test_relearns_useful(self):
        t = RunaheadCauseStatusTable(8)
        for __ in range(3):
            t.update(0x100, useful=False)
        t.update(0x100, useful=True)
        t.update(0x100, useful=True)
        assert t.predicts_useful(0x100)

    def test_counter_saturation(self):
        t = RunaheadCauseStatusTable(8)
        for __ in range(10):
            t.update(0x100, useful=True)
        t.update(0x100, useful=False)
        assert t.predicts_useful(0x100)   # one bad episode isn't enough

    def test_lru_eviction(self):
        t = RunaheadCauseStatusTable(2)
        t.update(0x100, useful=False)
        t.update(0x100, useful=False)
        t.update(0x200, useful=True)
        t.update(0x300, useful=True)      # evicts 0x100
        assert t.predicts_useful(0x100)   # forgotten -> default useful
        assert len(t) == 2


class TestEngine:
    def test_episodes_happen(self):
        proc = run_runahead(stream_with_misses())
        assert proc.runahead.episodes >= 1
        assert proc.runahead.pseudo_retired > 0

    def test_exits_restore_architectural_count(self):
        ops = stream_with_misses()
        proc = run_runahead(ops)
        assert proc.committed_total == len(ops)
        assert not proc.runahead.active

    def test_runahead_prefetches_help(self):
        """The whole point: runahead should beat the base on a stream of
        blocking misses."""
        ops = stream_with_misses()
        base = Processor(base_config(), make_trace(ops))
        warm_icache(base)
        base.run(until_committed=len(ops))
        ra = run_runahead(ops)
        assert ra.stats.cycles < base.stats.cycles

    def test_no_episodes_without_misses(self):
        ops = [ialu(i, dst=1 + (i % 8)) for i in range(500)]
        proc = run_runahead(ops)
        assert proc.runahead.episodes == 0

    def test_runahead_cache_forwards(self):
        engine_ops = stream_with_misses(n_lines=4)
        proc = run_runahead(engine_ops)
        e = proc.runahead
        e.cache_write(0x1000)
        assert e.cache_hit(0x1000)
        assert not e.cache_hit(0x2000)

    def test_runahead_cache_bounded(self):
        proc = run_runahead(stream_with_misses(n_lines=2))
        e = proc.runahead
        for i in range(e.cache_words + 10):
            e.cache_write(0x1000 + 8 * i)
        assert len(e._cache) <= e.cache_words

    def test_wrong_path_load_never_triggers(self):
        proc = run_runahead(stream_with_misses(n_lines=6))
        # property is enforced by consider_entry; here we check the
        # engine survived a full run and only triggered on trace loads
        assert proc.runahead.episodes <= 6

    def test_fill_budget_bounds_episode(self):
        proc = run_runahead(stream_with_misses())
        assert proc.runahead._episode_fills <= \
            proc.runahead.EPISODE_FILL_BUDGET

    def test_stores_not_architecturally_visible_in_runahead(self):
        """A store pseudo-retired during runahead must not reach the
        data cache (it writes the runahead cache instead)."""
        ops = [load(0, dst=1, addr=DATA_BASE + 0x90000)]
        ops += [ialu(1 + i, dst=2 + (i % 4), srcs=(1,)) for i in range(6)]
        ops += [store(7, addr=DATA_BASE + 0x123450, srcs=(2,))]
        ops += [ialu(8 + i, dst=2 + (i % 4)) for i in range(40)]
        proc = Processor(runahead_config(), make_trace(ops))
        warm_icache(proc)
        proc.run(until_committed=len(ops))
        # the store was eventually re-executed and committed normally
        assert proc.stats.committed_stores == 1
