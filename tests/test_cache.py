"""Set-associative cache: placement, LRU, pending fills, eviction hook."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory import Cache


def small_cache(assoc=2, sets=4, line=64, hook=None):
    cfg = CacheConfig(size_bytes=assoc * sets * line, assoc=assoc,
                      line_bytes=line, hit_latency=1)
    return Cache(cfg, name="test", evict_hook=hook)


class TestPlacement:
    def test_line_addr(self):
        c = small_cache()
        assert c.line_addr(0) == 0
        assert c.line_addr(63) == 0
        assert c.line_addr(64) == 64
        assert c.line_addr(130) == 128

    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(0x100) is None
        c.install(0x100, ready_at=0)
        line = c.lookup(0x100)
        assert line is not None and line.line_addr == 0x100

    def test_same_line_shares_entry(self):
        c = small_cache()
        c.install(0x100, ready_at=0)
        assert c.lookup(0x100 + 63) is not None

    def test_install_existing_returns_resident(self):
        c = small_cache()
        first = c.install(0x100, ready_at=5)
        second = c.install(0x100, ready_at=99)
        assert first is second
        assert second.ready_at == 5   # fill never downgrades

    def test_contains_does_not_touch_lru(self):
        c = small_cache(assoc=2, sets=1)
        c.install(0x000, ready_at=0)
        c.install(0x040, ready_at=0)
        c.contains(0x000)             # must NOT refresh LRU
        c.install(0x080, ready_at=0)  # evicts true LRU = 0x000
        assert not c.contains(0x000)
        assert c.contains(0x040)


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = small_cache(assoc=2, sets=1)
        c.install(0x000, ready_at=0)
        c.install(0x040, ready_at=0)
        c.lookup(0x000)               # refresh 0x000
        c.install(0x080, ready_at=0)  # evicts 0x040
        assert c.contains(0x000)
        assert not c.contains(0x040)
        assert c.evictions == 1

    def test_eviction_hook_called(self):
        victims = []
        c = small_cache(assoc=1, sets=1, hook=victims.append)
        c.install(0x000, ready_at=0)
        c.install(0x040, ready_at=0)
        assert len(victims) == 1 and victims[0].line_addr == 0x000

    def test_invalidate_all_skips_hook(self):
        victims = []
        c = small_cache(hook=victims.append)
        c.install(0x000, ready_at=0)
        c.invalidate_all()
        assert not victims
        assert not c.contains(0x000)


class TestStats:
    def test_miss_rate(self):
        c = small_cache()
        assert c.miss_rate() == 0.0
        c.hits, c.misses = 3, 1
        assert c.miss_rate() == 0.25
        assert c.accesses == 4

    def test_resident_lines_iteration(self):
        c = small_cache()
        c.install(0x000, ready_at=0)
        c.install(0x100, ready_at=0)
        assert {l.line_addr for l in c.resident_lines()} == {0x000, 0x100}


class TestLRUProperty:
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_assoc(self, accesses):
        """Property: each set holds at most `assoc` lines, and the most
        recently installed line is always resident."""
        c = small_cache(assoc=2, sets=2)
        for idx in accesses:
            addr = idx * 64
            c.install(addr, ready_at=0)
            assert c.contains(addr)
        for cset in c._sets:
            assert len(cset) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=3,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_hit_after_recent_install_within_assoc(self, indices):
        """The last `assoc` distinct lines of a set are always present."""
        assoc, sets = 4, 1
        c = small_cache(assoc=assoc, sets=sets)
        for idx in indices:
            c.install(idx * 64, ready_at=0)
        recent = []
        for idx in reversed(indices):
            if idx not in recent:
                recent.append(idx)
            if len(recent) == assoc:
                break
        for idx in recent:
            assert c.contains(idx * 64)
