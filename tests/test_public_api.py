"""Public API surface: everything advertised in ``repro.__all__`` works."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    @pytest.mark.parametrize("module", [
        "repro.config", "repro.isa", "repro.workloads", "repro.memory",
        "repro.frontend", "repro.pipeline", "repro.core", "repro.runahead",
        "repro.energy", "repro.stats", "repro.analysis", "repro.multicore",
        "repro.validation", "repro.cli", "repro.experiments",
        "repro.experiments.export", "repro.workloads.kernels",
    ])
    def test_module_importable_and_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module

    def test_experiment_modules_all_runnable(self):
        from repro.experiments import EXPERIMENTS
        for exp_id, module_name in EXPERIMENTS.items():
            module = importlib.import_module(module_name)
            assert callable(getattr(module, "run", None)), exp_id
            assert module.__doc__, exp_id


class TestQuickstartFlow:
    """The README quickstart, verbatim."""

    def test_quickstart(self):
        from repro import (simulate, base_config, dynamic_config,
                           generate_trace, profile)
        trace = generate_trace(profile("libquantum"), n_ops=8_000, seed=1)
        base = simulate(base_config(), trace, warmup=1500, measure=5000)
        resized = simulate(dynamic_config(3), trace, warmup=1500,
                           measure=5000)
        assert resized.ipc / base.ipc > 1.3
        assert set(resized.level_residency) <= {1, 2, 3}

    def test_docstring_example_symbols(self):
        # the module docstring's imports must stay valid
        from repro import simulate, dynamic_config, base_config, \
            generate_trace
        from repro.workloads import profile
        assert callable(simulate) and callable(profile)
