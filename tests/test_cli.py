"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_levels(self, capsys):
        assert main(["levels"]) == 0
        out = capsys.readouterr().out
        assert "256" in out and "512" in out

    def test_programs(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out and "memory-intensive" in out
        assert "sjeng" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "sjeng", "--model", "base",
                     "--measure", "2000", "--warmup", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sjeng" in out and "IPC" in out

    def test_simulate_dynamic_shows_residency(self, capsys):
        main(["simulate", "sjeng", "--model", "dynamic",
              "--measure", "2000", "--warmup", "500"])
        assert "level residency" in capsys.readouterr().out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "doom"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_compare(self, capsys):
        code = main(["compare", "povray", "--measure", "1500",
                     "--warmup", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic" in out and "runahead" in out and "1/EDP" in out
