"""Memory hierarchy: level walk, latencies, MSHR merging, Fig 11 hooks."""

import pytest

from repro.config import base_config
from repro.memory import AccessPath, MemoryHierarchy


@pytest.fixture
def mem():
    return MemoryHierarchy(base_config())


class TestLoadPath:
    def test_l1_hit_latency(self, mem):
        mem.l1d.install(0x1000, ready_at=0)
        res = mem.load(0x1000, cycle=100, pc=0x400)
        assert res.l1_hit
        assert res.complete_cycle == 102    # 2-cycle L1D

    def test_l2_hit_latency(self, mem):
        mem.l2.install(0x1000, ready_at=0)
        res = mem.load(0x1000, cycle=100, pc=0x400)
        assert not res.l1_hit and res.l2_hit
        assert res.complete_cycle == 114    # 2 (L1) + 12 (L2)

    def test_memory_latency(self, mem):
        res = mem.load(0x1000, cycle=100, pc=0x400)
        assert res.l2_miss
        assert res.complete_cycle == 100 + 2 + 12 + 300

    def test_miss_fills_both_levels(self, mem):
        mem.load(0x1000, cycle=0, pc=0x400)
        assert mem.l1d.contains(0x1000)
        assert mem.l2.contains(0x1000)

    def test_pending_fill_merges(self, mem):
        first = mem.load(0x1000, cycle=0, pc=0x400)
        again = mem.load(0x1008, cycle=10, pc=0x404)   # same L1 line
        assert not again.l1_hit
        assert again.complete_cycle == first.complete_cycle
        assert not again.l2_miss    # merged, no second DRAM request

    def test_mshr_merge_distinct_l1_lines_same_l2_line(self, mem):
        first = mem.load(0x1000, cycle=0, pc=0x400)
        other = mem.load(0x1020, cycle=1, pc=0x404)    # same 64B L2 line
        assert other.complete_cycle >= first.complete_cycle
        assert mem.memory.requests == 1

    def test_parallel_misses_overlap(self, mem):
        a = mem.load(0x10000, cycle=0, pc=0x400)
        b = mem.load(0x20000, cycle=0, pc=0x404)
        assert abs(b.complete_cycle - a.complete_cycle) <= \
            mem.memory.transfer_cycles


class TestL2MissListener:
    def test_listener_fires_on_demand_miss(self, mem):
        events = []
        mem.add_l2_miss_listener(events.append)
        mem.load(0x1000, cycle=0, pc=0x400)
        assert len(events) == 1
        assert events[0] == 0 + 2 + 12    # detection at L2 lookup time

    def test_no_event_on_hit(self, mem):
        events = []
        mem.add_l2_miss_listener(events.append)
        mem.l2.install(0x1000, ready_at=0)
        mem.load(0x1000, cycle=0, pc=0x400)
        assert not events

    def test_merged_miss_fires_once(self, mem):
        events = []
        mem.add_l2_miss_listener(events.append)
        mem.load(0x1000, cycle=0, pc=0x400)
        mem.load(0x1008, cycle=1, pc=0x404)
        assert len(events) == 1


class TestStoresAndIfetch:
    def test_store_write_allocates(self, mem):
        mem.store(0x1000, cycle=0)
        assert mem.l1d.contains(0x1000)

    def test_store_marks_dirty(self, mem):
        mem.l1d.install(0x1000, ready_at=0)
        mem.store(0x1000, cycle=5)
        assert mem.l1d.lookup(0x1000, update_lru=False).dirty

    def test_ifetch_hit(self, mem):
        mem.l1i.install(0x400, ready_at=0)
        assert mem.ifetch(0x400, cycle=10) == 11   # 1-cycle L1I

    def test_ifetch_miss_goes_to_l2(self, mem):
        done = mem.ifetch(0x400, cycle=0)
        assert done >= 300
        assert mem.l1i.contains(0x400)
        assert mem.l2.contains(0x400)


class TestLoadLatencyMeter:
    def test_average_load_latency(self, mem):
        mem.l1d.install(0x1000, ready_at=0)
        mem.load(0x1000, cycle=0, pc=0x400)            # 2 cycles
        mem.load(0x90000, cycle=0, pc=0x404)           # 314 cycles
        assert mem.average_load_latency() == pytest.approx((2 + 314) / 2)

    def test_wrong_path_loads_excluded(self, mem):
        mem.load(0x90000, cycle=0, pc=0x400, path=AccessPath.WRONG)
        assert mem.load_count == 0


class TestLineUsage:
    def test_wrong_path_untouched_is_useless(self, mem):
        mem.load(0x90000, cycle=0, pc=0x400, path=AccessPath.WRONG)
        usage = mem.line_usage().as_dict()
        assert usage["wrongpath_useless"] == 1
        assert usage["wrongpath_useful"] == 0

    def test_wrong_path_then_correct_touch_is_useful(self, mem):
        mem.load(0x90000, cycle=0, pc=0x400, path=AccessPath.WRONG)
        mem.load(0x90000, cycle=500, pc=0x404, path=AccessPath.CORRECT)
        usage = mem.line_usage().as_dict()
        assert usage["wrongpath_useful"] == 1

    def test_correct_path_counts(self, mem):
        mem.load(0x90000, cycle=0, pc=0x400)
        usage = mem.line_usage().as_dict()
        assert usage["corrpath_useful"] == 1

    def test_prefetch_classification(self, mem):
        # steady stride then a miss triggers prefetches into the L2
        for i in range(4):
            mem.load(0x50000 + i * 64, cycle=i * 400, pc=0x400)
        usage = mem.line_usage().as_dict()
        assert usage["prefetch_useful"] + usage["prefetch_useless"] > 0
        assert mem.prefetch_fills > 0

    def test_prefetched_line_becomes_useful_when_touched(self, mem):
        for i in range(4):
            mem.load(0x50000 + i * 64, cycle=i * 400, pc=0x400)
        before = mem.line_usage().as_dict()["prefetch_useful"]
        mem.load(0x50000 + 4 * 64, cycle=5_000, pc=0x404)
        after = mem.line_usage().as_dict()["prefetch_useful"]
        assert after >= before
