"""Pipeline lifecycle tracer."""

import pytest

from repro.config import base_config
from repro.pipeline import PipelineTracer, Processor

from tests.conftest import DATA_BASE, ialu, load, make_trace, warm_icache


def traced_run(ops, capacity=100):
    proc = Processor(base_config(), make_trace(ops))
    warm_icache(proc)
    tracer = PipelineTracer(proc, capacity=capacity)
    proc.run(until_committed=len(ops))
    return tracer


class TestTracer:
    def test_capacity_validation(self):
        proc = Processor(base_config(), make_trace([ialu(0, dst=1)]))
        with pytest.raises(ValueError):
            PipelineTracer(proc, capacity=0)

    def test_records_every_commit(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(20)]
        tracer = traced_run(ops)
        assert tracer.total_committed == 20
        assert len(tracer.records) == 20

    def test_capacity_bounds_records(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(50)]
        tracer = traced_run(ops, capacity=10)
        assert tracer.total_committed == 50
        assert len(tracer.records) == 10
        assert tracer.records[-1].seq > tracer.records[0].seq

    def test_lifecycle_ordering(self):
        """fetch <= dispatch <= issue <= complete <= commit, always."""
        ops = [ialu(0, dst=1)]
        ops += [ialu(i, dst=1, srcs=(1,)) for i in range(1, 15)]
        ops.append(load(15, dst=2, addr=DATA_BASE + 0x40000))
        tracer = traced_run(ops)
        for r in tracer.records:
            assert r.fetch <= r.dispatch <= r.issue
            assert r.issue < r.complete <= r.commit

    def test_l2_miss_flag(self):
        ops = [load(0, dst=1, addr=DATA_BASE + 0x40000)]
        tracer = traced_run(ops)
        assert tracer.records[0].l2_miss
        assert tracer.records[0].latency >= 300

    def test_latency_metrics(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(20)]
        tracer = traced_run(ops)
        assert tracer.average_latency() > 0
        assert tracer.average_queue_time() >= 0

    def test_slowest_sorted(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(10)]
        ops.append(load(10, dst=1, addr=DATA_BASE + 0x40000))
        tracer = traced_run(ops)
        slowest = tracer.slowest(3)
        assert slowest[0].latency >= slowest[-1].latency
        assert slowest[0].op_name == "LOAD"

    def test_render(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(5)]
        tracer = traced_run(ops)
        text = tracer.render()
        assert "IALU" in text
        assert len(text.splitlines()) == 6   # header + 5 rows

    def test_render_last_n(self):
        ops = [ialu(i, dst=1 + i % 8) for i in range(9)]
        tracer = traced_run(ops)
        assert len(tracer.render(last=3).splitlines()) == 4

    def test_empty_tracer_metrics(self):
        proc = Processor(base_config(), make_trace([ialu(0, dst=1)]))
        tracer = PipelineTracer(proc)
        assert tracer.average_latency() == 0.0
        assert tracer.average_queue_time() == 0.0
        assert tracer.slowest() == []
