"""Stall-signal accounting regressions.

Two bugs motivated this file: ``full_events`` used to be bumped by the
*query* methods (so any extra observer — a policy, the sanitizer —
inflated the stall-rate signal resizing decisions are based on), and
timer-driven fast-forward jumps used to be charged to whatever stall
reason happened to precede them.  These tests pin the fixed contracts:
``full_events`` equals stalled-allocation cycles no matter who looks,
and policy-timer jumps land in their own CPI-stack bucket.
"""

import pytest

from repro.analysis.cpi import COMPONENTS
from repro.config import dynamic_config, fixed_config
from repro.core.policies import StaticPolicy
from repro.pipeline import Processor


# ----------------------------------------------------------------------
# full_events == stalled-allocation cycles


def test_full_events_equals_stalled_allocation_cycles(libquantum_trace):
    """Every stalled cycle charges each lacking resource exactly once."""
    proc = Processor(fixed_config(1), libquantum_trace)
    window = proc.window
    calls = {"n": 0}
    orig = window.note_alloc_stall

    def counting(need_rob, need_iq, need_lsq):
        calls["n"] += 1
        orig(need_rob, need_iq, need_lsq)

    window.note_alloc_stall = counting
    proc.run(until_committed=6_000)
    stalled = calls["n"]
    assert stalled > 0, "level-1 window never stalled dispatch?"
    per_resource = (window.rob.full_events, window.iq.full_events,
                    window.lsq.full_events)
    # each resource is charged at most once per stalled cycle...
    assert max(per_resource) <= stalled
    # ...and every stalled cycle charged at least one resource
    assert sum(per_resource) >= stalled
    # stalled-allocation cycles are a subset of dispatch-stall cycles
    assert stalled <= proc.stats.dispatch_stall_cycles


def test_observation_cannot_inflate_full_events(libquantum_trace):
    """Regression: fullness queries used to double as event counters, so
    an extra observer per cycle skewed the resize policies' stall signal.
    Hammering the queries must change nothing."""

    def run(observe: bool):
        proc = Processor(fixed_config(1), libquantum_trace)
        if observe:
            orig = proc.step_cycle

            def noisy_step():
                w = proc.window
                for __ in range(3):
                    w.has_room(4, 4, 4)
                    w.rob.is_full()
                    w.iq.is_full()
                    w.lsq.is_full()
                return orig()

            proc.step_cycle = noisy_step
        proc.run(until_committed=4_000)
        w = proc.window
        return (proc.cycle, w.rob.full_events, w.iq.full_events,
                w.lsq.full_events)

    assert run(observe=False) == run(observe=True)


# ----------------------------------------------------------------------
# policy-timer fast-forward attribution


class _TimerOnlyPolicy(StaticPolicy):
    """A static policy that additionally exposes a wake-up timer."""

    def __init__(self, fire_at):
        super().__init__(1)
        self.fire_at = fire_at

    def next_timer(self):
        return self.fire_at


def test_timer_only_wakeup_is_tagged(libquantum_trace):
    proc = Processor(fixed_config(1), libquantum_trace,
                     policy=_TimerOnlyPolicy(50))
    # fresh core: no events, no stalls — only the policy timer is ahead
    assert proc._next_interesting_cycle() == 50
    assert proc._ff_timer_jump is True
    proc.policy.fire_at = None
    assert proc._next_interesting_cycle() is None
    assert proc._ff_timer_jump is False


def test_timer_jump_charges_policy_timer_bucket(libquantum_trace):
    proc = Processor(fixed_config(1), libquantum_trace)
    width = proc.config.width
    proc._ff_timer_jump = True
    proc._last_stall_reason = "mem_dram"   # must NOT absorb the jump
    proc._advance_accounting(6)
    assert proc.stats.stall_slots.get("policy_timer") == 5 * width
    assert "mem_dram" not in proc.stats.stall_slots
    proc._ff_timer_jump = False
    proc._advance_accounting(3)
    assert proc.stats.stall_slots.get("mem_dram") == 2 * width


def test_dynamic_run_attributes_timer_waits(libquantum_trace):
    """The MLP-aware policy's scheduled wake-ups show up in their own
    bucket instead of polluting the memory-stall attribution."""
    proc = Processor(dynamic_config(3), libquantum_trace)
    proc.run(until_committed=8_000)
    assert proc.stats.stall_slots.get("policy_timer", 0) > 0


def test_policy_timer_is_a_cpi_component():
    assert "policy_timer" in COMPONENTS
