"""Main memory channel: latency floor and bandwidth serialisation."""

from repro.config import MemoryConfig
from repro.memory import MainMemory


def channel(latency=300, bw=8, line=64):
    return MainMemory(MemoryConfig(min_latency=latency, bytes_per_cycle=bw),
                      line_bytes=line)


class TestChannel:
    def test_single_request_latency(self):
        mem = channel()
        assert mem.schedule(cycle=100) == 400

    def test_transfer_cycles(self):
        assert channel(bw=8, line=64).transfer_cycles == 8
        assert channel(bw=16, line=64).transfer_cycles == 4
        assert channel(bw=64, line=32).transfer_cycles == 1

    def test_back_to_back_requests_serialise(self):
        mem = channel()
        first = mem.schedule(cycle=0)
        second = mem.schedule(cycle=0)
        assert first == 300
        assert second == 308    # queued behind one 8-cycle transfer

    def test_parallel_misses_are_mlp(self):
        """Figure 1(b): two overlapped misses finish ~8 cycles apart,
        not 300 apart."""
        mem = channel()
        a = mem.schedule(cycle=10)
        b = mem.schedule(cycle=12)
        assert b - a == 8

    def test_idle_channel_no_queue(self):
        mem = channel()
        mem.schedule(cycle=0)
        assert mem.schedule(cycle=1000) == 1300

    def test_queue_delay(self):
        mem = channel()
        assert mem.queue_delay(0) == 0
        mem.schedule(cycle=0)
        assert mem.queue_delay(0) == 8
        assert mem.queue_delay(8) == 0

    def test_stats_and_reset(self):
        mem = channel()
        mem.schedule(0)
        mem.schedule(0)
        assert mem.requests == 2
        assert mem.busy_cycles == 16
        mem.reset()
        assert mem.requests == 0
        assert mem.schedule(0) == 300
