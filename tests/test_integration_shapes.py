"""End-to-end shape checks on generated workloads.

These are the library-level invariants a user relies on: the base
processor behaves like Table 1, the tradeoff of Figure 2 exists, and the
three models relate to each other the way the paper says.
"""

import pytest

from repro.config import (
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
)
from repro.pipeline import Processor, simulate
from repro.workloads import generate_trace, profile


class TestMemoryIntensiveShape:
    def test_window_scaling(self, libquantum_trace):
        ipc = [simulate(fixed_config(lvl), libquantum_trace,
                        warmup=2000, measure=6000).ipc for lvl in (1, 2, 3)]
        # strict L2-vs-L3 ordering is noisy at this tiny sample size;
        # the load-bearing claims are the big gains over level 1
        assert ipc[1] > 1.3 * ipc[0]
        assert ipc[2] > 1.3 * ipc[0]

    def test_mlp_grows_with_window(self, libquantum_trace):
        small = simulate(fixed_config(1), libquantum_trace,
                         warmup=2000, measure=6000)
        big = simulate(fixed_config(3), libquantum_trace,
                       warmup=2000, measure=6000)
        assert big.mlp > 1.5 * small.mlp

    def test_ideal_bounds_fixed(self, libquantum_trace):
        fixed = simulate(fixed_config(3), libquantum_trace,
                         warmup=2000, measure=6000)
        ideal = simulate(ideal_config(3), libquantum_trace,
                         warmup=2000, measure=6000)
        assert ideal.ipc >= 0.98 * fixed.ipc


class TestComputeIntensiveShape:
    def test_pipelining_penalty(self, gcc_trace):
        fix1 = simulate(fixed_config(1), gcc_trace, warmup=2000,
                        measure=6000)
        fix3 = simulate(fixed_config(3), gcc_trace, warmup=2000,
                        measure=6000)
        ideal3 = simulate(ideal_config(3), gcc_trace, warmup=2000,
                          measure=6000)
        assert fix3.ipc < fix1.ipc            # pipelined window hurts
        assert ideal3.ipc > fix3.ipc          # ... and it's the pipelining
        assert ideal3.ipc == pytest.approx(fix1.ipc, rel=0.1)

    def test_dynamic_recovers_compute(self, gcc_trace):
        fix1 = simulate(fixed_config(1), gcc_trace, warmup=2000,
                        measure=6000)
        dyn = simulate(dynamic_config(3), gcc_trace, warmup=2000,
                       measure=6000)
        assert dyn.ipc > 0.93 * fix1.ipc


class TestRunaheadShape:
    def test_runahead_between_base_and_window_on_memory(self):
        trace = generate_trace(profile("leslie3d"), n_ops=9000, seed=3)
        base = simulate(base_config(), trace, warmup=2000, measure=6000)
        ra = simulate(runahead_config(), trace, warmup=2000, measure=6000)
        dyn = simulate(dynamic_config(3), trace, warmup=2000, measure=6000)
        assert ra.ipc > base.ipc
        assert dyn.ipc > ra.ipc

    def test_runahead_neutral_on_compute(self, gcc_trace):
        base = simulate(base_config(), gcc_trace, warmup=2000,
                        measure=6000)
        ra = simulate(runahead_config(), gcc_trace, warmup=2000,
                      measure=6000)
        assert ra.ipc == pytest.approx(base.ipc, rel=0.05)


class TestReproducibility:
    def test_simulate_is_deterministic(self, omnetpp_trace):
        a = simulate(dynamic_config(3), omnetpp_trace, warmup=2000,
                     measure=6000)
        b = simulate(dynamic_config(3), omnetpp_trace, warmup=2000,
                     measure=6000)
        assert a.cycles == b.cycles
        assert a.level_residency == b.level_residency
        assert a.line_usage == b.line_usage

    def test_simulate_rejects_short_trace(self, gcc_trace):
        with pytest.raises(ValueError, match="need"):
            simulate(base_config(), gcc_trace, warmup=8000, measure=8000)

    def test_result_memory_stats_populated(self, gcc_trace):
        res = simulate(base_config(), gcc_trace, warmup=2000, measure=4000)
        for key in ("l1d_accesses", "l2_accesses", "dram_requests"):
            assert key in res.memory_stats
