"""Trace container and wrong-path synthesis."""

from repro.isa import OpClass
from repro.workloads import Trace, WrongPathSynthesizer

from tests.conftest import ialu, load, make_trace


class TestTrace:
    def test_len_and_indexing(self):
        trace = make_trace([ialu(0, dst=1), ialu(1, dst=2)])
        assert len(trace) == 2
        assert trace[1].dst == 2

    def test_op_counts(self):
        trace = make_trace([ialu(0, dst=1), load(1, dst=2, addr=0x1000)])
        counts = trace.op_counts()
        assert counts == {"IALU": 1, "LOAD": 1}

    def test_load_fraction(self):
        trace = make_trace([ialu(0, dst=1), load(1, dst=2, addr=0x1000)])
        assert trace.load_fraction() == 0.5
        assert make_trace([]).load_fraction() == 0.0


class TestWrongPathSynthesizer:
    def test_deterministic(self):
        s = WrongPathSynthesizer(seed=42, data_base=0x1000, data_size=4096)
        a = [s.op_at(0x400100, k) for k in range(50)]
        b = [s.op_at(0x400100, k) for k in range(50)]
        for x, y in zip(a, b):
            assert (x.pc, x.op, x.addr) == (y.pc, y.op, y.addr)

    def test_different_pc_different_stream(self):
        s = WrongPathSynthesizer(seed=42, data_base=0x1000, data_size=4096)
        a = [s.op_at(0x400100, k).op for k in range(30)]
        b = [s.op_at(0x400900, k).op for k in range(30)]
        assert a != b

    def test_load_fraction_about_one_fifth(self):
        s = WrongPathSynthesizer(seed=42, data_base=0x1000,
                                 data_size=1 << 20)
        ops = [s.op_at(0x400100, k) for k in range(2000)]
        loads = sum(1 for op in ops if op.op is OpClass.LOAD)
        assert 0.1 < loads / len(ops) < 0.3

    def test_loads_target_hot_region_mostly(self):
        """Most wrong-path loads touch the warm region; only a small
        minority stray into cold data (Fig 11 pollution realism)."""
        s = WrongPathSynthesizer(seed=42, data_base=0x10_0000,
                                 data_size=1 << 20, hot_base=0x80_0000,
                                 hot_size=8192)
        addrs = [s.op_at(0x400100, k).addr for k in range(4000)
                 if s.op_at(0x400100, k).op is OpClass.LOAD]
        cold = [a for a in addrs if a < 0x80_0000]
        assert addrs
        assert len(cold) / len(addrs) < 0.1

    def test_addresses_in_declared_regions(self):
        s = WrongPathSynthesizer(seed=1, data_base=0x10_0000,
                                 data_size=4096, hot_base=0x80_0000,
                                 hot_size=4096)
        for k in range(500):
            op = s.op_at(0x400000, k)
            if op.op is OpClass.LOAD:
                in_cold = 0x10_0000 <= op.addr < 0x10_0000 + 4096
                in_hot = 0x80_0000 <= op.addr < 0x80_0000 + 4096
                assert in_cold or in_hot

    def test_branches_always_taken_forward(self):
        s = WrongPathSynthesizer(seed=42, data_base=0x1000, data_size=4096)
        branches = [s.op_at(0x400100, k) for k in range(2000)]
        branches = [op for op in branches if op.op is OpClass.BRANCH]
        assert branches
        for op in branches:
            assert op.taken and op.target > op.pc
