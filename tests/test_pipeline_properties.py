"""Property-based pipeline tests: any well-formed micro-op trace runs to
completion with conserved commits and drained resources, on every model."""

from hypothesis import given, settings, strategies as st

from repro.config import (
    ModelKind,
    ProcessorConfig,
    base_config,
    dynamic_config,
    runahead_config,
)
from repro.isa import MicroOp, OpClass
from repro.pipeline import Processor

from tests.conftest import CODE_BASE, DATA_BASE, make_trace, warm_icache


@st.composite
def micro_ops(draw, max_len=120):
    """A random but well-formed straight-line-with-branches trace."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    ops = []
    for i in range(n):
        pc = CODE_BASE + 4 * i
        kind = draw(st.sampled_from(
            ["ialu", "ialu", "imul", "fpalu", "load", "store", "branch"]))
        dst = draw(st.integers(1, 20))
        src = draw(st.integers(1, 20))
        addr = DATA_BASE + draw(st.integers(0, 1 << 14)) * 8
        if kind == "ialu":
            ops.append(MicroOp(pc, OpClass.IALU, dst=dst, srcs=(src,)))
        elif kind == "imul":
            ops.append(MicroOp(pc, OpClass.IMUL, dst=dst, srcs=(src,)))
        elif kind == "fpalu":
            ops.append(MicroOp(pc, OpClass.FPALU, dst=32 + dst,
                               srcs=(32 + src,)))
        elif kind == "load":
            ops.append(MicroOp(pc, OpClass.LOAD, dst=dst, srcs=(src,),
                               addr=addr, size=8))
        elif kind == "store":
            ops.append(MicroOp(pc, OpClass.STORE, srcs=(src, dst),
                               addr=addr, size=8))
        else:
            taken = draw(st.booleans())
            target = pc + 4 * draw(st.integers(1, 8)) if taken else pc + 4
            ops.append(MicroOp(pc, OpClass.BRANCH, srcs=(src,),
                               taken=taken, target=target))
    return ops


def run_to_completion(ops, config) -> Processor:
    proc = Processor(config, make_trace(ops))
    warm_icache(proc)
    proc.run(until_committed=len(ops), max_cycles=2_000_000)
    return proc


def assert_clean_final_state(proc, n_ops):
    assert proc.committed_total == n_ops
    assert proc.window.rob.occupancy == 0
    assert proc.window.iq.occupancy == 0
    assert proc.window.lsq.occupancy == 0
    stats = proc.stats
    assert stats.committed_uops == n_ops
    assert sum(stats.level_cycles.values()) == stats.cycles


class TestAnyTraceCompletes:
    @given(micro_ops())
    @settings(max_examples=40, deadline=None)
    def test_base_model(self, ops):
        proc = run_to_completion(ops, base_config())
        assert_clean_final_state(proc, len(ops))

    @given(micro_ops())
    @settings(max_examples=25, deadline=None)
    def test_dynamic_model(self, ops):
        proc = run_to_completion(ops, dynamic_config(3))
        assert_clean_final_state(proc, len(ops))
        # residency bookkeeping is consistent with transitions
        levels_seen = set(proc.stats.level_cycles)
        assert 1 in levels_seen or proc.stats.enlarge_transitions > 0

    @given(micro_ops())
    @settings(max_examples=25, deadline=None)
    def test_runahead_model(self, ops):
        proc = run_to_completion(ops, runahead_config())
        assert_clean_final_state(proc, len(ops))
        assert not proc.runahead.active

    @given(micro_ops())
    @settings(max_examples=20, deadline=None)
    def test_ideal_model(self, ops):
        config = ProcessorConfig(model=ModelKind.IDEAL, level=3)
        proc = run_to_completion(ops, config)
        assert_clean_final_state(proc, len(ops))

    @given(micro_ops())
    @settings(max_examples=20, deadline=None)
    def test_models_commit_identical_instructions(self, ops):
        """Every model commits exactly the trace, in order, regardless of
        speculation or resizing — only *timing* may differ."""
        a = run_to_completion(ops, base_config())
        b = run_to_completion(ops, dynamic_config(3))
        assert a.stats.committed_loads == b.stats.committed_loads
        assert a.stats.committed_stores == b.stats.committed_stores
        assert a.stats.committed_branches == b.stats.committed_branches


class TestFastForwardEquivalence:
    """The idle-cycle fast-forward is a pure optimisation: with it off,
    every simulation must produce identical cycle counts and stats."""

    @given(micro_ops(max_len=60))
    @settings(max_examples=20, deadline=None)
    def test_base_model_equivalent(self, ops):
        fast = run_to_completion(ops, base_config())
        slow = Processor(base_config(), make_trace(ops))
        slow.fast_forward = False
        warm_icache(slow)
        slow.run(until_committed=len(ops), max_cycles=2_000_000)
        assert fast.cycle == slow.cycle
        assert fast.stats.committed_uops == slow.stats.committed_uops
        assert fast.stats.cycles == slow.stats.cycles
        assert fast.hierarchy.l2.misses == slow.hierarchy.l2.misses

    @given(micro_ops(max_len=60))
    @settings(max_examples=12, deadline=None)
    def test_dynamic_model_equivalent(self, ops):
        fast = run_to_completion(ops, dynamic_config(3))
        slow = Processor(dynamic_config(3), make_trace(ops))
        slow.fast_forward = False
        warm_icache(slow)
        slow.run(until_committed=len(ops), max_cycles=2_000_000)
        assert fast.cycle == slow.cycle
        assert fast.stats.level_cycles == slow.stats.level_cycles
        assert fast.stats.enlarge_transitions == \
            slow.stats.enlarge_transitions
