"""The 27 SPEC2006 program profiles."""

import pytest

from repro.workloads import (
    COMPUTE_INTENSIVE,
    MEMORY_INTENSIVE,
    PROFILES,
    SELECTED_COMPUTE,
    SELECTED_MEMORY,
    generate_trace,
    profile,
    program_names,
)


class TestInventory:
    def test_program_count(self):
        """Table 3: all 12 SPECint + 16 SPECfp (wrf excluded) = 28."""
        assert len(PROFILES) == 28

    def test_category_split(self):
        assert len(MEMORY_INTENSIVE) == 11
        assert len(COMPUTE_INTENSIVE) == 17

    def test_selected_sets_match_fig7(self):
        assert len(SELECTED_MEMORY) == 8
        assert len(SELECTED_COMPUTE) == 6
        assert set(SELECTED_MEMORY) <= set(MEMORY_INTENSIVE)
        assert set(SELECTED_COMPUTE) <= set(COMPUTE_INTENSIVE)

    @pytest.mark.parametrize("name", ["libquantum", "mcf", "omnetpp",
                                      "soplex", "gcc", "sjeng", "lbm",
                                      "milc", "zeusmp"])
    def test_known_programs_present(self, name):
        assert name in PROFILES

    def test_lookup(self):
        assert profile("gcc").name == "gcc"
        with pytest.raises(KeyError, match="unknown program"):
            profile("doom")

    def test_program_names_filters(self):
        assert program_names() == MEMORY_INTENSIVE + COMPUTE_INTENSIVE
        assert program_names(memory_only=True) == MEMORY_INTENSIVE
        assert program_names(compute_only=True) == COMPUTE_INTENSIVE
        with pytest.raises(ValueError):
            program_names(memory_only=True, compute_only=True)


class TestProfileShape:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profile_generates(self, name):
        trace = generate_trace(profile(name), n_ops=1500, seed=2)
        assert len(trace.ops) == 1500

    def test_paper_latencies_recorded(self):
        assert profile("libquantum").paper_load_latency == 247.0
        assert profile("mcf").paper_load_latency == 52.0
        assert profile("sjeng").paper_load_latency == 2.0

    def test_categories_match_threshold(self):
        """Table 3 categorisation: >10 cycles = memory-intensive."""
        for name, prof in PROFILES.items():
            assert prof.memory_intensive == (prof.paper_load_latency > 10), \
                name

    def test_omnetpp_mixes_phases(self):
        """The paper singles out omnetpp for its mixed phases."""
        prof = profile("omnetpp")
        assert len(prof.phases) >= 2
        hot_phases = [p for p in prof.phases if p.mem.weights()[3] > 0.9]
        mem_phases = [p for p in prof.phases
                      if p.mem.weights()[1] + p.mem.weights()[2] > 0.1]
        assert hot_phases and mem_phases

    def test_libquantum_is_streaming(self):
        mem = profile("libquantum").phases[0].mem
        assert mem.weights()[0] > 0.8
        assert mem.stream_bytes >= 32 * 1024 * 1024

    def test_mcf_has_pointer_chase(self):
        assert any(p.mem.weights()[1] > 0 for p in profile("mcf").phases)

    def test_compute_profiles_are_cache_resident(self):
        """No compute-intensive profile scatters over more than the L2."""
        for name in COMPUTE_INTENSIVE:
            for phase in profile(name).phases:
                w = phase.mem.weights()
                cold = (w[1] + w[2]) * (phase.mem.working_set_bytes
                                        > 2 * 1024 * 1024)
                assert cold < 0.1, name
