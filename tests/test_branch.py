"""gshare predictor and BTB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BranchPredictorConfig
from repro.frontend import BTB, BranchPredictor


def predictor(history_bits=8, pht=256, btb_sets=4, btb_assoc=2):
    return BranchPredictor(BranchPredictorConfig(
        history_bits=history_bits, pht_entries=pht, btb_sets=btb_sets,
        btb_assoc=btb_assoc))


def resolve_once(p, pc, taken, target=None):
    fallthrough = pc + 4
    __, ___, token = p.predict(pc, fallthrough)
    return p.resolve(token, taken, target if target is not None
                     else (pc + 64 if taken else fallthrough))


class TestBTB:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BTB(sets=3, assoc=2)

    def test_miss_then_hit(self):
        btb = BTB(sets=4, assoc=2)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900

    def test_capacity_eviction(self):
        btb = BTB(sets=1, assoc=2)
        btb.update(0x100, 1)
        btb.update(0x200, 2)
        btb.update(0x300, 3)
        present = [pc for pc in (0x100, 0x200, 0x300)
                   if btb.lookup(pc) is not None]
        assert len(present) == 2
        assert 0x300 in present   # most recent survives

    def test_update_refreshes_lru(self):
        btb = BTB(sets=1, assoc=2)
        btb.update(0x100, 1)
        btb.update(0x200, 2)
        btb.update(0x100, 5)      # refresh
        btb.update(0x300, 3)      # evicts 0x200
        assert btb.lookup(0x100) == 5
        assert btb.lookup(0x200) is None


class TestGshare:
    def test_learns_always_taken(self):
        p = predictor()
        # 8 iterations fill the 8-bit history with 1s; a few more train
        # the now-stable all-taken context.
        for _ in range(20):
            resolve_once(p, 0x100, taken=True)
        taken, target, token = p.predict(0x100, 0x104)
        assert taken and target == 0x100 + 64
        p.resolve(token, True, 0x100 + 64)

    def test_learns_never_taken(self):
        p = predictor()
        misses = sum(resolve_once(p, 0x100, taken=False) for _ in range(16))
        assert misses <= 1   # cold start at most

    def test_taken_without_btb_entry_mispredicts(self):
        p = predictor()
        assert resolve_once(p, 0x100, taken=True)   # BTB cold

    def test_target_change_is_mispredict(self):
        p = predictor()
        for _ in range(8):
            resolve_once(p, 0x100, taken=True, target=0x500)
        assert resolve_once(p, 0x100, taken=True, target=0x900)

    def test_learns_alternating_pattern_via_history(self):
        """gshare's whole point: a strict T/N/T/N pattern becomes fully
        predictable once the history distinguishes the two contexts."""
        p = predictor()
        outcomes = [bool(i % 2) for i in range(200)]
        mispredicts = [resolve_once(p, 0x100, t) for t in outcomes]
        assert sum(mispredicts[-40:]) == 0

    def test_history_repair_on_mispredict(self):
        p = predictor()
        # Train a branch taken, then mispredict it; the history register
        # must reflect the ACTUAL outcome afterwards.
        for _ in range(8):
            resolve_once(p, 0x100, taken=True)
        before = p._history
        __, ___, token = p.predict(0x100, 0x104)   # predicts taken
        p.resolve(token, False, 0x104)             # actually not taken
        assert p._history & 1 == 0

    def test_mispredict_rate(self):
        p = predictor()
        assert p.mispredict_rate() == 0.0
        resolve_once(p, 0x100, taken=True)
        assert p.mispredict_rate() == 1.0

    def test_pht_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BranchPredictor(BranchPredictorConfig(pht_entries=1000))


class TestGshareProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_counters_stay_in_range(self, outcomes):
        p = predictor(pht=64)
        for t in outcomes:
            resolve_once(p, 0x40, t)
        assert all(0 <= c <= 3 for c in p._pht)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_biased_stream_accuracy_bounded_by_bias(self, noise):
        """A 100%-biased stream interleaved with a noisy branch at another
        PC never degrades the biased branch below ~1 cold miss."""
        p = predictor()
        wrong = 0
        for i, n in enumerate(noise):
            resolve_once(p, 0x800, n)              # noisy branch
            wrong += resolve_once(p, 0x100, False)  # biased branch
        assert wrong <= 1 + sum(1 for __ in noise) // 4
