"""The MLP-aware resizing policy — a line-by-line check of paper Fig 5,
plus the level-transition scenario of paper Fig 6."""

import pytest

from repro.config import LEVEL_TABLE
from repro.core import MLPAwarePolicy
from repro.pipeline import WindowSet

MEM_LAT = 300


@pytest.fixture
def policy():
    return MLPAwarePolicy(max_level=3, memory_latency=MEM_LAT)


@pytest.fixture
def window():
    return WindowSet(LEVEL_TABLE, level=1)


def tick_through(policy, window, start, end):
    """Tick every cycle in [start, end); applies level changes."""
    decisions = []
    for cycle in range(start, end):
        d = policy.tick(cycle, window)
        if d.new_level is not None:
            window.resize_to(d.new_level)
            decisions.append((cycle, d.new_level))
    return decisions


class TestEnlarge:
    def test_miss_enlarges_one_level(self, policy, window):
        policy.on_l2_miss(10)
        d = policy.tick(10, window)
        assert d.new_level == 2
        assert policy.level == 2

    def test_saturates_at_max(self, policy, window):
        for cycle in (10, 20, 30, 40):
            policy.on_l2_miss(cycle)
            d = policy.tick(cycle, window)
            if d.new_level:
                window.resize_to(d.new_level)
        assert policy.level == 3

    def test_same_cycle_misses_coalesce(self, policy, window):
        policy.on_l2_miss(10)
        policy.on_l2_miss(10)
        d = policy.tick(10, window)
        assert d.new_level == 2
        assert policy.tick(11, window).new_level is None

    def test_miss_at_max_rearms_timer(self, policy, window):
        """Fig 5 lines 8-10 run on every miss, even at max level."""
        for cycle in (0, 1, 2):
            policy.on_l2_miss(cycle)
            d = policy.tick(cycle, window)
            if d.new_level:
                window.resize_to(d.new_level)
        policy.on_l2_miss(100)
        policy.tick(100, window)
        assert policy.shrink_timing == 100 + MEM_LAT


class TestShrink:
    def _grow_to(self, policy, window, level):
        for cycle in range(level - 1):
            policy.on_l2_miss(cycle)
            d = policy.tick(cycle, window)
            window.resize_to(d.new_level)

    def test_shrinks_after_memory_latency(self, policy, window):
        self._grow_to(policy, window, 2)
        changes = tick_through(policy, window, 1, MEM_LAT + 10)
        assert changes == [(MEM_LAT, 1)]

    def test_shrink_timer_reset_by_new_miss(self, policy, window):
        self._grow_to(policy, window, 2)
        assert tick_through(policy, window, 1, 200) == []
        policy.on_l2_miss(200)
        policy.tick(200, window)            # re-arm (level stays 2->3)
        window.resize_to(policy.level)
        changes = tick_through(policy, window, 201, 200 + MEM_LAT + 5)
        assert changes and changes[0][0] == 200 + MEM_LAT

    def test_shrink_postponed_until_vacant(self, policy, window):
        """Fig 5 lines 16-22: shrinking waits (stalling allocation)
        until the regions to be removed are vacant."""
        self._grow_to(policy, window, 2)
        window.rob.allocate(200)            # too full for level 1 (128)
        d = policy.tick(MEM_LAT, window)
        assert d.new_level is None
        assert d.stop_alloc                  # stop_alloc() called
        # drain below the level-1 size: shrink proceeds
        window.rob.release(150)
        d = policy.tick(MEM_LAT + 1, window)
        assert d.new_level == 1

    def test_never_shrinks_below_one(self, policy, window):
        changes = tick_through(policy, window, 0, 2 * MEM_LAT)
        assert changes == []
        assert policy.level == 1

    def test_consecutive_shrinks_spaced_by_latency(self, policy, window):
        self._grow_to(policy, window, 3)
        changes = tick_through(policy, window, 2, 3 + 3 * MEM_LAT)
        assert [lvl for __, lvl in changes] == [2, 1]
        assert changes[1][0] - changes[0][0] == MEM_LAT


class TestFig6Scenario:
    def test_level_trace(self, policy, window):
        """The Figure 6 walkthrough: three misses (t0, t1, t2) ramp the
        level to the max; after the last miss plus one memory latency the
        level steps back down one per latency."""
        events = {5: "miss", 40: "miss", 90: "miss"}
        trace = {}
        for cycle in range(0, 90 + 3 * MEM_LAT):
            if events.get(cycle) == "miss":
                policy.on_l2_miss(cycle)
            d = policy.tick(cycle, window)
            if d.new_level is not None:
                window.resize_to(d.new_level)
            trace[cycle] = policy.level
        assert trace[5] == 2
        assert trace[40] == 3
        assert trace[90] == 3                       # saturated
        assert trace[90 + MEM_LAT - 1] == 3
        assert trace[90 + MEM_LAT] == 2             # t4: first shrink
        assert trace[90 + 2 * MEM_LAT] == 1         # t6: second shrink


class TestTimers:
    def test_next_timer_exposes_shrink_timing(self, policy, window):
        policy.on_l2_miss(10)
        policy.tick(10, window)
        window.resize_to(policy.level)
        assert policy.next_timer() == 10 + MEM_LAT

    def test_next_timer_none_when_idle(self, policy):
        assert policy.next_timer() is None

    def test_pending_miss_is_a_timer(self, policy):
        policy.on_l2_miss(50)
        assert policy.next_timer() == 50

    def test_wants_tick_every_cycle_only_when_draining(self, policy, window):
        assert not policy.wants_tick_every_cycle
        policy.on_l2_miss(0)
        policy.tick(0, window)
        window.resize_to(policy.level)
        window.rob.allocate(200)
        policy.tick(MEM_LAT, window)    # do_shrink pending, not vacant
        assert policy.wants_tick_every_cycle


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            MLPAwarePolicy(max_level=0, memory_latency=100)
        with pytest.raises(ValueError):
            MLPAwarePolicy(max_level=3, memory_latency=0)

    def test_custom_shrink_latency(self, window):
        p = MLPAwarePolicy(max_level=3, memory_latency=300,
                           shrink_latency=50)
        p.on_l2_miss(0)
        p.tick(0, window)
        window.resize_to(p.level)
        changes = tick_through(p, window, 1, 100)
        assert changes == [(50, 1)]


class TestPendingMissQueue:
    """Distinct-cycle misses each count; same-cycle misses coalesce —
    including when notifications arrive out of order."""

    def test_two_distinct_cycles_two_levels(self, policy, window):
        policy.on_l2_miss(10)
        policy.on_l2_miss(11)
        d = policy.tick(11, window)
        assert d.new_level == 3          # both processed by cycle 11
        window.resize_to(3)

    def test_out_of_order_notifications(self, policy, window):
        policy.on_l2_miss(20)
        policy.on_l2_miss(10)            # late notification, earlier cycle
        assert policy.next_timer() == 10
        d = policy.tick(20, window)
        assert d.new_level == 3

    def test_duplicate_cycle_not_double_counted(self, policy, window):
        policy.on_l2_miss(20)
        policy.on_l2_miss(10)
        policy.on_l2_miss(10)
        d = policy.tick(25, window)
        assert d.new_level == 3          # 2 distinct cycles, not 3

    def test_duplicate_in_the_middle_not_double_counted(self, policy):
        policy.on_l2_miss(10)
        policy.on_l2_miss(30)
        policy.on_l2_miss(20)
        policy.on_l2_miss(20)            # duplicate of a middle entry
        assert list(policy._pending_misses) == [10, 20, 30]

    def test_insertion_matches_sorted_unique_reference(self, policy):
        """The O(k) tail-splice insertion must leave exactly the queue
        the old sort-the-whole-deque code produced: ascending, no
        duplicates — for arbitrary notification orders."""
        import random
        rng = random.Random(42)
        seen = []
        for _ in range(500):
            cycle = rng.randrange(64)
            policy.on_l2_miss(cycle)
            seen.append(cycle)
            assert list(policy._pending_misses) == sorted(set(seen))

    def test_future_miss_not_processed_early(self, policy, window):
        policy.on_l2_miss(100)
        assert policy.tick(50, window).new_level is None
        assert policy.tick(100, window).new_level == 2

    def test_enlarge_counter_counts_levels(self, policy, window):
        policy.on_l2_miss(10)
        policy.on_l2_miss(11)
        policy.tick(11, window)
        assert policy.enlarges == 2
