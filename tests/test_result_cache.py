"""Correctness of the content-addressed result store and its keys.

A cache is only as trustworthy as its key: these tests pin down that
every input that can change a simulation's outcome — any config field,
the trace seed, the sample sizes, the simulator version tag — produces
a distinct key, and that a disk round-trip returns results equal to the
originals.
"""

from __future__ import annotations

import dataclasses


import pytest

from repro.config import base_config, dynamic_config, config_fingerprint
from repro.core.policies import OccupancyPolicy, StaticPolicy
from repro.experiments import cache as result_cache
from repro.experiments.cache import ResultStore, policy_fingerprint, result_key
from repro.experiments.runner import Settings, Sweep
from repro.pipeline import simulate
from repro.workloads import generate_trace, profile


def _small_result(program="gcc", seed=1, measure=1_500):
    trace = generate_trace(profile(program), n_ops=measure + 1_500, seed=seed)
    return simulate(base_config(), trace, warmup=1_000, measure=measure)


def _key(**overrides):
    base = dict(seed=1, warmup=1_000, measure=2_000, trace_ops=4_000,
                policy=None, key_extra=None)
    base.update(overrides)
    config = base.pop("config", base_config())
    program = base.pop("program", "gcc")
    return result_key(program, config, **base)


class TestResultKey:
    def test_stable_across_calls(self):
        assert _key() == _key()

    def test_program_and_seed_and_samples_matter(self):
        reference = _key()
        assert _key(program="leslie3d") != reference
        assert _key(seed=2) != reference
        assert _key(warmup=1_001) != reference
        assert _key(measure=2_001) != reference
        assert _key(trace_ops=4_001) != reference

    def test_any_config_field_invalidates(self):
        """Every top-level config field change must produce a new key —
        the historical foot-gun was a hand-enumerated key that silently
        aliased configs differing in a non-enumerated field."""
        config = base_config()
        reference = _key(config=config)
        changed = [
            dataclasses.replace(config, transition_penalty=9),
            dataclasses.replace(
                config, l2=dataclasses.replace(config.l2, size_bytes=config.l2.size_bytes * 2)),
            dataclasses.replace(
                config, l1d=dataclasses.replace(config.l1d, hit_latency=config.l1d.hit_latency + 1)),
            dataclasses.replace(
                config, memory=dataclasses.replace(config.memory, model_writebacks=not config.memory.model_writebacks)),
            dataclasses.replace(
                config, prefetcher=dataclasses.replace(config.prefetcher, degree=config.prefetcher.degree + 1)),
            dynamic_config(3),
        ]
        keys = {_key(config=c) for c in changed}
        assert reference not in keys
        assert len(keys) == len(changed)

    def test_version_tag_invalidates(self, monkeypatch):
        import repro.pipeline.core as core
        reference = _key()
        monkeypatch.setattr(core, "SIM_VERSION", core.SIM_VERSION + "-next")
        assert _key() != reference

    def test_policy_fingerprint_distinguishes(self):
        assert (policy_fingerprint(StaticPolicy(1))
                != policy_fingerprint(StaticPolicy(2)))
        assert (policy_fingerprint(OccupancyPolicy(3))
                != policy_fingerprint(OccupancyPolicy(3, period=4096)))
        assert (policy_fingerprint(OccupancyPolicy(3))
                == policy_fingerprint(OccupancyPolicy(3)))
        assert policy_fingerprint(None) == policy_fingerprint(None)

    def test_key_extra_still_separates(self):
        assert _key(key_extra=("variant", 1)) != _key(key_extra=("variant", 2))


class TestResultStore:
    def test_memory_roundtrip(self):
        store = ResultStore(None)
        result = _small_result()
        store.put("k" * 64, result)
        assert store.get("k" * 64) is result
        assert store.hits == 1 and store.misses == 0

    def test_disk_roundtrip_equal_results(self, tmp_path):
        result = _small_result()
        writer = ResultStore(str(tmp_path))
        key = _key()
        writer.put(key, result)

        reader = ResultStore(str(tmp_path))   # fresh process stand-in
        loaded = reader.get(key)
        assert loaded is not None
        assert reader.disk_hits == 1
        for fld in dataclasses.fields(type(result)):
            if fld.name == "stats":
                continue
            assert getattr(loaded, fld.name) == getattr(result, fld.name), fld.name
        assert loaded.stats.committed_uops == result.stats.committed_uops
        assert loaded.stats.miss_intervals() == result.stats.miss_intervals()
        assert loaded.stats.activity.as_dict() == result.stats.activity.as_dict()

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("0" * 64) is None
        assert store.misses == 1

    @pytest.mark.parametrize("garbage", [
        b"truncated garbage",   # invalid leading opcode -> UnpicklingError
        b"garbage\n",           # valid opcode, bad operand -> ValueError
        b"",                    # empty file -> EOFError
    ])
    def test_corrupt_file_is_a_miss(self, tmp_path, garbage):
        store = ResultStore(str(tmp_path))
        key = _key()
        store.put(key, _small_result())
        path = store._path(key)
        with open(path, "wb") as fh:
            fh.write(garbage)
        fresh = ResultStore(str(tmp_path))
        assert fresh.get(key) is None

    def test_clear_disk(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(_key(), _small_result())
        store.put(_key(seed=2), _small_result())
        assert store.disk_entries() == 2
        assert store.clear_disk() == 2
        assert store.disk_entries() == 0


class TestSweepStoreIntegration:
    SETTINGS = Settings(all_programs=False, warmup=1_000, measure=1_500)

    def test_disk_hit_skips_simulation(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = Sweep(self.SETTINGS, store=store)
        result = first.run("gcc", base_config())
        assert first.sim_runs == 1

        second = Sweep(self.SETTINGS, store=ResultStore(str(tmp_path)))
        cached = second.run("gcc", base_config())
        assert second.sim_runs == 0
        assert second.cache_hits == 1
        assert cached.cycles == result.cycles
        assert cached.ipc == result.ipc
        assert cached.energy_nj == result.energy_nj

    def test_changed_settings_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        Sweep(self.SETTINGS, store=store).run("gcc", base_config())
        other = Sweep(dataclasses.replace(self.SETTINGS, seed=7),
                      store=ResultStore(str(tmp_path)))
        other.run("gcc", base_config())
        assert other.sim_runs == 1 and other.cache_hits == 0

    def test_sanitize_bypasses_stale_entries(self, tmp_path):
        """A warm cache must not let a sanitized campaign skip its checks:
        entries produced *without* the sanitizer are read-bypassed."""
        store = ResultStore(str(tmp_path))
        Sweep(self.SETTINGS, store=store).run("gcc", base_config())

        sanitizing = Sweep(dataclasses.replace(self.SETTINGS, sanitize=True),
                           store=ResultStore(str(tmp_path)))
        sanitizing.run("gcc", base_config())
        assert sanitizing.sim_runs == 1 and sanitizing.cache_hits == 0

    def test_sanitize_reuses_own_sanitized_entries(self, tmp_path):
        """Entries this process produced under the sanitizer are trusted:
        the checks already ran, so a second sweep sharing the store reuses
        them instead of simulating (and checking) twice."""
        store = ResultStore(str(tmp_path))
        sanitized = dataclasses.replace(self.SETTINGS, sanitize=True)
        first = Sweep(sanitized, store=store)
        result = first.run("gcc", base_config())
        assert first.sim_runs == 1

        second = Sweep(sanitized, store=store)
        reused = second.run("gcc", base_config())
        assert second.sim_runs == 0 and second.cache_hits == 1
        assert reused.cycles == result.cycles

    def test_active_store_reaches_new_sweeps(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result_cache.set_active_store(store)
        try:
            sweep = Sweep(self.SETTINGS)
            assert sweep.store is store
        finally:
            result_cache.set_active_store(None)
        assert Sweep(self.SETTINGS).store is None


class TestConfigFingerprint:
    def test_equal_configs_equal_fingerprints(self):
        assert config_fingerprint(base_config()) == config_fingerprint(base_config())

    def test_distinct_configs_distinct_fingerprints(self):
        assert (config_fingerprint(base_config())
                != config_fingerprint(dynamic_config(3)))
