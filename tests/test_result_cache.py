"""Correctness of the content-addressed result store and its keys.

A cache is only as trustworthy as its key: these tests pin down that
every input that can change a simulation's outcome — any config field,
the trace seed, the sample sizes, the simulator version tag — produces
a distinct key, and that a disk round-trip returns results equal to the
originals.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle


import pytest

from repro.config import base_config, dynamic_config, config_fingerprint
from repro.core.policies import OccupancyPolicy, StaticPolicy
from repro.experiments import cache as result_cache
from repro.experiments.cache import ResultStore, policy_fingerprint, result_key
from repro.experiments.runner import Settings, Sweep
from repro.pipeline import simulate
from repro.workloads import generate_trace, profile


def _small_result(program="gcc", seed=1, measure=1_500):
    trace = generate_trace(profile(program), n_ops=measure + 1_500, seed=seed)
    return simulate(base_config(), trace, warmup=1_000, measure=measure)


def _key(**overrides):
    base = dict(seed=1, warmup=1_000, measure=2_000, trace_ops=4_000,
                policy=None, key_extra=None)
    base.update(overrides)
    config = base.pop("config", base_config())
    program = base.pop("program", "gcc")
    return result_key(program, config, **base)


class TestResultKey:
    def test_stable_across_calls(self):
        assert _key() == _key()

    def test_program_and_seed_and_samples_matter(self):
        reference = _key()
        assert _key(program="leslie3d") != reference
        assert _key(seed=2) != reference
        assert _key(warmup=1_001) != reference
        assert _key(measure=2_001) != reference
        assert _key(trace_ops=4_001) != reference

    def test_any_config_field_invalidates(self):
        """Every top-level config field change must produce a new key —
        the historical foot-gun was a hand-enumerated key that silently
        aliased configs differing in a non-enumerated field."""
        config = base_config()
        reference = _key(config=config)
        changed = [
            dataclasses.replace(config, transition_penalty=9),
            dataclasses.replace(
                config, l2=dataclasses.replace(config.l2, size_bytes=config.l2.size_bytes * 2)),
            dataclasses.replace(
                config, l1d=dataclasses.replace(config.l1d, hit_latency=config.l1d.hit_latency + 1)),
            dataclasses.replace(
                config, memory=dataclasses.replace(config.memory, model_writebacks=not config.memory.model_writebacks)),
            dataclasses.replace(
                config, prefetcher=dataclasses.replace(config.prefetcher, degree=config.prefetcher.degree + 1)),
            dynamic_config(3),
        ]
        keys = {_key(config=c) for c in changed}
        assert reference not in keys
        assert len(keys) == len(changed)

    def test_version_tag_invalidates(self, monkeypatch):
        import repro.pipeline.core as core
        reference = _key()
        monkeypatch.setattr(core, "SIM_VERSION", core.SIM_VERSION + "-next")
        assert _key() != reference

    def test_policy_fingerprint_distinguishes(self):
        assert (policy_fingerprint(StaticPolicy(1))
                != policy_fingerprint(StaticPolicy(2)))
        assert (policy_fingerprint(OccupancyPolicy(3))
                != policy_fingerprint(OccupancyPolicy(3, period=4096)))
        assert (policy_fingerprint(OccupancyPolicy(3))
                == policy_fingerprint(OccupancyPolicy(3)))
        assert policy_fingerprint(None) == policy_fingerprint(None)

    def test_key_extra_still_separates(self):
        assert _key(key_extra=("variant", 1)) != _key(key_extra=("variant", 2))


class TestResultStore:
    def test_memory_roundtrip(self):
        store = ResultStore(None)
        result = _small_result()
        store.put("k" * 64, result)
        assert store.get("k" * 64) is result
        assert store.hits == 1 and store.misses == 0

    def test_disk_roundtrip_equal_results(self, tmp_path):
        result = _small_result()
        writer = ResultStore(str(tmp_path))
        key = _key()
        writer.put(key, result)

        reader = ResultStore(str(tmp_path))   # fresh process stand-in
        loaded = reader.get(key)
        assert loaded is not None
        assert reader.disk_hits == 1
        for fld in dataclasses.fields(type(result)):
            if fld.name == "stats":
                continue
            assert getattr(loaded, fld.name) == getattr(result, fld.name), fld.name
        assert loaded.stats.committed_uops == result.stats.committed_uops
        assert loaded.stats.miss_intervals() == result.stats.miss_intervals()
        assert loaded.stats.activity.as_dict() == result.stats.activity.as_dict()

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("0" * 64) is None
        assert store.misses == 1

    @pytest.mark.parametrize("garbage", [
        b"truncated garbage",   # invalid leading opcode -> UnpicklingError
        b"garbage\n",           # valid opcode, bad operand -> ValueError
        b"",                    # empty file -> EOFError
    ])
    def test_corrupt_file_is_a_miss(self, tmp_path, garbage):
        store = ResultStore(str(tmp_path))
        key = _key()
        store.put(key, _small_result())
        path = store._path(key)
        with open(path, "wb") as fh:
            fh.write(garbage)
        fresh = ResultStore(str(tmp_path))
        assert fresh.get(key) is None

    def test_clear_disk(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(_key(), _small_result())
        store.put(_key(seed=2), _small_result())
        assert store.disk_entries() == 2
        assert store.clear_disk() == 2
        assert store.disk_entries() == 0


def _racing_writer(directory, key, seed, barrier):
    """Child-process body: everyone writes the same key at once."""
    store = ResultStore(directory)
    result = _small_result(seed=seed, measure=1_500)
    barrier.wait(timeout=30)
    for __ in range(5):
        store.put(key, result)
    os._exit(0)


class TestConcurrentAccess:
    def test_racing_writers_leave_a_whole_entry(self, tmp_path):
        """N processes hammering one key: last atomic replace wins, the
        file is never a torn mix of two writers."""
        key = _key()
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [ctx.Process(target=_racing_writer,
                             args=(str(tmp_path), key, seed, barrier))
                 for seed in (1, 2, 3, 4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        loaded = ResultStore(str(tmp_path)).get(key)
        assert loaded is not None
        # the survivor is bit-identical to one of the contenders
        candidates = {seed: _small_result(seed=seed, measure=1_500)
                      for seed in (1, 2, 3, 4)}
        assert any(loaded.cycles == c.cycles and loaded.ipc == c.ipc
                   for c in candidates.values())
        # and no stray temp files survived the stampede
        leftovers = [name for __, d, names in os.walk(tmp_path)
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_reader_sees_half_written_entry_as_miss(self, tmp_path):
        """A reader racing a (non-atomic, simulated) partial write gets
        a miss, not garbage — and the next put repairs the entry."""
        store = ResultStore(str(tmp_path))
        key = _key()
        result = _small_result()
        store.put(key, result)
        path = store._path(key)
        whole = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(whole[: len(whole) // 2])

        fresh = ResultStore(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.misses == 1
        fresh.put(key, result)
        repaired = ResultStore(str(tmp_path)).get(key)
        assert repaired is not None
        assert repaired.cycles == result.cycles

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        """A writer dying mid-``put`` must not litter the shard with
        temp files (they would accumulate forever in a long-lived
        serving process)."""
        store = ResultStore(str(tmp_path))
        key = _key()

        def explode(*args, **kwargs):
            raise OSError("disk full (injected)")

        monkeypatch.setattr(pickle, "dump", explode)
        with pytest.raises(OSError, match="injected"):
            store.put(key, _small_result())
        monkeypatch.undo()
        shard = os.path.dirname(store._path(key))
        assert [n for n in os.listdir(shard)
                if n.endswith(".tmp")] == []
        assert not os.path.exists(store._path(key))


class TestPrune:
    def _stocked(self, tmp_path, ages):
        """A store with one entry per requested age (seconds ago)."""
        store = ResultStore(str(tmp_path))
        result = _small_result()
        now = 1_700_000_000.0
        keys = []
        for index, age in enumerate(ages):
            key = _key(seed=100 + index)
            store.put(key, result)
            os.utime(store._path(key), (now - age, now - age))
            keys.append(key)
        return store, keys, now

    def test_prune_by_age(self, tmp_path):
        store, keys, now = self._stocked(tmp_path, [10, 1_000, 100_000])
        report = store.prune(max_age=3_600, now=now)
        assert report.scanned == 3
        assert report.removed == 1
        assert report.kept == 2
        survivors = {key for key, *__ in store.iter_disk()}
        assert survivors == set(keys[:2])
        assert report.kept_bytes == store.disk_bytes()

    def test_prune_by_bytes_evicts_lru(self, tmp_path):
        store, keys, now = self._stocked(tmp_path, [10, 20, 30, 40])
        entry_bytes = store.disk_bytes() // 4
        report = store.prune(max_bytes=2 * entry_bytes, now=now)
        assert report.removed == 2
        # the two *oldest* (largest age) went first
        survivors = {key for key, *__ in store.iter_disk()}
        assert survivors == set(keys[:2])
        assert store.disk_bytes() <= 2 * entry_bytes

    def test_pruned_entry_is_a_miss_even_in_memory(self, tmp_path):
        store, keys, now = self._stocked(tmp_path, [10])
        assert store.get(keys[0]) is not None  # now cached in _mem
        # the read refreshed the LRU clock (by design); re-age the entry
        # so the prune below still considers it stale
        os.utime(store._path(keys[0]), (now - 10, now - 10))
        store.prune(max_age=1, now=now)
        assert store.get(keys[0]) is None

    def test_prune_takes_telemetry_artifacts_along(self, tmp_path):
        from repro.experiments.cache import (
            telemetry_artifact_path,
            telemetry_dir,
        )
        store, keys, now = self._stocked(tmp_path, [10, 100_000])
        tdir = telemetry_dir(store)
        os.makedirs(tdir, exist_ok=True)
        artifacts = [telemetry_artifact_path(tdir, key) for key in keys]
        for path in artifacts:
            with open(path, "w") as fh:
                fh.write('{"cycle": 0}\n')
        report = store.prune(max_age=3_600, now=now)
        assert report.removed == 1
        assert report.artifacts_removed == 1
        assert not os.path.exists(artifacts[1])  # evicted entry's artifact
        assert os.path.exists(artifacts[0])      # survivor's stays

    def test_prune_everything_removes_empty_shards(self, tmp_path):
        store, keys, now = self._stocked(tmp_path, [10, 20, 30])
        report = store.prune(max_age=1, now=now)
        assert report.removed == 3 and report.kept == 0
        assert store.disk_entries() == 0
        leftovers = [name for name in os.listdir(tmp_path)
                     if name != "telemetry"]
        assert leftovers == []

    def test_read_hit_refreshes_the_lru_clock(self, tmp_path):
        """Regression: reads never bumped mtime, so byte-budget
        eviction silently degraded to FIFO — a hot, repeatedly hit
        entry was evicted as if it had never been read again."""
        now = 1_700_000_000.0
        store, keys, __ = self._stocked(tmp_path, [1_000, 500])
        hot, cold = keys  # `hot` is *older* on disk than `cold`
        fresh = ResultStore(str(tmp_path))
        assert fresh.get(hot) is not None  # disk hit: bumps mtime to now
        entry_bytes = fresh.disk_bytes() // 2
        report = fresh.prune(max_bytes=entry_bytes, now=now)
        assert report.removed == 1
        survivors = {key for key, *__ in fresh.iter_disk()}
        assert survivors == {hot}  # LRU kept the hot entry, evicted cold

    def test_memory_hit_also_refreshes_the_disk_entry(self, tmp_path):
        store, keys, __ = self._stocked(tmp_path, [1_000])
        before = next(store.iter_disk())[2]
        assert store.get(keys[0]) is not None  # served from memory
        after = next(store.iter_disk())[2]
        assert after > before

    def test_prune_report_summary(self, tmp_path):
        store, __, now = self._stocked(tmp_path, [10, 100_000])
        text = store.prune(max_age=3_600, now=now).summary()
        assert "pruned 1 of 2 entries" in text
        assert "1 entries" in text and "kept" in text

    def test_memory_only_store_prunes_nothing(self):
        report = ResultStore(None).prune(max_age=0)
        assert report.scanned == report.removed == 0


class TestCacheCli:
    def _stock(self, tmp_path, n=3):
        store = ResultStore(str(tmp_path))
        for index in range(n):
            store.put(_key(seed=200 + index), _small_result())
        return store

    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        from repro.experiments.__main__ import cache_main
        self._stock(tmp_path)
        assert cache_main(["--stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "KiB" in out and "telemetry artifacts" in out

    def test_prune_requires_a_criterion(self, tmp_path, capsys):
        from repro.experiments.__main__ import cache_main
        assert cache_main(["--prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_by_max_bytes(self, tmp_path, capsys):
        from repro.experiments.__main__ import cache_main
        self._stock(tmp_path)
        code = cache_main(["--prune", "--max-bytes", "0",
                           "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "pruned 3 of 3 entries" in capsys.readouterr().out
        assert ResultStore(str(tmp_path)).disk_entries() == 0

    def test_cache_subcommand_dispatch(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        self._stock(tmp_path, n=1)
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "1 entries" in capsys.readouterr().out

    def test_parse_size_suffixes(self):
        import argparse

        from repro.experiments.__main__ import _parse_size
        assert _parse_size("500") == 500
        assert _parse_size("500K") == 500 * 1024
        assert _parse_size("64m") == 64 * 1024 ** 2
        assert _parse_size("2G") == 2 * 1024 ** 3
        for bad in ("", "12Q", "-1", "K"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_size(bad)


class TestCampaignSummary:
    def test_summary_reports_disk_entries(self, tmp_path, capsys):
        """The end-of-run summary tells the operator how big the store
        has grown (hit/miss counters alone say nothing about disk)."""
        from repro.experiments.__main__ import main
        code = main(["--selected", "--only", "fig02", "--measure", "800",
                     "--warmup", "200", "--jobs", "1",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        entries = ResultStore(str(tmp_path)).disk_entries()
        assert entries > 0
        assert f"{entries} entries on disk" in out


class TestSweepStoreIntegration:
    SETTINGS = Settings(all_programs=False, warmup=1_000, measure=1_500)

    def test_disk_hit_skips_simulation(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = Sweep(self.SETTINGS, store=store)
        result = first.run("gcc", base_config())
        assert first.sim_runs == 1

        second = Sweep(self.SETTINGS, store=ResultStore(str(tmp_path)))
        cached = second.run("gcc", base_config())
        assert second.sim_runs == 0
        assert second.cache_hits == 1
        assert cached.cycles == result.cycles
        assert cached.ipc == result.ipc
        assert cached.energy_nj == result.energy_nj

    def test_changed_settings_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        Sweep(self.SETTINGS, store=store).run("gcc", base_config())
        other = Sweep(dataclasses.replace(self.SETTINGS, seed=7),
                      store=ResultStore(str(tmp_path)))
        other.run("gcc", base_config())
        assert other.sim_runs == 1 and other.cache_hits == 0

    def test_sanitize_bypasses_stale_entries(self, tmp_path):
        """A warm cache must not let a sanitized campaign skip its checks:
        entries produced *without* the sanitizer are read-bypassed."""
        store = ResultStore(str(tmp_path))
        Sweep(self.SETTINGS, store=store).run("gcc", base_config())

        sanitizing = Sweep(dataclasses.replace(self.SETTINGS, sanitize=True),
                           store=ResultStore(str(tmp_path)))
        sanitizing.run("gcc", base_config())
        assert sanitizing.sim_runs == 1 and sanitizing.cache_hits == 0

    def test_sanitize_reuses_own_sanitized_entries(self, tmp_path):
        """Entries this process produced under the sanitizer are trusted:
        the checks already ran, so a second sweep sharing the store reuses
        them instead of simulating (and checking) twice."""
        store = ResultStore(str(tmp_path))
        sanitized = dataclasses.replace(self.SETTINGS, sanitize=True)
        first = Sweep(sanitized, store=store)
        result = first.run("gcc", base_config())
        assert first.sim_runs == 1

        second = Sweep(sanitized, store=store)
        reused = second.run("gcc", base_config())
        assert second.sim_runs == 0 and second.cache_hits == 1
        assert reused.cycles == result.cycles

    def test_active_store_reaches_new_sweeps(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result_cache.set_active_store(store)
        try:
            sweep = Sweep(self.SETTINGS)
            assert sweep.store is store
        finally:
            result_cache.set_active_store(None)
        assert Sweep(self.SETTINGS).store is None


class TestConfigFingerprint:
    def test_equal_configs_equal_fingerprints(self):
        assert config_fingerprint(base_config()) == config_fingerprint(base_config())

    def test_distinct_configs_distinct_fingerprints(self):
        assert (config_fingerprint(base_config())
                != config_fingerprint(dynamic_config(3)))


class TestEngineKeyNeutrality:
    """The execution engine is a host-speed knob: engines are
    behaviourally identical (the engine-equivalence oracle), so the
    choice must never split the cache keyspace."""

    SETTINGS = Settings(all_programs=False, warmup=1_000, measure=1_500)

    def test_engine_field_not_in_fingerprint(self):
        config = base_config()
        assert (config_fingerprint(config)
                == config_fingerprint(
                    dataclasses.replace(config, engine="fast")))

    def test_engine_field_not_in_result_key(self):
        config = base_config()
        assert (_key(config=config)
                == _key(config=dataclasses.replace(config, engine="fast")))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            dataclasses.replace(base_config(), engine="warp")

    @pytest.mark.parametrize("warm_engine,serve_engine",
                             [("reference", "fast"), ("fast", "reference")])
    def test_warm_cache_serves_the_other_engine(self, tmp_path,
                                                warm_engine, serve_engine):
        """A .simcache populated by one engine must fully serve a sweep
        running the other: same keys, zero re-simulation, equal stats."""
        warm = Sweep(dataclasses.replace(self.SETTINGS, engine=warm_engine),
                     store=ResultStore(str(tmp_path)))
        result = warm.run("gcc", base_config())
        assert warm.sim_runs == 1

        served = Sweep(dataclasses.replace(self.SETTINGS,
                                           engine=serve_engine),
                       store=ResultStore(str(tmp_path)))
        cached = served.run("gcc", base_config())
        assert served.sim_runs == 0
        assert served.cache_hits == 1
        assert cached.cycles == result.cycles
        assert cached.ipc == result.ipc

    def test_engines_produce_identical_digests_here_too(self, tmp_path):
        """Cross-serving is only sound because the engines agree; assert
        it at this scale as well (the oracle covers the full table)."""
        from repro.verify.digest import result_digest
        results = {}
        for engine in ("reference", "fast"):
            sweep = Sweep(dataclasses.replace(self.SETTINGS, engine=engine),
                          store=None)
            results[engine] = sweep.run("leslie3d", dynamic_config(3))
        assert (result_digest(results["reference"])
                == result_digest(results["fast"]))
