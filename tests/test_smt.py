"""SMT pipeline: partitioned window shared by 2-4 hardware threads."""

import pytest

from repro.config import (
    LEVEL_TABLE,
    SMTConfig,
    config_fingerprint,
    fixed_config,
    smt_config,
)
from repro.core.partition import make_partition_policy
from repro.pipeline.core import simulate
from repro.pipeline.resources import WindowSet
from repro.pipeline.smt import SMTProcessor, simulate_smt
from repro.verify.digest import diff_payloads, digest_payload
from repro.workloads import generate_trace, profile


def traces_for(programs, n_ops=9000, seed=1):
    return [generate_trace(profile(p), n_ops=n_ops, seed=seed)
            for p in programs]


class TestConfig:
    @pytest.mark.parametrize("threads", [0, 5])
    def test_thread_bounds(self, threads):
        with pytest.raises(ValueError, match="1..4"):
            SMTConfig(threads=threads)

    def test_unknown_policies(self):
        with pytest.raises(ValueError, match="partition"):
            SMTConfig(partition="nope")
        with pytest.raises(ValueError, match="fetch"):
            SMTConfig(fetch="nope")

    def test_model_restriction(self):
        from repro.config import ModelKind, ProcessorConfig
        with pytest.raises(ValueError, match="SMT"):
            ProcessorConfig(model=ModelKind.RUNAHEAD, smt=SMTConfig())

    def test_fingerprints_distinguish_smt_jobs(self):
        # smt=None is excluded from the fingerprint (pre-SMT cache
        # entries stay addressable), so an SMT config must hash
        # differently from the plain config and from other SMT shapes.
        plain = config_fingerprint(fixed_config(3))
        one = config_fingerprint(smt_config(1, "equal", "icount"))
        two = config_fingerprint(smt_config(2, "equal", "icount"))
        three = config_fingerprint(smt_config(3, "equal", "icount"))
        assert len({plain, one, two, three}) == 4


class TestPartitionPolicies:
    @pytest.mark.parametrize("name", ["mlp", "equal"])
    @pytest.mark.parametrize("levels", [(1, 3), (2, 2, 3), (1, 1, 1, 3)])
    def test_quotas_partition_the_window(self, name, levels):
        """Partitioned quotas are disjoint by construction; they must
        sum exactly to each resource's capacity with no thread at 0."""
        window = WindowSet(LEVEL_TABLE, 3, max_level=3)
        policy = make_partition_policy(name, LEVEL_TABLE, 3)
        quotas = policy.quotas(list(levels), window)
        assert policy.partitioned
        for axis, cap in ((0, window.iq.capacity),
                          (1, window.rob.capacity),
                          (2, window.lsq.capacity)):
            shares = [q[axis] for q in quotas]
            assert sum(shares) == cap
            assert min(shares) >= 1

    def test_mlp_biases_toward_deeper_level(self):
        window = WindowSet(LEVEL_TABLE, 3, max_level=3)
        policy = make_partition_policy("mlp", LEVEL_TABLE, 3)
        shallow, deep = policy.quotas([1, 3], window)
        assert deep[1] > shallow[1]  # ROB share tracks the level
        assert policy.depth_level(0, [1, 3], shallow[1]) == 1
        assert policy.depth_level(1, [1, 3], deep[1]) == 3

    def test_equal_single_thread_degrades_to_full_window(self):
        window = WindowSet(LEVEL_TABLE, 3, max_level=3)
        policy = make_partition_policy("equal", LEVEL_TABLE, 3)
        (quota,) = policy.quotas([3], window)
        assert quota == (window.iq.capacity, window.rob.capacity,
                         window.lsq.capacity)
        assert policy.depth_level(0, [3], quota[1]) == 3

    def test_shared_gives_every_thread_full_capacity(self):
        window = WindowSet(LEVEL_TABLE, 3, max_level=3)
        policy = make_partition_policy("shared", LEVEL_TABLE, 3)
        quotas = policy.quotas([3, 3, 3], window)
        assert not policy.partitioned
        full = (window.iq.capacity, window.rob.capacity,
                window.lsq.capacity)
        assert quotas == [full, full, full]

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_partition_policy("nope", LEVEL_TABLE, 3)


class TestConstruction:
    def test_requires_smt_config(self):
        with pytest.raises(ValueError, match="config.smt"):
            SMTProcessor(fixed_config(3), traces_for(("gcc",)))

    def test_trace_count_must_match_threads(self):
        with pytest.raises(ValueError, match="threads"):
            SMTProcessor(smt_config(2), traces_for(("gcc",)))


class TestExecution:
    def test_single_thread_matches_baseline(self):
        """1-thread SMT under the equal partition is bit-identical to
        the single-core fixed model (the verify-smt pin oracle)."""
        trace = generate_trace(profile("gcc"), n_ops=6000, seed=2)
        run = simulate_smt(smt_config(1, "equal", "icount", 3), [trace],
                           warmup=1000, measure=3000)
        base = simulate(fixed_config(3), trace, warmup=1000, measure=3000)
        diffs = diff_payloads(digest_payload(run.threads[0]),
                              digest_payload(base))
        assert not diffs, diffs[:4]

    @pytest.mark.parametrize("partition,fetch", [
        ("mlp", "mlp"), ("equal", "icount"), ("shared", "icount")])
    def test_validated_two_thread_run(self, partition, fetch):
        """validate=True re-checks after every cycle that quotas sum to
        the active capacity, per-thread occupancies sum to the shared
        occupancy, and each thread commits its trace in order."""
        traces = traces_for(("libquantum", "sjeng"), n_ops=20_000)
        run = simulate_smt(smt_config(2, partition, fetch, 3), traces,
                           warmup=800, measure=2000, validate=True)
        assert all(r.instructions > 0 for r in run.threads)
        assert run.throughput() > 0

    def test_aggregate_sums_threads(self):
        traces = traces_for(("libquantum", "sjeng"), n_ops=20_000)
        run = simulate_smt(smt_config(2, "mlp", "mlp", 3), traces,
                           warmup=800, measure=2000)
        agg = run.aggregate
        assert agg.program == "libquantum+sjeng"
        assert agg.model == "smt2-mlp"
        assert agg.instructions == sum(r.instructions for r in run.threads)

    def test_run_twice_is_deterministic(self):
        def digests():
            traces = traces_for(("libquantum", "sjeng"), n_ops=20_000)
            run = simulate_smt(smt_config(2, "equal", "icount", 3),
                               traces, warmup=800, measure=2000)
            return [digest_payload(r) for r in run.threads]
        first, second = digests(), digests()
        assert first == second

    def test_roundrobin_fetch_runs(self):
        traces = traces_for(("gcc", "sjeng"), n_ops=20_000)
        run = simulate_smt(smt_config(2, "equal", "roundrobin", 3),
                           traces, warmup=600, measure=1500)
        assert all(r.instructions > 0 for r in run.threads)
