"""Shared fixtures and helpers for the test suite.

Unit tests construct micro-op traces by hand (``make_trace``) and drive
:class:`repro.pipeline.Processor` directly — no prewarm, no generator —
so the timing they assert on is fully determined by the ops they wrote.
Integration tests use small generated workloads through session-scoped
fixtures so expensive simulations run once.
"""

from __future__ import annotations

import pytest

from repro.config import ProcessorConfig, ResourceLevel, ModelKind
from repro.isa import MicroOp, OpClass, REG_INVALID
from repro.pipeline import Processor
from repro.workloads import Trace, generate_trace, profile

CODE_BASE = 0x40_0000
DATA_BASE = 0x5000_0000


def make_trace(ops, name="unit", data_base=DATA_BASE, data_size=1 << 20):
    """Wrap a hand-written op list into a Trace."""
    return Trace(name, list(ops), seed=7, data_base=data_base,
                 data_size=data_size)


def ialu(i, dst, srcs=()):
    return MicroOp(CODE_BASE + 4 * i, OpClass.IALU, dst=dst,
                   srcs=tuple(srcs))


def load(i, dst, addr, srcs=()):
    return MicroOp(CODE_BASE + 4 * i, OpClass.LOAD, dst=dst,
                   srcs=tuple(srcs), addr=addr, size=8)


def store(i, addr, srcs=()):
    return MicroOp(CODE_BASE + 4 * i, OpClass.STORE, srcs=tuple(srcs),
                   addr=addr, size=8)


def branch(i, taken, target=None, srcs=()):
    pc = CODE_BASE + 4 * i
    return MicroOp(pc, OpClass.BRANCH, srcs=tuple(srcs), taken=taken,
                   target=target if target is not None else pc + 4)


def warm_icache(proc: Processor, lo: int = CODE_BASE,
                hi: int = CODE_BASE + 0x8000) -> None:
    """Pre-install the code region so unit tests measure the back end,
    not cold instruction fetch."""
    line = proc.config.l1i.line_bytes
    for addr in range(lo, hi, line):
        proc.hierarchy.l1i.install(addr, ready_at=0)


def run_ops(ops, config: ProcessorConfig | None = None,
            max_cycles: int = 500_000) -> Processor:
    """Run a hand-written op list to completion; returns the processor.

    The I-cache is prewarmed over the code region so timings reflect the
    back end under test rather than cold instruction fetch.
    """
    proc = Processor(config or ProcessorConfig(), make_trace(ops))
    warm_icache(proc)
    proc.run(until_committed=len(ops), max_cycles=max_cycles)
    return proc


def single_depth_levels(depth: int) -> tuple[ResourceLevel, ...]:
    """A one-level table with a chosen IQ pipeline depth, to isolate the
    back-to-back issue penalty from everything else."""
    return (ResourceLevel(iq_entries=64, rob_entries=128, lsq_entries=64,
                          iq_depth=depth, rob_depth=1, lsq_depth=1),)


@pytest.fixture(scope="session")
def gcc_trace():
    return generate_trace(profile("gcc"), n_ops=9_000, seed=3)


@pytest.fixture(scope="session")
def libquantum_trace():
    return generate_trace(profile("libquantum"), n_ops=9_000, seed=3)


@pytest.fixture(scope="session")
def omnetpp_trace():
    return generate_trace(profile("omnetpp"), n_ops=9_000, seed=3)
