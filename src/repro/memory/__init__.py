"""Memory hierarchy substrate.

Implements the cache/memory system of Table 1 of the paper:

* non-blocking set-associative L1 I/D caches and a unified L2 (the LLC),
  each with MSHRs that merge requests to in-flight lines,
* a main-memory channel with a 300-cycle minimum latency and 8 bytes/cycle
  of bandwidth (so overlapped misses — MLP — are served in parallel but
  serialise on the channel),
* a Baer–Chen stride prefetcher with a 4K-entry 4-way PC-indexed table
  that prefetches 16 lines into the L2 on a miss.

The hierarchy is a *timing* model: an access returns the cycle at which
its data arrives; there is no data storage.
"""

from repro.memory.cache import Cache, CacheLine
from repro.memory.mshr import MSHRFile
from repro.memory.dram import MainMemory
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.prefetchers import (
    NextLinePrefetcher,
    NoPrefetcher,
    StreamPrefetcher,
    make_prefetcher,
)
from repro.memory.hierarchy import MemoryHierarchy, AccessPath, AccessResult

__all__ = [
    "Cache",
    "CacheLine",
    "MSHRFile",
    "MainMemory",
    "StridePrefetcher",
    "StreamPrefetcher",
    "NextLinePrefetcher",
    "NoPrefetcher",
    "make_prefetcher",
    "MemoryHierarchy",
    "AccessPath",
    "AccessResult",
]
