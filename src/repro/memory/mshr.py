"""Miss status holding registers.

An MSHR file tracks the cache lines a non-blocking cache currently has in
flight.  A second miss to an in-flight line *merges*: it completes when the
original fill arrives and consumes no new entry.  When all entries are
busy, a new miss must wait for the earliest release — the wait is folded
into the returned completion time, which keeps the model deterministic
without a retry loop.
"""

from __future__ import annotations


class MSHRFile:
    """Bookkeeping for in-flight misses of one cache."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.entries = entries
        #: line address -> cycle at which the fill completes
        self._pending: dict[int, int] = {}
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0

    def lookup(self, line_addr: int) -> int | None:
        """Completion cycle of an in-flight fill for ``line_addr``, if any."""
        return self._pending.get(line_addr)

    def merge(self, line_addr: int) -> int:
        """Record a secondary miss folded into an existing entry."""
        self.merges += 1
        return self._pending[line_addr]

    def occupancy(self, cycle: int) -> int:
        """Number of entries still in flight at ``cycle`` (reaps expired)."""
        self._reap(cycle)
        return len(self._pending)

    def earliest_release(self) -> int:
        """Cycle at which the next entry frees (file must be non-empty)."""
        return min(self._pending.values())

    def allocate_delay(self, cycle: int) -> int:
        """Extra cycles an allocation at ``cycle`` must wait for a free entry."""
        self._reap(cycle)
        if len(self._pending) < self.entries:
            return 0
        self.full_stalls += 1
        return max(0, self.earliest_release() - cycle)

    def allocate(self, line_addr: int, completion: int) -> None:
        """Install an in-flight fill completing at ``completion``."""
        self.allocations += 1
        self._pending[line_addr] = completion

    def _reap(self, cycle: int) -> None:
        if not self._pending:
            return
        expired = [a for a, c in self._pending.items() if c <= cycle]
        for addr in expired:
            del self._pending[addr]

    def reset(self) -> None:
        self._pending.clear()
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0
