"""Miss status holding registers.

An MSHR file tracks the cache lines a non-blocking cache currently has in
flight.  A second miss to an in-flight line *merges*: it completes when the
original fill arrives and consumes no new entry.  When all entries are
busy, a new miss must wait for a release — the wait is folded into the
returned completion time, which keeps the model deterministic without a
retry loop.

The ``entries`` bound is a hard invariant: at no simulated instant may
more than ``entries`` fills *hold an entry*.  Each record therefore
carries, besides its completion cycle, its claim cycle (when it takes
the entry — allocation start plus any queuing wait); a record queued
behind a full file reserves future capacity without holding an entry
yet.  Two historical leaks are closed here and guarded by
:meth:`allocate`:

* a caller that skipped :meth:`allocate_delay` (the prefetch path did)
  could install a fill into a full file — callers must now check
  :meth:`has_room` or pass their claim cycle so the bound is enforced;
* several allocations racing one reap could each be told to wait for the
  *same* earliest release — :meth:`allocate_delay` now queues each
  claim behind every not-yet-released reservation before it (the k-th
  over-capacity claim waits for the k-th earliest release).

Observation and recording are split (the same discipline as the window
resources): :meth:`has_room`, :meth:`in_flight` and :meth:`reserved`
are queries; only :meth:`allocate_delay` — an actual claim — records
``full_stalls``.
"""

from __future__ import annotations

#: Sentinel "no pending release" bound; larger than any simulated cycle.
_FAR_FUTURE = 1 << 62


class MSHRFile:
    """Bookkeeping for in-flight misses of one cache."""

    def __init__(self, entries: int, name: str = "MSHR") -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.entries = entries
        self.name = name
        #: line address -> completion cycle (the hot-path table)
        self._pending: dict[int, int] = {}
        #: line address -> claim cycle, for records whose caller passed
        #: timing.  Absent means "held since allocation" (claim -1).
        #: Kept aside so the hot lookup/merge/reap paths stay a plain
        #: int-valued dict.
        self._claims: dict[int, int] = {}
        #: lower bound on the earliest completion in ``_pending`` — lets
        #: :meth:`_reap` skip the scan while nothing can have expired.
        #: A dict overwrite can leave it stale-low, which only costs an
        #: extra scan, never a missed reap.
        self._next_release = _FAR_FUTURE
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0

    def lookup(self, line_addr: int) -> int | None:
        """Completion cycle of an in-flight fill for ``line_addr``, if any."""
        return self._pending.get(line_addr)

    def merge(self, line_addr: int) -> int:
        """Record a secondary miss folded into an existing entry."""
        self.merges += 1
        return self._pending[line_addr]

    def occupancy(self, cycle: int) -> int:
        """Number of not-yet-released records at ``cycle`` (reaps expired)."""
        self._reap(cycle)
        return len(self._pending)

    def in_flight(self, cycle: int) -> int:
        """Fills actually *holding* an entry at ``cycle`` — claimed and
        not yet completed.  A pure, non-reaping observation: this is the
        quantity the ``entries`` bound constrains, and the sanitizer can
        evaluate it every cycle without perturbing reap-sensitive
        callers."""
        claims = self._claims
        if not claims:
            return sum(1 for comp in self._pending.values() if comp > cycle)
        return sum(1 for addr, comp in self._pending.items()
                   if comp > cycle and claims.get(addr, -1) <= cycle)

    def reserved(self, cycle: int) -> int:
        """Records still outstanding at ``cycle`` — entry holders *plus*
        queued claims waiting for a release.  Pure and non-reaping; this
        is the admission count speculative requesters must respect (a
        queued demand miss owns the next free entry even before its
        claim cycle)."""
        return sum(1 for comp in self._pending.values() if comp > cycle)

    def can_reserve(self, cycle: int) -> bool:
        """Query: is a reservation open at ``cycle``, counting queued
        claims?  The count-based fast path skips the scan whenever the
        file cannot possibly be full."""
        if len(self._pending) < self.entries:
            return True
        return self.reserved(cycle) < self.entries

    def has_room(self, cycle: int) -> bool:
        """Query: can a new fill claim an entry at ``cycle`` without
        waiting?  Counts queued reservations, so speculative requesters
        (prefetch, runahead) cannot steal an entry a queued demand miss
        was promised.  No counters move (see the module docstring)."""
        self._reap(cycle)
        return len(self._pending) < self.entries

    def earliest_release(self) -> int:
        """Cycle at which the next record releases (file must be non-empty)."""
        return min(self._pending.values())

    def allocate_delay(self, cycle: int) -> int:
        """Extra cycles an allocation at ``cycle`` must wait for a free entry.

        Queued records still reserve capacity, so when ``k`` reservations
        beyond the file size are outstanding the new claim waits for the
        ``k``-th earliest release — successive misses racing one reap can
        no longer all be promised the same freed entry.
        """
        self._reap(cycle)
        excess = len(self._pending) - self.entries + 1
        if excess <= 0:
            return 0
        self.full_stalls += 1
        releases = sorted(self._pending.values())
        return max(0, releases[excess - 1] - cycle)

    def allocate(self, line_addr: int, completion: int,
                 cycle: int | None = None) -> None:
        """Install an in-flight fill completing at ``completion``.

        ``cycle`` is the claim time (allocation start plus any
        :meth:`allocate_delay` wait); when given, the bound is checked
        against the fills actually holding entries at that instant —
        without reaping, so enforcement has no observable side effect.
        Installing into a full file raises: the capacity invariant is
        enforced here, not merely assumed of callers.  The check scans —
        and the claim cycle is recorded — only when the record count
        says the file is at capacity: below it, any wait returned by
        :meth:`allocate_delay` was zero, so the claim equals the
        allocation instant and is indistinguishable from "held since
        allocation" to every later query.
        """
        if cycle is not None:
            if len(self._pending) >= self.entries:
                existing = self._pending.get(line_addr)
                live = existing is not None and existing > cycle
                if not live and self.in_flight(cycle) >= self.entries:
                    raise RuntimeError(
                        f"{self.name}: overflow — {self.entries} fills "
                        f"already hold entries at cycle {cycle} (caller "
                        f"must wait via allocate_delay() or drop via "
                        f"has_room())")
                self._claims[line_addr] = cycle
            elif self._claims:
                self._claims.pop(line_addr, None)
        else:
            if (line_addr not in self._pending
                    and len(self._pending) >= self.entries):
                raise RuntimeError(
                    f"{self.name}: overflow — {len(self._pending)} fills "
                    f"outstanding, {self.entries} entries (caller must "
                    f"wait via allocate_delay() or drop via has_room())")
            if self._claims:
                self._claims.pop(line_addr, None)
        self.allocations += 1
        self._pending[line_addr] = completion
        if completion < self._next_release:
            self._next_release = completion

    def _reap(self, cycle: int) -> None:
        if cycle < self._next_release or not self._pending:
            return
        expired = [a for a, comp in self._pending.items() if comp <= cycle]
        for addr in expired:
            del self._pending[addr]
        if self._claims:
            for addr in expired:
                self._claims.pop(addr, None)
        pending = self._pending
        self._next_release = (min(pending.values()) if pending
                              else _FAR_FUTURE)

    def reset(self) -> None:
        self._pending.clear()
        self._claims.clear()
        self._next_release = _FAR_FUTURE
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0
