"""Alternative data prefetchers.

The paper's Table 1 uses a stride prefetcher "because commercial
processors (IBM Power 5/6/7, Intel Sandy Bridge, AMD Opteron) use a
stream or stride prefetcher".  This module provides the other members of
that family behind the same ``train(pc, addr, miss) -> candidates``
interface as :class:`~repro.memory.prefetcher.StridePrefetcher`:

* :class:`NoPrefetcher` — the null device (the ablation baseline).
* :class:`NextLinePrefetcher` — on a miss, fetch the next N lines.
* :class:`StreamPrefetcher` — stream buffers (Jouppi): detect ascending
  or descending *line* streams from the miss sequence (PC-blind) and run
  each live stream a fixed depth ahead.

Select via ``PrefetcherConfig.kind`` ("stride" | "stream" | "nextline" |
"none"); the ``ablation_prefetcher`` experiment compares them.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import PrefetcherConfig


class NoPrefetcher:
    """Prefetching disabled."""

    def __init__(self, config: PrefetcherConfig,
                 line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.trained = 0
        self.issued = 0

    def train(self, pc: int, addr: int, miss: bool) -> list[int]:
        return []

    def reset(self) -> None:
        self.trained = 0


class NextLinePrefetcher:
    """On every miss, prefetch the next ``degree`` sequential lines."""

    def __init__(self, config: PrefetcherConfig,
                 line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.trained = 0
        self.issued = 0

    def train(self, pc: int, addr: int, miss: bool) -> list[int]:
        if not self.config.enabled or not miss:
            return []
        self.trained += 1
        line = addr - (addr % self.line_bytes)
        out = [line + k * self.line_bytes
               for k in range(1, self.config.degree + 1)]
        self.issued += len(out)
        return out

    def reset(self) -> None:
        self.trained = 0
        self.issued = 0


class _Stream:
    __slots__ = ("next_line", "direction", "confidence")

    def __init__(self, next_line: int, direction: int) -> None:
        self.next_line = next_line
        self.direction = direction
        self.confidence = 1


class StreamPrefetcher:
    """Stream buffers: PC-blind detection of sequential line misses.

    A miss adjacent (same direction) to a tracked stream's expected next
    line advances that stream and prefetches ``depth`` lines ahead; an
    unmatched miss allocates a new stream (LRU over ``max_streams``).
    """

    def __init__(self, config: PrefetcherConfig, line_bytes: int = 64,
                 max_streams: int = 8, depth: int = 4) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.max_streams = max_streams
        self.depth = depth
        self._streams: OrderedDict[int, _Stream] = OrderedDict()
        self._next_id = 0
        self.trained = 0
        self.issued = 0

    def _line(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def train(self, pc: int, addr: int, miss: bool) -> list[int]:
        if not self.config.enabled or not miss:
            return []
        self.trained += 1
        line = self._line(addr)
        for sid, stream in self._streams.items():
            if line == stream.next_line:
                self._streams.move_to_end(sid)
                stream.confidence = min(4, stream.confidence + 1)
                step = stream.direction * self.line_bytes
                out = [line + k * step for k in range(1, self.depth + 1)
                       if line + k * step >= 0]
                stream.next_line = line + step
                self.issued += len(out)
                return out
        # no stream matched: allocate ascending and descending candidates
        self._allocate(line + self.line_bytes, +1)
        self._allocate(line - self.line_bytes, -1)
        return []

    def _allocate(self, next_line: int, direction: int) -> None:
        if next_line < 0:
            return
        if len(self._streams) >= self.max_streams:
            self._streams.popitem(last=False)
        self._next_id += 1
        self._streams[self._next_id] = _Stream(next_line, direction)

    def reset(self) -> None:
        self._streams.clear()
        self.trained = 0
        self.issued = 0


def make_prefetcher(config: PrefetcherConfig, line_bytes: int = 64):
    """Instantiate the prefetcher selected by ``config.kind``."""
    from repro.memory.prefetcher import StridePrefetcher
    kinds = {
        "stride": StridePrefetcher,
        "stream": StreamPrefetcher,
        "nextline": NextLinePrefetcher,
        "none": NoPrefetcher,
    }
    try:
        cls = kinds[config.kind]
    except KeyError:
        raise ValueError(f"unknown prefetcher kind {config.kind!r}; "
                         f"known: {', '.join(kinds)}") from None
    return cls(config, line_bytes=line_bytes)
