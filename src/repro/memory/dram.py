"""Main memory channel model.

Table 1 of the paper specifies a 300-cycle minimum latency and 8 bytes per
cycle of bandwidth.  We model a single channel: each line transfer occupies
the channel for ``line_bytes / bytes_per_cycle`` cycles, requests queue in
arrival order, and a request's data arrives ``min_latency`` cycles after
its transfer slot begins.  Two overlapped misses therefore complete ~8
cycles apart instead of 300 — this is exactly the Figure 1(b) behaviour
that gives MLP its payoff, while heavy burst traffic still saturates the
channel.
"""

from __future__ import annotations

from repro.config import MemoryConfig


class MainMemory:
    """Single bandwidth-limited main memory channel."""

    def __init__(self, config: MemoryConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.transfer_cycles = max(
            1, (line_bytes + config.bytes_per_cycle - 1) // config.bytes_per_cycle)
        self._channel_free = 0
        self.requests = 0
        self.busy_cycles = 0

    def schedule(self, cycle: int, addr: int = 0) -> int:
        """Schedule a line fetch requested at ``cycle``.

        Returns the cycle at which the data arrives at the requester.
        ``addr`` is accepted for interface parity with
        :class:`~repro.memory.dram_banked.BankedMemory` (a flat channel
        is address-blind).
        """
        start = max(cycle, self._channel_free)
        self._channel_free = start + self.transfer_cycles
        self.requests += 1
        self.busy_cycles += self.transfer_cycles
        return start + self.config.min_latency

    def queue_delay(self, cycle: int) -> int:
        """Cycles a request issued now would wait for the channel."""
        return max(0, self._channel_free - cycle)

    def reset(self) -> None:
        self._channel_free = 0
        self.requests = 0
        self.busy_cycles = 0
