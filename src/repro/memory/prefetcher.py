"""Baer–Chen style stride prefetcher.

Table 1 of the paper: "stride-based, 4K-entry, 4-way table, 16-data
prefetch to L2 cache on miss".  The table is indexed by load PC; each
entry tracks the last address and last stride with a 2-bit confidence
state.  When a load misses and its entry is in the *steady* state, the
prefetcher requests the next ``degree`` lines along the stride into the
L2.

The prefetcher only produces *candidate addresses*; the hierarchy decides
which are already resident/pending and charges DRAM bandwidth for the
rest.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import PrefetcherConfig

# 2-bit confidence automaton states (classic Baer–Chen FSM).
_INIT, _TRANSIENT, _STEADY, _NOPRED = range(4)


class _StrideEntry:
    __slots__ = ("tag", "last_addr", "stride", "state")

    def __init__(self, tag: int, last_addr: int) -> None:
        self.tag = tag
        self.last_addr = last_addr
        self.stride = 0
        self.state = _INIT


class StridePrefetcher:
    """PC-indexed stride detection table."""

    def __init__(self, config: PrefetcherConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        # hot-path mirrors: train() runs once per L1D load access, so
        # the per-call config attribute chains are worth caching
        self._enabled = config.enabled
        self._assoc = config.table_assoc
        self._degree = config.degree
        self.num_sets = max(1, config.table_entries // config.table_assoc)
        self._sets: list[OrderedDict[int, _StrideEntry]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.trained = 0
        self.issued = 0

    def _entry_for(self, pc: int) -> _StrideEntry:
        index = (pc >> 2) % self.num_sets
        cset = self._sets[index]
        entry = cset.get(pc)
        if entry is None:
            if len(cset) >= self._assoc:
                cset.popitem(last=False)
            entry = _StrideEntry(pc, 0)
            cset[pc] = entry
        else:
            cset.move_to_end(pc)
        return entry

    def train(self, pc: int, addr: int, miss: bool) -> list[int]:
        """Observe a load; return prefetch candidate addresses (may be []).

        Called for every L1D load access so strides are learned from the
        full stream; prefetches are only *issued* on a miss, per Table 1.
        """
        if not self._enabled:
            return []
        self.trained += 1
        entry = self._entry_for(pc)
        new_stride = addr - entry.last_addr
        if entry.state == _INIT:
            entry.state = _TRANSIENT if new_stride else _STEADY
            entry.stride = new_stride
        elif new_stride == entry.stride:
            entry.state = _STEADY
        else:
            if entry.state == _STEADY:
                entry.state = _INIT
            else:
                entry.state = _NOPRED if entry.state == _NOPRED else _TRANSIENT
            entry.stride = new_stride
        entry.last_addr = addr

        if not miss or entry.state != _STEADY or entry.stride == 0:
            return []
        # Prefetch the next `degree` *data items* along the stride (Table 1
        # of the paper: "16-data prefetch to L2 cache on miss").  The
        # lookahead is therefore degree * stride bytes — a handful of
        # lines for small strides, which is deliberately NOT enough to
        # hide a 300-cycle memory latency for a fast-moving stream.  That
        # limitation is what leaves MLP on the table for the large window
        # to harvest (libquantum's 247-cycle Table 3 latency).
        candidates = []
        seen = set()
        for k in range(1, self._degree + 1):
            target = addr + k * entry.stride
            if target < 0:
                break
            line = target - (target % self.line_bytes)
            if line not in seen:
                seen.add(line)
                candidates.append(line)
        self.issued += len(candidates)
        return candidates

    def reset(self) -> None:
        for cset in self._sets:
            cset.clear()
        self.trained = 0
        self.issued = 0
