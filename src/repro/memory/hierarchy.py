"""The full memory hierarchy: L1I + L1D + unified L2 + main memory.

This is the component the pipeline talks to.  Loads, stores and
instruction fetches enter here with the cycle at which the access starts;
the hierarchy walks the levels, consults MSHRs, schedules DRAM transfers,
triggers the stride prefetcher and reports back the completion cycle.

Two observation hooks matter for the paper:

* ``l2_miss_listener`` fires once per demand L2 (LLC) miss — this is the
  signal that drives the MLP-aware resizing controller (paper Figure 5,
  line 7) and the miss-interval histogram of Figure 4.
* every L2 line records who brought it in (correct path / wrong path /
  prefetch) and whether a correct-path access later touched it, feeding
  the cache-pollution breakdown of Figure 11.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable

from repro.config import ProcessorConfig
from repro.memory.cache import Cache, CacheLine
from repro.memory.dram import MainMemory
from repro.memory.mshr import MSHRFile
from repro.memory.prefetchers import make_prefetcher


class AccessPath(IntEnum):
    """Who performed (or caused) a memory access."""

    CORRECT = 0
    WRONG = 1
    PREFETCH = 2


class AccessResult:
    """Outcome of one data access."""

    __slots__ = ("complete_cycle", "l1_hit", "l2_hit", "l2_miss")

    def __init__(self, complete_cycle: int, l1_hit: bool, l2_hit: bool,
                 l2_miss: bool) -> None:
        self.complete_cycle = complete_cycle
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit
        self.l2_miss = l2_miss

    def __repr__(self) -> str:
        kind = "L1" if self.l1_hit else ("L2" if self.l2_hit else "MEM")
        return f"<AccessResult {kind} done@{self.complete_cycle}>"


class LineUsageStats:
    """Counts of L2 lines brought in, by source and usefulness (Fig 11)."""

    __slots__ = ("useful", "useless")

    def __init__(self) -> None:
        self.useful = [0, 0, 0]   # indexed by AccessPath
        self.useless = [0, 0, 0]

    def record(self, line: CacheLine) -> None:
        if line.brought_by < 0:
            return   # prewarmed line: not "brought in" during the run
        bucket = self.useful if line.touched else self.useless
        bucket[line.brought_by] += 1

    def total(self) -> int:
        return sum(self.useful) + sum(self.useless)

    def as_dict(self) -> dict[str, int]:
        names = ("corrpath", "wrongpath", "prefetch")
        out: dict[str, int] = {}
        for idx, name in enumerate(names):
            out[f"{name}_useful"] = self.useful[idx]
            out[f"{name}_useless"] = self.useless[idx]
        return out


class MemoryHierarchy:
    """Cache/memory system of Table 1 of the paper."""

    def __init__(self, config: ProcessorConfig,
                 shared_l2: Cache | None = None,
                 shared_l2_mshr: MSHRFile | None = None,
                 shared_memory=None) -> None:
        """Private L1s always; pass ``shared_l2``/``shared_l2_mshr``/
        ``shared_memory`` to build one core of a multi-core system with a
        shared LLC and channel (see :mod:`repro.multicore`)."""
        self.config = config
        self._line_usage = LineUsageStats()
        # which structures this facade owns (vs. shares with other
        # cores): reset_measurement only touches owned counters
        self._owns_l2 = shared_l2 is None
        self._owns_memory = shared_memory is None
        self.l1i = Cache(config.l1i, name="L1I")
        self.l1d = Cache(config.l1d, name="L1D",
                         evict_hook=self._on_l1d_evict)
        if shared_l2 is not None:
            self.l2 = shared_l2
        else:
            self.l2 = Cache(config.l2, name="L2",
                            evict_hook=self._on_l2_evict)
        self._writebacks_enabled = config.memory.model_writebacks
        self._now_hint = 0
        self.l2_writebacks = 0
        self.l1d_mshr = MSHRFile(config.l1d.mshr_entries, name="L1D-MSHR")
        self.l2_mshr = shared_l2_mshr or MSHRFile(config.l2.mshr_entries,
                                                  name="L2-MSHR")
        if shared_memory is not None:
            self.memory = shared_memory
        elif config.memory.organisation == "banked":
            from repro.memory.dram_banked import BankedMemory
            self.memory = BankedMemory(config.memory,
                                       line_bytes=config.l2.line_bytes)
        elif config.memory.organisation == "flat":
            self.memory = MainMemory(config.memory,
                                     line_bytes=config.l2.line_bytes)
        else:
            raise ValueError(
                f"unknown memory organisation "
                f"{config.memory.organisation!r}; known: flat, banked")
        self.prefetcher = make_prefetcher(
            config.prefetcher, line_bytes=config.l2.line_bytes)
        self.l2_miss_listeners: list[Callable[[int], None]] = []
        self.demand_l2_misses = 0
        self.prefetch_fills = 0
        self.load_latency_sum = 0
        self.load_count = 0
        # hit latencies, hoisted out of the per-access paths
        self._l1d_lat = config.l1d.hit_latency
        self._l1i_lat = config.l1i.hit_latency
        self._l2_lat = config.l2.hit_latency

    # ------------------------------------------------------------------
    # eviction handling

    def _on_l1d_evict(self, line: CacheLine) -> None:
        """A dirty L1D victim writes back into the L2 (no extra timing:
        the L2 write port absorbs it)."""
        if line.dirty:
            resident = self.l2.lookup(line.line_addr, update_lru=False)
            if resident is not None:
                resident.dirty = True

    def _on_l2_evict(self, line: CacheLine) -> None:
        """A dirty L2 victim occupies the memory channel for one line
        transfer (when writeback modelling is enabled)."""
        self._line_usage.record(line)
        if self._writebacks_enabled and line.dirty:
            self.l2_writebacks += 1
            self.memory.schedule(self._now_hint, line.line_addr)

    # ------------------------------------------------------------------
    # observation hooks

    def add_l2_miss_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired at each demand L2 miss detection."""
        self.l2_miss_listeners.append(listener)

    def _notify_l2_miss(self, cycle: int) -> None:
        self.demand_l2_misses += 1
        for listener in self.l2_miss_listeners:
            listener(cycle)

    # ------------------------------------------------------------------
    # data-side access

    def load(self, addr: int, cycle: int, pc: int,
             path: AccessPath = AccessPath.CORRECT) -> AccessResult:
        """A load starting its L1D access at ``cycle``."""
        result = self._data_access(addr, cycle, path, is_write=False)
        candidates = self.prefetcher.train(pc, addr, miss=not result.l1_hit)
        if candidates:
            self._issue_prefetches(candidates, cycle)
        if path is AccessPath.CORRECT:
            self.load_count += 1
            self.load_latency_sum += result.complete_cycle - cycle
        return result

    def store(self, addr: int, cycle: int,
              path: AccessPath = AccessPath.CORRECT) -> AccessResult:
        """A committed store retiring to the L1D (write-allocate)."""
        return self._data_access(addr, cycle, path, is_write=True)

    def _data_access(self, addr: int, cycle: int, path: AccessPath,
                     is_write: bool) -> AccessResult:
        if cycle > self._now_hint:
            self._now_hint = cycle
        l1_lat = self._l1d_lat
        l1d = self.l1d
        line = l1d.lookup(addr)
        if line is not None:
            if is_write:
                line.dirty = True
            self._touch_l2(addr, path)
            if line.ready_at <= cycle:
                l1d.hits += 1
                return AccessResult(cycle + l1_lat, True, False, False)
            # Line still being filled: merge into the outstanding miss.
            l1d.misses += 1
            return AccessResult(max(line.ready_at, cycle + l1_lat),
                                False, False, False)
        l1d.misses += 1
        mshr = self.l1d_mshr
        line_addr = l1d.line_addr(addr)
        pending = mshr.lookup(line_addr)
        if pending is not None and pending > cycle:
            done = mshr.merge(line_addr)
            self._touch_l2(addr, path)
            return AccessResult(max(done, cycle + l1_lat), False, False, False)
        wait = mshr.allocate_delay(cycle)
        l2_start = cycle + wait + l1_lat
        l2_done, l2_hit, l2_line_addr = self._l2_access(addr, l2_start, path)
        mshr.allocate(line_addr, l2_done, cycle=cycle + wait)
        filled = l1d.install(addr, l2_done)
        filled.dirty = is_write
        return AccessResult(l2_done, False, l2_hit, not l2_hit)

    def ifetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch of the line containing ``pc``.

        Returns the completion cycle.  L1I misses go to the unified L2.
        """
        if cycle > self._now_hint:
            self._now_hint = cycle
        l1_lat = self._l1i_lat
        line = self.l1i.lookup(pc)
        if line is not None:
            if line.ready_at <= cycle:
                self.l1i.hits += 1
                return cycle + l1_lat
            self.l1i.misses += 1
            return max(line.ready_at, cycle + l1_lat)
        self.l1i.misses += 1
        done, __, ___ = self._l2_access(pc, cycle + l1_lat, AccessPath.CORRECT)
        self.l1i.install(pc, done)
        return done

    # ------------------------------------------------------------------
    # L2 / memory internals

    def _touch_l2(self, addr: int, path: AccessPath) -> None:
        if path is not AccessPath.CORRECT:
            return
        line = self.l2.lookup(addr, update_lru=False)
        if line is not None:
            line.touched = True

    def _l2_access(self, addr: int, cycle: int,
                   path: AccessPath) -> tuple[int, bool, int]:
        """Access the L2 at ``cycle``; returns (done, l2_hit, line_addr)."""
        l2_lat = self._l2_lat
        line_addr = self.l2.line_addr(addr)
        line = self.l2.lookup(addr)
        if line is not None:
            if path is AccessPath.CORRECT:
                line.touched = True
            if line.ready_at <= cycle:
                self.l2.hits += 1
                return cycle + l2_lat, True, line_addr
            self.l2.misses += 1
            return max(line.ready_at, cycle + l2_lat), False, line_addr
        self.l2.misses += 1
        pending = self.l2_mshr.lookup(line_addr)
        if pending is not None and pending > cycle:
            done = self.l2_mshr.merge(line_addr)
            return max(done, cycle + l2_lat), False, line_addr
        self._notify_l2_miss(cycle + l2_lat)
        wait = self.l2_mshr.allocate_delay(cycle)
        done = self.memory.schedule(cycle + wait + l2_lat, line_addr)
        self.l2_mshr.allocate(line_addr, done, cycle=cycle + wait)
        filled = self.l2.install(addr, done, brought_by=int(path))
        if path is AccessPath.CORRECT:
            filled.touched = True
        return done, False, line_addr

    #: speculative fills (prefetch, runahead) are dropped rather than
    #: queued once the channel backlog exceeds this many cycles.
    SPECULATIVE_QUEUE_LIMIT = 96

    def mshr_room(self, cycle: int) -> bool:
        """Whether the L1D miss buffers can take a new fill right now.

        A pure observation (``full_stalls`` does not move): runahead
        polls this to gate speculative fills, and a query must not skew
        the demand-side stall statistics."""
        return self.l1d_mshr.has_room(cycle)

    def _issue_prefetches(self, candidates: list[int], cycle: int) -> None:
        """Bring prefetch candidate lines into the L2.

        Prefetches are best-effort: like fills beyond the speculative
        queue limit, they are dropped — never queued — when the L2 miss
        buffers are full, so they cannot overflow the MSHR file the way
        the unguarded allocation historically could."""
        if self.memory.queue_delay(cycle) > self.SPECULATIVE_QUEUE_LIMIT:
            return
        for line_addr in candidates:
            if self.l2.contains(line_addr):
                continue
            if self.l2_mshr.lookup(line_addr) is not None:
                continue
            if not self.l2_mshr.can_reserve(cycle):
                # no free entry (counting queued demand claims): drop the
                # prefetch rather than overflow or steal a promised slot
                break
            done = self.memory.schedule(cycle + self.config.l2.hit_latency,
                                        line_addr)
            self.l2_mshr.allocate(line_addr, done, cycle=cycle)
            self.l2.install(line_addr, done, brought_by=int(AccessPath.PREFETCH))
            self.prefetch_fills += 1

    # ------------------------------------------------------------------
    # measurement boundary

    def reset_measurement(self) -> None:
        """Zero the per-measurement counters at the warmup boundary.

        Only counters of structures this facade *owns* are touched.  In
        a multi-core system the L2 and the memory channel are shared
        between N facades; resetting them here would zero the shared
        counters once per core (harmless for plain zeroing, but wrong
        the moment any system-level reset anchors derived state, and
        misleading in any case).  :meth:`repro.multicore.MultiCoreSystem.
        reset_measurement` resets the shared structures exactly once.
        """
        self.load_latency_sum = 0
        self.load_count = 0
        self.demand_l2_misses = 0
        caches = [self.l1i, self.l1d]
        if self._owns_l2:
            caches.append(self.l2)
        for cache in caches:
            cache.hits = 0
            cache.misses = 0
            cache.evictions = 0
        if self._owns_memory:
            self.memory.requests = 0
            self.memory.busy_cycles = 0

    # ------------------------------------------------------------------
    # end-of-run statistics

    def average_load_latency(self) -> float:
        """Average correct-path load latency in cycles (Table 3 metric)."""
        if not self.load_count:
            return 0.0
        return self.load_latency_sum / self.load_count

    def line_usage(self) -> LineUsageStats:
        """Finalised Fig 11 accounting: evicted lines plus resident ones."""
        final = LineUsageStats()
        final.useful = list(self._line_usage.useful)
        final.useless = list(self._line_usage.useless)
        for line in self.l2.resident_lines():
            final.record(line)
        return final
