"""Bank- and row-aware main memory model.

The default :class:`~repro.memory.dram.MainMemory` is the paper's Table 1
channel: a flat 300-cycle minimum latency behind an 8 B/cycle pipe.  This
optional model refines it with the two first-order DRAM effects a flat
latency hides:

* **banks** — requests to different banks overlap their access phases
  (only the data transfer serialises on the shared channel),
* **row buffers** — a request hitting a bank's open row pays a reduced
  access latency; a row conflict pays precharge + activate on top.

Address mapping is line-interleaved across banks (consecutive lines hit
consecutive banks, the common mapping for streaming locality), with the
row index above the bank bits.

Select via ``MemoryConfig.organisation = "banked"``; the
``ablation_dram`` experiment measures how much the paper's conclusions
depend on the flat-latency simplification.
"""

from __future__ import annotations

from repro.config import MemoryConfig


class Bank:
    """One DRAM bank: recently-open rows plus a busy window.

    Real memory controllers reorder pending requests to group row hits
    (FR-FCFS); this single-pass model cannot reorder, so it approximates
    the *effect* by treating the last few activated rows as hittable —
    interleaved streams then keep their row locality, as they would
    under a reordering controller.
    """

    __slots__ = ("recent_rows", "busy_until", "depth")

    def __init__(self, depth: int = 16) -> None:
        self.recent_rows: list[int] = []
        self.busy_until = 0
        self.depth = depth

    def access_row(self, row: int) -> str:
        """Record an access; returns 'hit', 'miss' or 'conflict'."""
        if row in self.recent_rows:
            self.recent_rows.remove(row)
            self.recent_rows.append(row)
            return "hit"
        outcome = "conflict" if len(self.recent_rows) >= self.depth \
            else "miss"
        self.recent_rows.append(row)
        if len(self.recent_rows) > self.depth:
            self.recent_rows.pop(0)
        return outcome


class BankedMemory:
    """Multi-bank, open-row main memory behind one data channel.

    Timing decomposition of a request arriving at cycle ``t``::

        access  = row_hit_latency                      (row buffer hit)
                | row_miss_latency                     (bank idle/closed)
                | precharge + row_miss_latency         (row conflict)
        start   = max(t, bank.busy_until)
        data    = max(start + access, channel_free)    (transfer begins)
        done    = data + transfer_cycles + rest_of_min_latency

    ``rest_of_min_latency`` keeps the *minimum* end-to-end latency equal
    to the Table 1 model's 300 cycles for a row hit on an idle machine,
    so the two models are calibrated to the same floor and differ only
    in contention/locality behaviour.
    """

    def __init__(self, config: MemoryConfig, line_bytes: int = 64,
                 num_banks: int = 16, row_bytes: int = 8192,
                 row_hit_latency: int = 120, row_miss_latency: int = 200,
                 precharge: int = 60, reorder_depth: int = 16) -> None:
        if num_banks < 1 or num_banks & (num_banks - 1):
            raise ValueError("num_banks must be a power of two")
        self.config = config
        self.line_bytes = line_bytes
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_hit_latency = row_hit_latency
        self.row_miss_latency = row_miss_latency
        self.precharge = precharge
        self.transfer_cycles = max(
            1, (line_bytes + config.bytes_per_cycle - 1)
            // config.bytes_per_cycle)
        #: latency padding so an uncontended row hit costs min_latency
        self._tail = max(0, config.min_latency
                         - row_hit_latency - self.transfer_cycles)
        # reorder_depth: rows per bank still hittable (FR-FCFS proxy)
        self.banks = [Bank(depth=reorder_depth) for _ in range(num_banks)]
        self._channel_free = 0
        self.requests = 0
        self.busy_cycles = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    # ------------------------------------------------------------------

    def _map(self, line_addr: int) -> tuple[int, int]:
        """line address -> (bank index, row index)."""
        line_no = line_addr // self.line_bytes
        bank = line_no & (self.num_banks - 1)
        row = line_addr // (self.row_bytes * self.num_banks)
        return bank, row

    def schedule(self, cycle: int, addr: int = 0) -> int:
        """Schedule a line fetch; returns the data-arrival cycle.

        ``addr`` drives the bank/row mapping; the default (0) degrades
        to a single hot bank, so callers should pass real addresses.
        """
        self.requests += 1
        bank_idx, row = self._map(addr - addr % self.line_bytes)
        bank = self.banks[bank_idx]
        start = max(cycle, bank.busy_until)
        outcome = bank.access_row(row)
        if outcome == "hit":
            access = self.row_hit_latency
            self.row_hits += 1
        elif outcome == "miss":
            access = self.row_miss_latency
            self.row_misses += 1
        else:
            access = self.precharge + self.row_miss_latency
            self.row_conflicts += 1
        data_ready = start + access
        transfer_start = max(data_ready, self._channel_free)
        self._channel_free = transfer_start + self.transfer_cycles
        bank.busy_until = transfer_start + self.transfer_cycles
        self.busy_cycles += self.transfer_cycles
        return transfer_start + self.transfer_cycles + self._tail

    def queue_delay(self, cycle: int) -> int:
        """Cycles a request issued now would wait for the channel."""
        return max(0, self._channel_free - cycle)

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def reset(self) -> None:
        for bank in self.banks:
            bank.recent_rows.clear()
            bank.busy_until = 0
        self._channel_free = 0
        self.requests = 0
        self.busy_cycles = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
