"""Set-associative cache timing model with LRU replacement.

A :class:`Cache` stores :class:`CacheLine` bookkeeping records, not data.
Lines installed by an in-flight fill carry ``ready_at``: a subsequent
access before the fill arrives observes the remaining fill time rather
than a fresh miss (this is how MSHR merges become visible to the core).

The L2 additionally tags every line with *who brought it* (correct path,
wrong path, or prefetch) and whether a correct-path access ever *touched*
it — the raw material of Figure 11 of the paper (cache pollution study).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.config import CacheConfig


class CacheLine:
    """Replacement/bookkeeping state of one resident cache line."""

    __slots__ = ("line_addr", "ready_at", "brought_by", "touched", "dirty")

    def __init__(self, line_addr: int, ready_at: int, brought_by: int = 0) -> None:
        self.line_addr = line_addr
        self.ready_at = ready_at
        self.brought_by = brought_by
        self.touched = False
        self.dirty = False


class Cache:
    """One level of cache: geometry from a :class:`CacheConfig`.

    The cache is purely administrative; the surrounding
    :class:`~repro.memory.hierarchy.MemoryHierarchy` sequences lookups,
    fills and the MSHR file.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 evict_hook: Callable[[CacheLine], None] | None = None) -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.line_bytes = config.line_bytes
        self.assoc = config.assoc
        self._set_mask = self.num_sets - 1
        # Power-of-two line sizes (every shipped geometry) take a
        # mask/shift fast path; ``&``/``>>`` floor exactly like
        # ``%``/``//`` on Python ints, so the two paths are
        # bit-identical for any address.
        if self.line_bytes & (self.line_bytes - 1) == 0:
            self._line_mask: int | None = ~(self.line_bytes - 1)
            self._line_shift = self.line_bytes.bit_length() - 1
        else:
            self._line_mask = None
            self._line_shift = 0
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self._evict_hook = evict_hook
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        if self._line_mask is not None:
            return addr & self._line_mask
        return addr - (addr % self.line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) & self._set_mask

    def lookup(self, addr: int, update_lru: bool = True) -> CacheLine | None:
        """Find the resident line containing ``addr``; None on miss.

        Does not count hit/miss statistics — the hierarchy does, because a
        'hit' on a still-filling line is accounted as part of the original
        miss.
        """
        if self._line_mask is not None:
            laddr = addr & self._line_mask
            cset = self._sets[(laddr >> self._line_shift) & self._set_mask]
        else:
            line_bytes = self.line_bytes
            laddr = addr - (addr % line_bytes)
            cset = self._sets[(laddr // line_bytes) & self._set_mask]
        line = cset.get(laddr)
        if line is not None and update_lru:
            cset.move_to_end(laddr)
        return line

    def install(self, addr: int, ready_at: int, brought_by: int = 0) -> CacheLine:
        """Install the line containing ``addr``, evicting LRU if needed.

        Returns the installed line.  If the line is already resident, its
        LRU position is refreshed and the resident record returned
        unchanged (a fill never downgrades an existing line).
        """
        if self._line_mask is not None:
            laddr = addr & self._line_mask
            cset = self._sets[(laddr >> self._line_shift) & self._set_mask]
        else:
            line_bytes = self.line_bytes
            laddr = addr - (addr % line_bytes)
            cset = self._sets[(laddr // line_bytes) & self._set_mask]
        existing = cset.get(laddr)
        if existing is not None:
            cset.move_to_end(laddr)
            return existing
        if len(cset) >= self.assoc:
            __, victim = cset.popitem(last=False)
            self.evictions += 1
            if self._evict_hook is not None:
                self._evict_hook(victim)
        line = CacheLine(laddr, ready_at, brought_by)
        cset[laddr] = line
        return line

    def install_span(self, base: int, span: int, ready_at: int = 0,
                     brought_by: int = 0, touched: bool = False) -> None:
        """Install every line of ``[base, base + span)``.

        Behaves exactly like calling :meth:`install` once per line (and,
        when ``touched``, marking the resulting line touched); the bulk
        form exists because prewarm installs tens of thousands of lines
        and the per-call overhead dominates its cost.
        """
        line_bytes = self.line_bytes
        set_mask = self._set_mask
        sets = self._sets
        assoc = self.assoc
        evict_hook = self._evict_hook
        for addr in range(base, base + span, line_bytes):
            laddr = addr - (addr % line_bytes)
            cset = sets[(laddr // line_bytes) & set_mask]
            existing = cset.get(laddr)
            if existing is not None:
                cset.move_to_end(laddr)
                if touched:
                    existing.touched = True
                continue
            if len(cset) >= assoc:
                __, victim = cset.popitem(last=False)
                self.evictions += 1
                if evict_hook is not None:
                    evict_hook(victim)
            line = CacheLine(laddr, ready_at, brought_by)
            if touched:
                line.touched = True
            cset[laddr] = line

    def contains(self, addr: int) -> bool:
        """True if the line containing ``addr`` is resident (ignores LRU)."""
        return self.lookup(addr, update_lru=False) is not None

    def resident_lines(self):
        """Iterate over all resident lines (for end-of-run accounting)."""
        for cset in self._sets:
            yield from cset.values()

    def invalidate_all(self) -> None:
        """Drop all lines without firing the eviction hook."""
        for cset in self._sets:
            cset.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Demand miss rate observed so far (0.0 if never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0
