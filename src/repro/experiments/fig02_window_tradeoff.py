"""Figure 2 — IPC for varying instruction window resource levels.

The paper's motivating tradeoff: libquantum (memory-intensive) gains
steeply from a larger (pipelined) window, while gcc (compute-intensive)
*loses* from the pipelined window's ILP penalty; the non-pipelined
"ideal" line shows that the loss is entirely the pipelining, not the
size.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)

PROGRAMS = ("libquantum", "gcc")


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig02",
        title="IPC vs window resource level (bars: fixed, line: ideal)",
        headers=["program", "fix L1", "fix L2", "fix L3",
                 "ideal L1", "ideal L2", "ideal L3"],
    )
    for program in PROGRAMS:
        base = sweep.fixed(program, 1)
        fixed = [sweep.fixed(program, lvl).ipc / base.ipc for lvl in (1, 2, 3)]
        ideal = [sweep.ideal(program, lvl).ipc / base.ipc for lvl in (1, 2, 3)]
        result.rows.append([program] + [f"{v:.2f}" for v in fixed + ideal])
        result.series[program] = {"fixed": fixed, "ideal": ideal}
    result.notes.append(
        "paper: libquantum rises steeply with level (bars ~= line); "
        "gcc's bars fall below 1.0 at levels 2-3 while its ideal line "
        "stays flat ~1.0")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
