"""Extension — resizing on all four cores of a chip.

The paper's Table 4 prices the scheme for all four Sandy Bridge cores
but evaluates one.  Here we run a four-core system (shared 2MB L2 and
one memory channel) over mixed workloads and compare all-base against
all-dynamic: does per-core MLP-aware resizing still pay when the cores
*compete* for the LLC and the channel it exploits?
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import CacheConfig, base_config, dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.multicore import simulate_multicore
from repro.workloads import generate_trace, profile


def chip_config(single_core):
    """Four-core chip configuration: the shared LLC is the Sandy
    Bridge-like 8MB/16-way, not one core's private 2MB."""
    llc = CacheConfig(size_bytes=8 * 1024 * 1024, assoc=16,
                      line_bytes=64, hit_latency=18,
                      mshr_entries=64)
    return replace(single_core, l2=llc)

#: four-core workload mixes: all-memory, all-compute, and two blends
MIXES = {
    "mem4": ("libquantum", "leslie3d", "sphinx3", "mcf"),
    "mix31": ("libquantum", "leslie3d", "sphinx3", "gcc"),
    "mix22": ("libquantum", "omnetpp", "gcc", "sjeng"),
    "comp4": ("gcc", "sjeng", "gobmk", "perlbench"),
}


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    settings = (sweep.settings if sweep is not None
                else settings) or Settings()
    result = ExperimentResult(
        exp_id="ablation_multicore",
        title="Four cores, shared L2 + channel: all-base vs all-dynamic",
        headers=["mix", "throughput base", "throughput dyn", "speedup",
                 "channel util base", "channel util dyn"],
    )
    n_ops = settings.trace_ops
    for mix, programs in MIXES.items():
        traces = [generate_trace(profile(p), n_ops=n_ops, seed=settings.seed)
                  for p in programs]
        base_sys = simulate_multicore([chip_config(base_config())] * 4, traces,
                                      warmup=settings.warmup,
                                      measure=settings.measure)
        traces = [generate_trace(profile(p), n_ops=n_ops, seed=settings.seed)
                  for p in programs]
        dyn_sys = simulate_multicore([chip_config(dynamic_config(3))] * 4, traces,
                                     warmup=settings.warmup,
                                     measure=settings.measure)
        base_ipc = base_sys.throughput()
        dyn_ipc = dyn_sys.throughput()
        speedup = dyn_ipc / base_ipc if base_ipc else 0.0
        result.rows.append([
            mix, f"{base_ipc:.2f}", f"{dyn_ipc:.2f}", f"{speedup:.2f}",
            f"{base_sys.channel_utilisation():.0%}",
            f"{dyn_sys.channel_utilisation():.0%}"])
        result.series[mix] = speedup
    result.notes.append(
        "chip configuration: 8MB/16-way shared LLC (Sandy-Bridge-like), "
        "one shared channel.  Expected: chip-level speedup on memory-"
        "heavy mixes — the channel-utilisation column shows the dynamic "
        "cores converting bandwidth the base cores leave idle — and "
        "little change on the all-compute mix")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
