"""Ablation — sensitivity to the level-transition penalty (paper §4).

The paper assumes 10 cycles per level transition and reports that even
30 cycles costs only ~1.3% performance.  This sweep reproduces that
claim on the memory-intensive programs (which transition the most).
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

PENALTIES = (0, 10, 30)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_penalty",
        title="Dynamic resizing IPC vs level-transition penalty "
              "(normalised by the 10-cycle default)",
        headers=["program"] + [f"{p} cycles" for p in PENALTIES],
    )
    programs = sweep.settings.memory_programs()
    ratios: dict[int, list[float]] = {p: [] for p in PENALTIES}
    for program in programs:
        default = sweep.run(program, dynamic_config(3))
        row = [program]
        for penalty in PENALTIES:
            config = replace(dynamic_config(3), transition_penalty=penalty)
            res = sweep.run(program, config)
            ratio = res.ipc / default.ipc
            ratios[penalty].append(ratio)
            row.append(f"{ratio:.3f}")
        result.rows.append(row)
    gm_row = ["GM mem"]
    for penalty in PENALTIES:
        gm = geometric_mean(ratios[penalty])
        gm_row.append(f"{gm:.3f}")
        result.series[f"gm_penalty_{penalty}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "paper: only ~1.3% slowdown even at a 30-cycle penalty")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
