"""Ablation — shrink-timer duration.

The paper shrinks one level after one *memory latency* without an L2
miss (Figure 5, line 9).  This sweep varies that timer to justify the
choice: a much shorter timer shrinks mid-cluster (losing MLP), a much
longer one lingers at high levels into compute phases (losing ILP).
"""

from __future__ import annotations

from repro.config import dynamic_config
from repro.core.resizing import MLPAwarePolicy
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

#: shrink timer as a multiple of the memory latency
MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    config = dynamic_config(3)
    mem_latency = config.memory.min_latency
    result = ExperimentResult(
        exp_id="ablation_shrink",
        title="Dynamic resizing IPC vs shrink-timer duration "
              "(normalised by base; timer in memory latencies)",
        headers=["program"] + [f"x{m:g}" for m in MULTIPLIERS],
    )
    ratios: dict[float, list[float]] = {m: [] for m in MULTIPLIERS}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        row = [program]
        for mult in MULTIPLIERS:
            policy = MLPAwarePolicy(
                max_level=config.max_level, memory_latency=mem_latency,
                shrink_latency=max(1, int(mem_latency * mult)))
            res = sweep.run(program, config, key_extra=("shrink", mult),
                            policy=policy)
            ratio = res.ipc / base_ipc
            ratios[mult].append(ratio)
            row.append(f"{ratio:.2f}")
        result.rows.append(row)
    gm_row = ["GM all"]
    for mult in MULTIPLIERS:
        gm = geometric_mean(ratios[mult])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_x{mult:g}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "the paper's choice (x1 = one memory latency) should be at or "
        "near the top of the GM row")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
