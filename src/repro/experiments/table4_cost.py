"""Table 4 — additional cost vs speedup.

Area of the level-3 window provisioning over the base (paper: 1.6mm² at
32nm = 6% of the 25mm² base core, 8% of a Sandy Bridge core, 3% of the
chip with all four cores converted), the measured GM speedup of dynamic
resizing, the ~3% speedup Pollack's law would predict for that area, and
the +0.6% an equal-area L2 enlargement actually buys (Figure 10).
"""

from __future__ import annotations

from repro.energy import AreaModel
from repro.config import dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.experiments import fig10_enlarged_l2


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    area = AreaModel(dynamic_config(3)).report()
    speedup = sweep.gm_speedups(sweep.settings.programs(), sweep.dynamic)
    fig10 = fig10_enlarged_l2.run(sweep=sweep)
    result = ExperimentResult(
        exp_id="table4",
        title="Additional cost vs speedup",
        headers=["quantity", "value", "paper"],
    )
    paper = {"additional area": "1.6 mm^2", "vs. base core": "6%",
             "vs. SB core": "8%", "vs. SB chip": "3%",
             "speedup expected by Pollack's law": "3%"}
    for name, value in area.rows():
        result.rows.append([name, value, paper.get(name, "")])
    result.rows.append(["achieved speedup (GM all)",
                        f"{speedup - 1:.0%}", "21%"])
    result.rows.append(["augmented L2 speedup (GM all)",
                        f"{fig10.series['gm_l2'] - 1:.1%}", "1%"])
    result.series["extra_mm2"] = area.extra_mm2
    result.series["vs_base_core"] = area.vs_base_core
    result.series["vs_sb_chip"] = area.vs_sb_chip
    result.series["pollack"] = area.pollack_expected_speedup
    result.series["speedup"] = speedup
    result.series["l2_speedup"] = fig10.series["gm_l2"]
    result.notes.append(
        "the achieved speedup dwarfs both the Pollack's-law expectation "
        "and an equal-silicon L2 enlargement")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
