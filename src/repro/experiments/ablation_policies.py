"""Ablation — resizing policy zoo (related-work comparison, paper §6.2).

Pits the paper's MLP-aware policy against simplified versions of the
prior-art policies it argues against: occupancy-driven resizing
(Ponomarev et al.) and ILP-contribution probing (Folegnani & González).
The paper's argument: occupancy-driven resizing enlarges whenever the IQ
fills — which happens even without exploitable MLP — and contribution
probing reacts too slowly to miss clusters.
"""

from __future__ import annotations

from repro.config import dynamic_config
from repro.core.policies import make_policy
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

POLICIES = ("mlp", "occupancy", "contribution")


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    config = dynamic_config(3)
    mem_latency = config.memory.min_latency
    result = ExperimentResult(
        exp_id="ablation_policies",
        title="Resizing policy comparison (IPC normalised by base)",
        headers=["program"] + list(POLICIES),
    )
    ratios: dict[str, list[float]] = {p: [] for p in POLICIES}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        row = [program]
        for name in POLICIES:
            policy = make_policy(name, config.max_level, mem_latency)
            res = sweep.run(program, config, key_extra=("policy", name),
                            policy=policy)
            ratio = res.ipc / base_ipc
            ratios[name].append(ratio)
            row.append(f"{ratio:.2f}")
        result.rows.append(row)
    gm_row = ["GM all"]
    for name in POLICIES:
        gm = geometric_mean(ratios[name])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_{name}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "expected: the MLP-aware policy wins overall; occupancy-driven "
        "resizing pays the pipelined-IQ ILP penalty in compute programs "
        "whose IQ fills without exploitable MLP")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
