"""Experiment harnesses — one module per table/figure of the paper.

Every module exposes ``run(settings) -> ExperimentResult`` and can also be
executed directly (``python -m repro.experiments.fig07_performance``).
``python -m repro.experiments`` runs the full evaluation.

The shared machinery (simulation caching across models, settings, text
rendering) lives in :mod:`repro.experiments.runner`.
"""

from repro.experiments.runner import (
    Settings,
    ExperimentResult,
    Sweep,
    render_table,
)

#: experiment id -> module name, in paper order
EXPERIMENTS = {
    "fig02": "repro.experiments.fig02_window_tradeoff",
    "fig04": "repro.experiments.fig04_miss_intervals",
    "table3": "repro.experiments.table3_load_latency",
    "fig07": "repro.experiments.fig07_performance",
    "fig08": "repro.experiments.fig08_level_residency",
    "fig09": "repro.experiments.fig09_energy",
    "fig10": "repro.experiments.fig10_enlarged_l2",
    "fig11": "repro.experiments.fig11_cache_pollution",
    "table4": "repro.experiments.table4_cost",
    "table5": "repro.experiments.table5_mispred_distance",
    "fig12": "repro.experiments.fig12_runahead",
    "ablation_penalty": "repro.experiments.ablation_transition_penalty",
    "ablation_policies": "repro.experiments.ablation_policies",
    "ablation_learned": "repro.experiments.ablation_learned",
    "ablation_shrink": "repro.experiments.ablation_shrink_timer",
    "ablation_maxlevel": "repro.experiments.ablation_max_level",
    "ablation_level4": "repro.experiments.ablation_level4",
    "ablation_rcst": "repro.experiments.ablation_rcst",
    "ablation_writeback": "repro.experiments.ablation_writeback",
    "ablation_prefetcher": "repro.experiments.ablation_prefetcher",
    "ablation_dram": "repro.experiments.ablation_dram",
    "ablation_multicore": "repro.experiments.ablation_multicore",
    "ablation_seeds": "repro.experiments.ablation_seeds",
    "fig_smt": "repro.experiments.fig_smt_partition",
}

__all__ = ["Settings", "ExperimentResult", "Sweep", "render_table",
           "EXPERIMENTS"]
