"""Figure 7 — IPC normalised by the base processor.

For each program: the fixed-size model at levels 1-3, the dynamic
resizing model, and the best of the ideal (non-pipelined) model.  The
paper's headline: dynamic resizing matches the best fixed level for
every program — +48% GM over base on the memory-intensive programs,
+4% on the compute-intensive ones, +21% over all of SPEC2006 — and on
omnetpp it *beats* every fixed level because the program mixes compute
and memory phases.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

PAPER_GM = {"mem": 1.48, "comp": 1.04, "all": 1.21}


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig07",
        title="IPC normalised by base (Fix L1-L3, Res = dynamic, "
              "Ideal = best non-pipelined)",
        headers=["program", "Fix L1", "Fix L2", "Fix L3", "Res",
                 "Ideal best"],
    )
    per_program: dict[str, dict[str, float]] = {}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        fixed = [sweep.fixed(program, lvl).ipc / base_ipc for lvl in (1, 2, 3)]
        res = sweep.dynamic(program).ipc / base_ipc
        ideal = max(sweep.ideal(program, lvl).ipc / base_ipc
                    for lvl in (1, 2, 3))
        per_program[program] = {
            "fixed": fixed, "res": res, "ideal_best": ideal,
            "fixed_best": max(fixed),
        }
        result.rows.append(
            [program] + [f"{v:.2f}" for v in fixed]
            + [f"{res:.2f}", f"{ideal:.2f}"])

    def gm(programs, key):
        return geometric_mean(per_program[p][key] for p in programs)

    groups = (("GM mem", sweep.settings.memory_programs()),
              ("GM comp", sweep.settings.compute_programs()),
              ("GM all", sweep.settings.programs()))
    for label, programs in groups:
        if not programs:
            continue
        fixed_gms = [geometric_mean(per_program[p]["fixed"][i]
                                    for p in programs) for i in range(3)]
        res_gm = gm(programs, "res")
        ideal_gm = gm(programs, "ideal_best")
        result.rows.append(
            [label] + [f"{v:.2f}" for v in fixed_gms]
            + [f"{res_gm:.2f}", f"{ideal_gm:.2f}"])
        short = label.split()[1]
        result.series[f"gm_{short}"] = res_gm

    result.series["per_program"] = per_program
    result.notes.append(
        "paper GM speedups for the Res model: "
        f"mem {PAPER_GM['mem']:.2f}, comp {PAPER_GM['comp']:.2f}, "
        f"all {PAPER_GM['all']:.2f}")
    result.notes.append(
        "paper: Res ~= best fixed level for every program; on omnetpp "
        "Res beats the best fixed level by ~5% (well-mixed phases)")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
