"""Extension — SMT window partitioning: MLP-aware vs static vs shared.

The paper resizes one thread's window between shallow/fast and
deep/slow configurations.  On an SMT core the same signal can steer a
*partition*: give the thread inside a miss cluster the deep share of
the ROB/IQ/LSQ (it wants outstanding misses, not cycle time) and let
ILP-phase threads keep shallow fast shares.  This figure co-runs mixed
memory/compute pairs under the three partition policies of
:mod:`repro.core.partition` and reports throughput (aggregate IPC over
the shared clock) and fairness (harmonic mean of each thread's IPC
relative to running alone on the same core) for each:

* ``mlp``     — quotas track the per-thread MLP detectors, MLP-aware
  fetch (miss-cluster threads deprioritised);
* ``equal``   — static equal split, ICOUNT fetch (the classic managed
  baseline);
* ``shared``  — no partition at all, ICOUNT fetch (unmanaged).
"""

from __future__ import annotations

from repro.config import fixed_config, smt_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.pipeline.core import simulate
from repro.pipeline.smt import simulate_smt
from repro.workloads import generate_trace, profile

#: two-thread pairings: memory-bound + compute-bound in both orders,
#: plus a memory pair — the mixed pairings are where MLP-aware
#: partitioning should beat a static equal split.
MIXES = {
    "lib+sjeng": ("libquantum", "sjeng"),
    "milc+gcc": ("milc", "gcc"),
    "lib+gcc": ("libquantum", "gcc"),
    "milc+sjeng": ("milc", "sjeng"),
}

#: partition policy -> fetch policy.  The non-mlp rows use ICOUNT so
#: the comparison isolates *partitioning*; the mlp row additionally
#: uses the MLP-aware selector (they are one mechanism in the design).
POLICIES = {"mlp": "mlp", "equal": "icount", "shared": "icount"}

#: trace-length headroom over the per-thread commit target: a fast
#: thread cannot pause while its partner reaches the target, so it
#: runs far past its own and must not drain mid-measurement.
HEADROOM = 6


def _fairness(run, alone_ipc) -> float:
    """Harmonic mean of per-thread normalised progress (IPC in the mix
    over IPC alone).  1.0 = every thread as fast as alone; dominated by
    the most-starved thread, which is the point of a fairness metric."""
    inverse = 0.0
    for res, alone in zip(run.threads, alone_ipc):
        if res.ipc <= 0 or alone <= 0:
            return 0.0
        inverse += alone / res.ipc
    return len(run.threads) / inverse


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    settings = (sweep.settings if sweep is not None
                else settings) or Settings()
    result = ExperimentResult(
        exp_id="fig_smt",
        title="SMT partitioning: throughput and fairness per policy",
        headers=["mix", "thr mlp", "thr equal", "thr shared",
                 "fair mlp", "fair equal", "fair shared", "mlp/equal"],
    )
    n_ops = (settings.warmup + settings.measure) * HEADROOM
    wins = []
    for mix, programs in MIXES.items():
        traces = {p: generate_trace(profile(p), n_ops=n_ops,
                                    seed=settings.seed)
                  for p in programs}
        alone_ipc = [
            simulate(fixed_config(3), traces[p], warmup=settings.warmup,
                     measure=settings.measure).ipc
            for p in programs]
        throughput = {}
        fairness = {}
        for partition, fetch in POLICIES.items():
            config = smt_config(threads=len(programs), partition=partition,
                                fetch=fetch, level=3)
            smt_run = simulate_smt(config, [traces[p] for p in programs],
                                   warmup=settings.warmup,
                                   measure=settings.measure)
            throughput[partition] = smt_run.throughput()
            fairness[partition] = _fairness(smt_run, alone_ipc)
        ratio = (throughput["mlp"] / throughput["equal"]
                 if throughput["equal"] else 0.0)
        if ratio > 1.0:
            wins.append(mix)
        result.rows.append([
            mix,
            f"{throughput['mlp']:.3f}", f"{throughput['equal']:.3f}",
            f"{throughput['shared']:.3f}",
            f"{fairness['mlp']:.2f}", f"{fairness['equal']:.2f}",
            f"{fairness['shared']:.2f}",
            f"{ratio:.2f}"])
        result.series[mix] = ratio
    result.notes.append(
        "throughput: committed uops per shared-clock cycle; fairness: "
        "harmonic mean of per-thread IPC relative to running alone at "
        "the provisioned level.  Expected: mlp/equal > 1 on mixed "
        "memory/compute pairings — the MLP thread gets the window depth "
        "a static split denies it while the ILP thread keeps a shallow "
        "fast share")
    if wins:
        result.notes.append(
            "MLP-aware partitioning beats the static equal split on: "
            + ", ".join(wins))
    else:
        result.notes.append(
            "WARNING: MLP-aware partitioning did not beat the static "
            "equal split on any mix at these sample sizes")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
