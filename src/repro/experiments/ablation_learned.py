"""Ablation — learned controllers vs the full comparator table.

Evaluates the seeded bandit family (:mod:`repro.core.learned`) against
every hand-tuned comparator — the three fixed levels, the paper's DYN
(``mlp``), and the occupancy/contribution prior-art policies — over two
program sets:

* the paper's 28-program Table-3 set, where DYN is the answer key: a
  learned controller earns its keep by approaching DYN *without* being
  told the control law; and
* the adversarial set (:mod:`repro.workloads.adversarial`), constructed
  so that no fixed level and no hand-tuned trigger is right everywhere:
  ``adv_missburst`` makes DYN's own enlarge-on-miss reflex the wrong
  answer, which only a controller that *measures* outcomes can avoid.

All columns are IPC normalised by the ``static:1`` run on the same
dynamic-model configuration (the paper's FIXED smallest window), so a
cell reads directly as "speedup over never enlarging".

Acceptance framing: the bandit should beat the best single fixed level
(geomean) on the adversarial set — no static choice is safe there — and
track DYN on the paper set, where the finite run grants the bandit only
a few dozen scoring windows to pay for its exploration, so a gap of a
few percent is the cost of learning online rather than noise.
"""

from __future__ import annotations

from repro.config import dynamic_config
from repro.core.policies import make_policy
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean
from repro.workloads import ADVERSARIAL_PROGRAMS

BASELINE = "static:1"
POLICIES = ("static:2", "static:3", "mlp", "occupancy", "contribution",
            "bandit:ucb", "bandit:egreedy")
FIXED = ("static:1", "static:2", "static:3")


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    config = dynamic_config(3)
    mem_latency = config.memory.min_latency
    result = ExperimentResult(
        exp_id="ablation_learned",
        title="Learned bandit controllers vs the comparator table "
              "(IPC / static:1)",
        headers=["program", "static:1 ipc"] + list(POLICIES),
    )

    def policy_for(name: str):
        return make_policy(name, config.max_level, mem_latency)

    def run_block(programs) -> dict[str, list[float]]:
        ratios: dict[str, list[float]] = {p: [] for p in POLICIES}
        for program in programs:
            base = sweep.run(program, config,
                             key_extra=("policy", BASELINE),
                             policy=policy_for(BASELINE))
            row = [program, f"{base.ipc:.3f}"]
            for name in POLICIES:
                res = sweep.run(program, config, key_extra=("policy", name),
                                policy=policy_for(name))
                ratio = res.ipc / base.ipc
                ratios[name].append(ratio)
                row.append(f"{ratio:.2f}")
            result.rows.append(row)
        return ratios

    def summarise(prefix: str, label: str,
                  ratios: dict[str, list[float]]) -> None:
        gm_row = [f"GM {label}", ""]
        gms = {}
        for name in POLICIES:
            gm = geometric_mean(ratios[name])
            gms[name] = gm
            gm_row.append(f"{gm:.2f}")
            result.series[f"{prefix}gm_{name}"] = gm
        result.rows.append(gm_row)
        # static:1 is the normalisation baseline, so its GM is 1.0 by
        # definition; best-fixed compares the three static choices
        best_fixed = max(1.0, gms["static:2"], gms["static:3"])
        result.series[f"{prefix}gm_best_fixed"] = best_fixed

    paper_ratios = run_block(sweep.settings.programs())
    summarise("", "paper set", paper_ratios)
    adv_ratios = run_block(ADVERSARIAL_PROGRAMS)
    summarise("adv_", "adversarial", adv_ratios)

    ucb = result.series["adv_gm_bandit:ucb"]
    best_fixed = result.series["adv_gm_best_fixed"]
    dyn_gap = (result.series["gm_bandit:ucb"]
               / max(result.series["gm_mlp"], 1e-12))
    result.series["adv_bandit_vs_best_fixed"] = ucb / max(best_fixed, 1e-12)
    result.series["paper_bandit_vs_dyn"] = dyn_gap
    result.notes.append(
        f"adversarial set: bandit:ucb GM {ucb:.3f} vs best fixed "
        f"{best_fixed:.3f} ({'>=' if ucb >= best_fixed else '<'}); "
        "no hand-tuned policy wins all three traces by construction")
    result.notes.append(
        f"paper set: bandit:ucb at {dyn_gap:.1%} of DYN's geomean — the "
        "residual is online exploration cost (a few dozen scoring "
        "windows per run at this simulation scale)")
    result.notes.append(
        "expected: mlp (DYN) loses to static:1 on adv_missburst (its "
        "enlarge trigger fires on store misses no window can hide); "
        "every fixed level loses somewhere on adv_phaseflip")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
