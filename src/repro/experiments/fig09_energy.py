"""Figure 9 — energy efficiency (1/EDP) normalised by the base.

The dynamic resizing model pays extra window power but earns large
speedups on memory-intensive programs (paper: +36% GM 1/EDP there,
libquantum +423%), roughly breaks even on compute-intensive programs
(paper: -8%), and wins overall (+8%).
"""

from __future__ import annotations

from repro.energy import EnergyModel
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

PAPER_GM = {"mem": 1.36, "comp": 0.92, "all": 1.08}


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig09",
        title="1/EDP of dynamic resizing, normalised by base",
        headers=["program", "1/EDP ratio"],
    )
    ratios: dict[str, float] = {}
    for program in sweep.settings.programs():
        base = sweep.base(program)
        dyn = sweep.dynamic(program)
        ratio = EnergyModel.inverse_edp_ratio(dyn, base)
        ratios[program] = ratio
        result.rows.append([program, f"{ratio:.2f}"])
    for label, programs in (("GM mem", sweep.settings.memory_programs()),
                            ("GM comp", sweep.settings.compute_programs()),
                            ("GM all", sweep.settings.programs())):
        if not programs:
            continue
        gm = geometric_mean(ratios[p] for p in programs)
        result.rows.append([label, f"{gm:.2f}"])
        result.series[f"gm_{label.split()[1]}"] = gm
    result.series["per_program"] = ratios
    result.notes.append(
        f"paper GM 1/EDP ratios: mem {PAPER_GM['mem']:.2f}, "
        f"comp {PAPER_GM['comp']:.2f}, all {PAPER_GM['all']:.2f}")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
