"""Ablation — maximum window level.

How much of the benefit comes from each enlargement step: dynamic
resizing capped at level 1 (= base), 2, and 3.  The paper provisions
level 3 (4x window) and shows level-by-level gains in Figure 7's fixed
models; this sweep shows them under the adaptive policy.
"""

from __future__ import annotations

from repro.config import dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

MAX_LEVELS = (1, 2, 3)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_maxlevel",
        title="Dynamic resizing IPC vs maximum level "
              "(normalised by base)",
        headers=["program"] + [f"max L{m}" for m in MAX_LEVELS],
    )
    ratios: dict[int, list[float]] = {m: [] for m in MAX_LEVELS}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        row = [program]
        for max_level in MAX_LEVELS:
            res = sweep.run(program, dynamic_config(max_level))
            ratio = res.ipc / base_ipc
            ratios[max_level].append(ratio)
            row.append(f"{ratio:.2f}")
        result.rows.append(row)
    gm_row = ["GM all"]
    for max_level in MAX_LEVELS:
        gm = geometric_mean(ratios[max_level])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_max{max_level}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "max L1 is the base by construction; each additional level "
        "should add memory-side speedup without hurting compute programs")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
