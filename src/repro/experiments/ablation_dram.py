"""Ablation — flat channel vs bank/row-aware DRAM.

The paper models main memory as a flat 300-cycle minimum latency behind
an 8 B/cycle channel (Table 1).  This sweep swaps in the bank/row-buffer
model (`memory/dram_banked.py`) — calibrated to the same uncontended
row-hit latency — and re-measures the resizing speedup.  Expected:
streaming programs get *cheaper* overlapped misses (row hits), scattered
programs pay bank conflicts, and the headline conclusion stands.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import base_config, dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def _banked(config):
    return replace(config, memory=replace(config.memory,
                                          organisation="banked"))


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_dram",
        title="Resizing speedup under flat vs bank/row-aware DRAM",
        headers=["program", "speedup (flat)", "speedup (banked)",
                 "row-hit rate"],
    )
    flat, banked = [], []
    for program in sweep.settings.memory_programs():
        base = sweep.base(program)
        dyn = sweep.dynamic(program)
        base_b = sweep.run(program, _banked(base_config()))
        dyn_b = sweep.run(program, _banked(dynamic_config(3)))
        r_flat = dyn.ipc / base.ipc
        r_banked = dyn_b.ipc / base_b.ipc
        flat.append(r_flat)
        banked.append(r_banked)
        hits = dyn_b.memory_stats.get("row_hit_rate", 0.0)
        result.rows.append([program, f"{r_flat:.2f}", f"{r_banked:.2f}",
                            f"{hits:.0%}"])
    gm_flat, gm_banked = geometric_mean(flat), geometric_mean(banked)
    result.rows.append(["GM mem", f"{gm_flat:.2f}", f"{gm_banked:.2f}", ""])
    result.series["gm_flat"] = gm_flat
    result.series["gm_banked"] = gm_banked
    result.notes.append(
        "finding: row-missing scattered/multi-stream traffic sustains "
        "~half the flat model's bandwidth (realistic for DDR-class "
        "parts), which halves the bandwidth-hungry programs' speedup — "
        "the window still pays everywhere, but the *magnitude* of the "
        "memory-intensive GM is sensitive to the DRAM model")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
