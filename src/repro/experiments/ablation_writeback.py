"""Ablation — dirty-writeback bandwidth.

The default memory model charges the channel only for line *fetches*
(Table 1 specifies the fetch path).  This sweep enables dirty-line
writebacks on L2 eviction — each occupies the channel for one transfer —
and measures how much the headline resizing speedup depends on ignoring
them.  Expected: write-heavy streams (lbm) feel it; the GM conclusion
does not move.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import base_config, dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def _with_writebacks(config):
    return replace(config, memory=replace(config.memory,
                                          model_writebacks=True))


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_writeback",
        title="Resizing speedup with and without writeback bandwidth",
        headers=["program", "speedup (no WB)", "speedup (with WB)"],
    )
    no_wb, with_wb = [], []
    for program in sweep.settings.memory_programs():
        base = sweep.base(program)
        dyn = sweep.dynamic(program)
        base_wb = sweep.run(program, _with_writebacks(base_config()))
        dyn_wb = sweep.run(program, _with_writebacks(dynamic_config(3)))
        r0 = dyn.ipc / base.ipc
        r1 = dyn_wb.ipc / base_wb.ipc
        no_wb.append(r0)
        with_wb.append(r1)
        result.rows.append([program, f"{r0:.2f}", f"{r1:.2f}"])
    gm0, gm1 = geometric_mean(no_wb), geometric_mean(with_wb)
    result.rows.append(["GM mem", f"{gm0:.2f}", f"{gm1:.2f}"])
    result.series["gm_no_wb"] = gm0
    result.series["gm_with_wb"] = gm1
    result.notes.append(
        "the headline conclusion (large adaptive window pays on "
        "memory-intensive programs) should survive writeback traffic")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
