"""Ablation — does the runahead cause status table earn its keep?

Section 5.7 of the paper: useless runahead episodes (episodes that find
no further L2 misses) waste a full pipeline flush; the RCST (Mutlu et
al., MICRO'05) predicts and suppresses them, but "the prediction is
difficult and useless runahead cannot always be eliminated".  This sweep
runs the runahead comparator with and without the RCST.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import runahead_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    with_rcst = runahead_config()
    without = replace(with_rcst,
                      runahead=replace(with_rcst.runahead, use_rcst=False))
    result = ExperimentResult(
        exp_id="ablation_rcst",
        title="Runahead with/without the RCST (IPC normalised by base)",
        headers=["program", "with RCST", "without RCST"],
    )
    ratios: dict[str, list[float]] = {"with": [], "without": []}
    for program in sweep.settings.memory_programs():
        base_ipc = sweep.base(program).ipc
        r_with = sweep.run(program, with_rcst).ipc / base_ipc
        r_without = sweep.run(program, without).ipc / base_ipc
        ratios["with"].append(r_with)
        ratios["without"].append(r_without)
        result.rows.append([program, f"{r_with:.2f}", f"{r_without:.2f}"])
    gm_with = geometric_mean(ratios["with"])
    gm_without = geometric_mean(ratios["without"])
    result.rows.append(["GM mem", f"{gm_with:.2f}", f"{gm_without:.2f}"])
    result.series["gm_with"] = gm_with
    result.series["gm_without"] = gm_without
    result.notes.append(
        "the RCST trades false negatives (suppressing episodes that "
        "would have been useful) against the flush cost of useless ones; "
        "the paper itself concedes 'the prediction is difficult and "
        "useless runahead cannot always be eliminated very well, "
        "depending on the programs' — per-program swings in both "
        "directions are the expected picture")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
