"""Figure 4 — histogram of L2 miss occurrences over miss intervals.

soplex on the base processor, 8-cycle bins.  The paper's observations:
the vast majority of misses fall within a short interval of the previous
miss (clustering), and a second peak sits near the memory latency (the
window fills after a miss, the pipeline stalls for one memory latency,
then the next cluster begins).  This clustering is the entire premise of
the LLC-miss-driven resizing prediction.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import IntervalHistogram

PROGRAM = "soplex"


def build_histogram(sweep: Sweep, program: str = PROGRAM,
                    bin_width: int = 8, max_value: int = 512) -> IntervalHistogram:
    result = sweep.base(program)
    hist = IntervalHistogram(bin_width=bin_width, max_value=max_value)
    hist.add_all(result.stats.miss_intervals())
    return hist


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    hist = build_histogram(sweep)
    result = ExperimentResult(
        exp_id="fig04",
        title=f"L2 miss interval histogram, {PROGRAM} (8-cycle bins)",
        headers=["interval (cycles)", "misses"],
    )
    for label, count in hist.rows():
        if count:
            result.rows.append([label, str(count)])
    frac_short = hist.fraction_below(64)
    mem_latency = 300
    late_peak = hist.peak_bin(skip_first=(mem_latency // 2) // hist.bin_width)
    result.series["fraction_below_64"] = frac_short
    result.series["late_peak_bin_low"] = late_peak * hist.bin_width
    result.series["samples"] = hist.count
    result.notes.append(
        f"{frac_short:.0%} of misses within 64 cycles of the previous miss "
        "(paper: 'the vast majority ... within a short interval')")
    result.notes.append(
        f"secondary peak near {late_peak * hist.bin_width} cycles "
        "(paper: another peak at ~300 cycles = the memory latency)")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
