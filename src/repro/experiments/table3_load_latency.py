"""Table 3 — benchmark programs and their average load latency.

Measured on the base processor.  The paper categorises a program as
memory-intensive when its average load latency exceeds 10 cycles; the
synthetic profiles are tuned to land on the paper's side of that
threshold for every program (the recorded paper values are shown for
comparison).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.workloads import profile

THRESHOLD = 10.0


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="table3",
        title="Average load latency and category (base processor)",
        headers=["program", "type", "paper (cyc)", "measured (cyc)",
                 "category", "agrees"],
    )
    agreements = 0
    programs = sweep.settings.programs()
    for program in programs:
        prof = profile(program)
        res = sweep.base(program)
        measured = res.avg_load_latency
        category = "memory" if measured > THRESHOLD else "compute"
        expected = "memory" if prof.memory_intensive else "compute"
        agrees = category == expected
        agreements += agrees
        result.rows.append([
            program, prof.category, f"{prof.paper_load_latency:.0f}",
            f"{measured:.1f}", category, "yes" if agrees else "NO"])
        result.series[program] = {
            "paper": prof.paper_load_latency,
            "measured": measured,
            "agrees": agrees,
        }
    result.series["agreement"] = agreements / len(programs)
    result.notes.append(
        f"category agreement with Table 3: {agreements}/{len(programs)}")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
