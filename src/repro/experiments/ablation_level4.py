"""Ablation (extension) — would a fourth window level pay?

The paper provisions 4x window resources (level 3).  This extension asks
the natural follow-up: a hypothetical level 4 with 6x resources, whose
issue queue would need a *third* pipeline stage (2-cycle wakeup gap) per
the delay scaling of the paper's circuit study.  Expected: diminishing
MLP returns against a growing ILP/recovery cost — evidence for the
paper's choice to stop at level 3.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import EXTENDED_LEVEL_TABLE, ModelKind, ProcessorConfig
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def extended_dynamic_config(max_level: int) -> ProcessorConfig:
    return ProcessorConfig(model=ModelKind.DYNAMIC, level=max_level,
                           levels=EXTENDED_LEVEL_TABLE)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_level4",
        title="Hypothetical 6x window level (IPC normalised by base)",
        headers=["program", "max L3 (paper)", "max L4 (6x, 3-stage IQ)"],
    )
    ratios = {3: [], 4: []}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        row = [program]
        for max_level in (3, 4):
            config = extended_dynamic_config(max_level)
            res = sweep.run(program, config)
            ratio = res.ipc / base_ipc
            ratios[max_level].append(ratio)
            row.append(f"{ratio:.2f}")
        result.rows.append(row)
    gm_row = ["GM all"]
    for max_level in (3, 4):
        gm = geometric_mean(ratios[max_level])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_max{max_level}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "expected: level 4 adds little over level 3 — the extra MLP is "
        "mostly bandwidth-bound while the deeper IQ pipeline costs ILP, "
        "supporting the paper's choice of a 4x maximum")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
