"""Ablation — seed sensitivity of the headline result.

The synthetic workloads are randomised; a reproduction that only works
for one RNG seed would be a coincidence.  This sweep re-measures the
Figure 7 geometric means across several generator seeds.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

SEEDS = (1, 2, 3)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    settings = (sweep.settings if sweep is not None
                else settings) or Settings()
    result = ExperimentResult(
        exp_id="ablation_seeds",
        title="Fig 7 GM speedups across generator seeds",
        headers=["seed", "GM mem", "GM comp", "GM all"],
    )
    gms_all = []
    for seed in SEEDS:
        seed_sweep = Sweep(replace(settings, seed=seed))
        mem = seed_sweep.gm_speedups(settings.memory_programs(),
                                     seed_sweep.dynamic)
        comp = seed_sweep.gm_speedups(settings.compute_programs(),
                                      seed_sweep.dynamic)
        both = seed_sweep.gm_speedups(settings.programs(),
                                      seed_sweep.dynamic)
        gms_all.append(both)
        result.rows.append([str(seed), f"{mem:.2f}", f"{comp:.2f}",
                            f"{both:.2f}"])
        result.series[f"seed{seed}"] = {"mem": mem, "comp": comp,
                                        "all": both}
    spread = max(gms_all) - min(gms_all)
    result.series["gm_all_spread"] = spread
    result.rows.append(["spread", "", "", f"{spread:.3f}"])
    result.notes.append(
        "the paper-shaped result (GM mem >> 1, GM comp ~ 1, GM all ~ "
        "+20%) must hold for every seed; the spread row quantifies the "
        "run-to-run noise")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
