"""Figure 11 — cache pollution under deep speculation.

Breakdown of L2 lines brought in, by who brought them (correct path,
wrong path, prefetch) and whether a correct-path access ever touched
them, for the base and dynamic resizing models; each normalised by the
total lines the *base* model brought in.  The paper's conclusions: wrong
paths bring few lines, the useless fraction stays small, and the total
barely grows under resizing — speculation-driven pollution is limited.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)

CLASSES = ("corrpath_useful", "corrpath_useless", "wrongpath_useful",
           "wrongpath_useless", "prefetch_useful", "prefetch_useless")


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig11",
        title="L2 lines brought in, by source x usefulness "
              "(normalised by base total)",
        headers=["program", "model"] + [c.replace("_", " ") for c in CLASSES]
        + ["total"],
    )
    for program in sweep.settings.programs():
        base = sweep.base(program)
        dyn = sweep.dynamic(program)
        base_total = max(1, sum(base.line_usage.values()))
        series = {}
        for label, res in (("base", base), ("resize", dyn)):
            fractions = [res.line_usage.get(c, 0) / base_total
                         for c in CLASSES]
            total = sum(fractions)
            result.rows.append(
                [program, label] + [f"{f:.3f}" for f in fractions]
                + [f"{total:.3f}"])
            series[label] = dict(zip(CLASSES, fractions))
            series[f"{label}_total"] = total
        result.series[program] = series
    result.notes.append(
        "paper: wrong-path lines are few; useless lines are a small share; "
        "the resizing model's total is only slightly above the base's")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
