"""Table 5 — committed instructions between adjacent mispredicted branches.

Measured on the base processor.  The paper uses this to argue why wrong
paths bring few cache lines (Figure 11): in the memory-intensive
programs the distance between mispredictions is large compared with the
window size.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)

#: Table 5 of the paper (selected programs)
PAPER = {
    "libquantum": 3_703_704, "omnetpp": 178, "GemsFDTD": 10_064,
    "lbm": 32_830, "leslie3d": 1_608, "milc": 3_448_276, "soplex": 154,
    "sphinx3": 327, "gcc": 5_323, "gobmk": 71, "sjeng": 116,
    "bwaves": 169, "dealII": 1_294, "tonto": 423,
}


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="table5",
        title="Committed instructions between mispredicted branches",
        headers=["program", "measured", "paper"],
    )
    for program in sweep.settings.programs():
        res = sweep.base(program)
        distance = res.stats.average_mispredict_distance()
        paper = PAPER.get(program)
        result.rows.append([
            program, f"{distance:.0f}",
            f"{paper}" if paper is not None else "-"])
        result.series[program] = distance
    result.notes.append(
        "programs with zero sampled mispredictions report the sample "
        "length (the paper's multi-million values arise the same way)")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
