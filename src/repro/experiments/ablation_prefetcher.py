"""Ablation — prefetcher family.

Table 1 uses a stride prefetcher because commercial processors ship a
stream or stride prefetcher.  This sweep runs the memory-intensive
programs with no prefetcher, a next-line prefetcher, Jouppi-style stream
buffers, and the paper's stride table — on the base processor and under
dynamic resizing — to show (a) how much each prefetcher contributes and
(b) that the window's benefit is largely *orthogonal* to prefetching
(it harvests the MLP no prefetcher can predict).
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import base_config, dynamic_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean

KINDS = ("none", "nextline", "stream", "stride")


def _with_prefetcher(config, kind: str):
    return replace(config, prefetcher=replace(config.prefetcher, kind=kind))


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="ablation_prefetcher",
        title="Prefetcher family: base IPC (vs stride base) and resizing "
              "speedup under each",
        headers=["program"] + [f"base/{k}" for k in KINDS]
        + [f"dyn/{k}" for k in KINDS],
    )
    base_ratio = {k: [] for k in KINDS}
    dyn_ratio = {k: [] for k in KINDS}
    for program in sweep.settings.memory_programs():
        ref = sweep.base(program).ipc     # stride prefetcher (Table 1)
        row = [program]
        cells_dyn = []
        for kind in KINDS:
            base_run = sweep.run(program,
                                 _with_prefetcher(base_config(), kind))
            dyn_run = sweep.run(program,
                                _with_prefetcher(dynamic_config(3), kind))
            base_ratio[kind].append(base_run.ipc / ref)
            dyn_ratio[kind].append(dyn_run.ipc / base_run.ipc)
            row.append(f"{base_run.ipc / ref:.2f}")
            cells_dyn.append(f"{dyn_run.ipc / base_run.ipc:.2f}")
        result.rows.append(row + cells_dyn)
    gm_row = ["GM mem"]
    for kind in KINDS:
        gm = geometric_mean(base_ratio[kind])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_base_{kind}"] = gm
    for kind in KINDS:
        gm = geometric_mean(dyn_ratio[kind])
        gm_row.append(f"{gm:.2f}")
        result.series[f"gm_dyn_{kind}"] = gm
    result.rows.append(gm_row)
    result.notes.append(
        "left block: base-processor IPC relative to the Table 1 stride "
        "prefetcher; right block: resizing speedup over the same-"
        "prefetcher base — the window pays under every prefetcher")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
