"""Parallel execution of simulation campaigns.

The campaign planner walks the requested experiment modules in planning
mode (see :mod:`repro.experiments.cache`), collecting every simulation
any of them will request.  The de-duplicated jobs are then fanned out
over a :class:`~concurrent.futures.ProcessPoolExecutor` and the results
hydrate the shared :class:`~repro.experiments.cache.ResultStore`, so the
experiment modules afterwards run unchanged — and nearly instantly.

Determinism: workers re-generate traces from ``(program, trace_ops,
seed)`` with the same seeded generator the serial path uses, and results
travel back via pickle, which round-trips float bits exactly.  A
parallel campaign therefore produces bit-identical results to a serial
one (``tests/test_parallel.py`` locks this in).
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.energy import EnergyModel
from repro.experiments.cache import (
    JobRecorder,
    JobSpec,
    ResultStore,
    recording,
    telemetry_artifact_path,
)
from repro.pipeline import simulate
from repro.stats import SimulationResult
from repro.workloads import trace_for_program


def plan_campaign(exp_ids, settings, experiments=None) -> JobRecorder:
    """Dry-run the experiment modules, recording every simulation needed.

    Planning is best-effort: an experiment that fails on placeholder
    results simply contributes no jobs and will simulate serially
    during the real pass.
    """
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import Sweep
    experiments = experiments if experiments is not None else EXPERIMENTS
    recorder = JobRecorder()
    with recording(recorder):
        for exp_id in exp_ids:
            module = importlib.import_module(experiments[exp_id])
            try:
                module.run(sweep=Sweep(settings))
            except Exception:
                pass
    return recorder


#: Per-worker-process memo of generated traces: several jobs of one
#: campaign share a (program, length, seed) trace, and regenerating it
#: costs more than a simulation's margin.
_TRACE_MEMO: dict[tuple, object] = {}


def _memo_trace(program: str, trace_ops: int, seed: int):
    memo_key = (program, trace_ops, seed)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        trace = trace_for_program(program, n_ops=trace_ops, seed=seed)
        _TRACE_MEMO[memo_key] = trace
    return trace


def _run_smt_job(spec: JobSpec) -> tuple[str, SimulationResult, float]:
    """Execute one SMT simulation: one trace per hardware thread, the
    store entry is the aggregate (whole-core) result.  Telemetry and
    the sanitizer are single-thread observers and are not attached to
    SMT runs (build_spec rejects the combination at admission)."""
    started = time.perf_counter()
    from repro.pipeline.smt import simulate_smt
    programs = spec.smt_programs or tuple(spec.program.split("+"))
    traces = [_memo_trace(prog, spec.trace_ops, spec.seed)
              for prog in programs]
    run = simulate_smt(spec.config, traces, warmup=spec.warmup,
                       measure=spec.measure, engine=spec.engine)
    result = run.aggregate
    EnergyModel().annotate(result, spec.config)
    return spec.key, result, time.perf_counter() - started


def _run_job(spec: JobSpec) -> tuple[str, SimulationResult, float]:
    """Execute one simulation (in a worker process or inline).

    When the spec asks for telemetry, the probe's recording is written
    straight to its JSONL artifact from the worker — the (potentially
    large) time-series never rides the result pickle back to the
    parent.  The result itself is bit-identical either way (sampling is
    digest-neutral), so the store entry carries no trace of whether
    telemetry was on.
    """
    if getattr(spec.config, "smt", None) is not None:
        return _run_smt_job(spec)
    started = time.perf_counter()
    trace = _memo_trace(spec.program, spec.trace_ops, spec.seed)
    probe = None
    if spec.telemetry_period and spec.telemetry_dir:
        from repro.telemetry import TelemetryProbe
        probe = TelemetryProbe(period=spec.telemetry_period)
    result = simulate(spec.config, trace, warmup=spec.warmup,
                      measure=spec.measure, policy=spec.policy,
                      sanitize=spec.sanitize,
                      fast_forward=spec.fast_forward,
                      telemetry=probe, engine=spec.engine)
    EnergyModel().annotate(result, spec.config)
    if probe is not None:
        probe.telemetry.to_jsonl(
            telemetry_artifact_path(spec.telemetry_dir, spec.key))
    return spec.key, result, time.perf_counter() - started


@dataclass
class ExecutionReport:
    """What the fan-out did, for the campaign summary line."""

    planned: int = 0
    already_cached: int = 0
    executed: int = 0
    workers: int = 1
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    per_program: dict[str, int] = field(default_factory=dict)
    #: simulator self-time per program (worker wall-clock seconds) —
    #: the campaign-level profiling counterpart of StageProfiler
    per_program_seconds: dict[str, float] = field(default_factory=dict)
    #: telemetry artifacts written by the fan-out this run
    telemetry_artifacts: int = 0

    def utilisation(self) -> float:
        """Fraction of worker capacity kept busy during the fan-out."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.wall_seconds * self.workers))

    def slowest_programs(self, n: int = 3) -> list[tuple[str, float, int]]:
        """Top ``n`` programs by simulator self-time: (program,
        seconds, jobs), most expensive first."""
        ranked = sorted(self.per_program_seconds.items(),
                        key=lambda kv: kv[1], reverse=True)
        return [(prog, secs, self.per_program.get(prog, 0))
                for prog, secs in ranked[:n]]

    def summary(self) -> str:
        if not self.planned:
            return "no simulations planned"
        parts = [f"{self.planned} planned",
                 f"{self.already_cached} cached",
                 f"{self.executed} simulated"]
        if self.executed:
            parts.append(f"{self.workers} worker"
                         + ("s" if self.workers != 1 else "")
                         + f" at {self.utilisation():.0%} utilisation")
        return ", ".join(parts)


def execute_campaign(recorder: JobRecorder, store: ResultStore,
                     jobs: int | None = None) -> ExecutionReport:
    """Fan the recorded jobs out over worker processes into the store.

    Jobs whose key already resolves in the store are skipped (this is
    what makes a warm-cache re-run free).  With ``jobs=1`` everything
    runs inline — no pool, no pickling — which is also the fallback
    path platforms without ``fork`` can rely on.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1

    def _artifact_missing(spec: JobSpec) -> bool:
        # a cached result whose telemetry artifact is absent still needs
        # a (re-)run to produce the recording; the result it writes back
        # is bit-identical to the cached one
        return (bool(spec.telemetry_period) and spec.telemetry_dir is not None
                and not os.path.exists(
                    telemetry_artifact_path(spec.telemetry_dir, spec.key)))

    # sanitizing jobs always execute — a cache hit would silently skip
    # the very invariant checks the campaign was asked to run
    todo = [spec for spec in recorder.jobs.values()
            if spec.sanitize or not store.contains(spec.key)
            or _artifact_missing(spec)]
    report = ExecutionReport(planned=len(recorder.jobs),
                             already_cached=len(recorder.jobs) - len(todo),
                             executed=len(todo),
                             workers=max(1, min(jobs, len(todo) or 1)))
    if not todo:
        return report
    for spec in todo:
        report.per_program[spec.program] = (
            report.per_program.get(spec.program, 0) + 1)
    wall_start = time.perf_counter()
    def _book(spec: JobSpec, key: str, result: SimulationResult,
              busy: float) -> None:
        store.put(key, result)
        if spec.sanitize:
            store.sanitized_keys.add(key)
        report.busy_seconds += busy
        report.per_program_seconds[spec.program] = (
            report.per_program_seconds.get(spec.program, 0.0) + busy)
        if spec.telemetry_period and spec.telemetry_dir is not None:
            report.telemetry_artifacts += 1

    if report.workers == 1:
        for spec in todo:
            key, result, busy = _run_job(spec)
            _book(spec, key, result, busy)
    else:
        with deliver_sigterm_as_interrupt():
            pool = ProcessPoolExecutor(max_workers=report.workers)
            futures: dict = {}
            booked: set = set()
            try:
                for spec in todo:
                    futures[pool.submit(_run_job, spec)] = spec
                for future in as_completed(futures):
                    key, result, busy = future.result()
                    _book(futures[future], key, result, busy)
                    booked.add(future)
            except BaseException:
                # Ctrl-C, SIGTERM or a worker failure mid-campaign:
                # drop the queued jobs, let the running ones finish,
                # reap the worker processes, book every result that
                # did complete (store writes are atomic, so each entry
                # is whole), then propagate.  A re-run resumes from
                # whatever the interrupted campaign cached.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, spec in futures.items():
                    if future in booked or not future.done() \
                            or future.cancelled():
                        continue
                    try:
                        key, result, busy = future.result()
                    except BaseException:
                        continue
                    _book(spec, key, result, busy)
                raise
            else:
                pool.shutdown(wait=True)
    report.wall_seconds = time.perf_counter() - wall_start
    return report


@contextmanager
def deliver_sigterm_as_interrupt():
    """Translate SIGTERM into KeyboardInterrupt for the enclosed block.

    ``kill <campaign pid>`` then unwinds through the same
    cancel-pending / wait-for-running / reap path as Ctrl-C instead of
    dying mid-write with orphaned pool workers.  Outside the main
    thread (where signal handlers cannot be installed) this is a no-op
    — the embedding application owns signal handling there, as the
    serving layer does with its asyncio handlers.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
