"""Run the full evaluation: every table and figure, sharing one sweep.

Usage::

    python -m repro.experiments [--selected] [--measure N] [--warmup N]
                                [--only fig07,fig12] [--seed N]
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import Settings, Sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selected", action="store_true",
                        help="only the paper's selected programs")
    parser.add_argument("--measure", type=int, default=15_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--csv-dir", type=str, default="",
                        help="also export each result as CSV+JSON here")
    args = parser.parse_args(argv)

    settings = Settings(all_programs=not args.selected, warmup=args.warmup,
                        measure=args.measure, seed=args.seed)
    wanted = [e for e in args.only.split(",") if e] or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    sweep = Sweep(settings)
    start = time.time()
    results = []
    for exp_id in wanted:
        module = importlib.import_module(EXPERIMENTS[exp_id])
        t0 = time.time()
        result = module.run(sweep=sweep)
        results.append(result)
        print(result.as_text())
        print(f"[{exp_id}: {time.time() - t0:.1f}s]\n")
    if args.csv_dir:
        from repro.experiments.export import export_results
        written = export_results(results, args.csv_dir)
        print(f"exported {len(written)} files to {args.csv_dir}")
    print(f"total: {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
