"""Run the full evaluation: every table and figure, sharing one sweep.

Usage::

    python -m repro.experiments [--selected] [--measure N] [--warmup N]
                                [--only fig07,fig12] [--seed N]
                                [--jobs N] [--cache-dir DIR]
                                [--no-cache] [--clear-cache]

The campaign is planned first (a dry pass collects every simulation the
selected experiments will request), the de-duplicated jobs are fanned
out over ``--jobs`` worker processes into a content-addressed result
store, and the experiment modules then run unchanged against the warm
store.  A re-run with an unchanged configuration simulates nothing.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.cache import (
    ResultStore,
    default_cache_dir,
    set_active_store,
)
from repro.experiments.parallel import execute_campaign, plan_campaign
from repro.experiments.runner import Settings, Sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selected", action="store_true",
                        help="only the paper's selected programs")
    parser.add_argument("--measure", type=int, default=15_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--csv-dir", type=str, default="",
                        help="also export each result as CSV+JSON here")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulation fan-out "
                             "(default: all cores; 1 = fully serial)")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="on-disk result store location (default: "
                             "$REPRO_CACHE_DIR or .simcache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="keep results in memory only; nothing is "
                             "read from or written to disk")
    parser.add_argument("--clear-cache", action="store_true",
                        help="wipe the on-disk result store first")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the repro.debug invariant sanitizer "
                             "to every simulation (slower; cached results "
                             "are bypassed so the checks actually run)")
    parser.add_argument("--telemetry", type=int, nargs="?", const=256,
                        default=0, metavar="PERIOD",
                        help="record a per-job telemetry time-series "
                             "(sampled every PERIOD cycles; 256 when the "
                             "flag is given bare) into "
                             "<cache-dir>/telemetry/<key>.jsonl — render "
                             "one with `python -m repro.telemetry report`")
    args = parser.parse_args(argv)

    if args.telemetry and args.no_cache:
        print("--telemetry needs the on-disk store for its artifacts; "
              "it cannot be combined with --no-cache", file=sys.stderr)
        return 2
    if args.telemetry < 0:
        print(f"--telemetry period must be >= 1, got {args.telemetry}",
              file=sys.stderr)
        return 2

    settings = Settings(all_programs=not args.selected, warmup=args.warmup,
                        measure=args.measure, seed=args.seed,
                        sanitize=args.sanitize,
                        telemetry_period=args.telemetry)
    wanted = [e for e in args.only.split(",") if e] or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or default_cache_dir())
    store = ResultStore(cache_dir)
    if args.clear_cache:
        removed = store.clear_disk()
        print(f"cache: cleared {removed} stored results")

    start = time.time()
    set_active_store(store)
    try:
        recorder = plan_campaign(wanted, settings)
        report = execute_campaign(recorder, store, jobs=jobs)
        if report.planned:
            print(f"campaign: {report.summary()}\n")

        sweep = Sweep(settings, store=store)
        results = []
        for exp_id in wanted:
            module = importlib.import_module(EXPERIMENTS[exp_id])
            t0 = time.time()
            hits0, sims0 = sweep.cache_hits, sweep.sim_runs
            result = module.run(sweep=sweep)
            results.append(result)
            print(result.as_text())
            hits = sweep.cache_hits - hits0
            sims = sweep.sim_runs - sims0
            print(f"[{exp_id}: {time.time() - t0:.1f}s, "
                  f"cache {hits} hit / {sims} simulated]\n")
    finally:
        set_active_store(None)
    if args.csv_dir:
        from repro.experiments.export import export_results
        written = export_results(results, args.csv_dir)
        print(f"exported {len(written)} files to {args.csv_dir}")
    summary = [f"total: {time.time() - start:.1f}s",
               f"cache {sweep.cache_hits} hit / {sweep.sim_runs} simulated "
               f"this pass",
               f"store: {store.memory_hits} mem / {store.disk_hits} disk "
               f"hits, {store.misses} misses"]
    if report.executed:
        summary.append(
            f"fan-out: {report.executed} jobs on {report.workers} worker"
            + ("s" if report.workers != 1 else "")
            + f" at {report.utilisation():.0%} utilisation "
            + f"({report.busy_seconds:.1f}s busy / "
            + f"{report.wall_seconds:.1f}s wall)")
    elif report.planned:
        summary.append("fan-out: warm cache, nothing simulated")
    artifacts = report.telemetry_artifacts + sweep.telemetry_artifacts
    if args.telemetry:
        from repro.experiments.cache import telemetry_dir
        summary.append(f"telemetry: {artifacts} artifacts in "
                       f"{telemetry_dir(store)} (period {args.telemetry})")
    print(" | ".join(summary))
    slowest = report.slowest_programs()
    if slowest:
        print("slowest programs: "
              + ", ".join(f"{prog} {secs:.1f}s/{jobs} jobs"
                          for prog, secs, jobs in slowest))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
