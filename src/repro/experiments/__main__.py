"""Run the full evaluation: every table and figure, sharing one sweep.

Usage::

    python -m repro.experiments [--selected] [--measure N] [--warmup N]
                                [--only fig07,fig12] [--seed N]
                                [--jobs N] [--cache-dir DIR]
                                [--no-cache] [--clear-cache]
    python -m repro.experiments cache [--stats] [--prune]
                                [--max-bytes N[K|M|G]] [--max-age SECONDS]

The campaign is planned first (a dry pass collects every simulation the
selected experiments will request), the de-duplicated jobs are fanned
out over ``--jobs`` worker processes into a content-addressed result
store, and the experiment modules then run unchanged against the warm
store.  A re-run with an unchanged configuration simulates nothing.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.cache import (
    ResultStore,
    default_cache_dir,
    set_active_store,
)
from repro.experiments.parallel import execute_campaign, plan_campaign
from repro.experiments.runner import Settings, Sweep


def _parse_size(text: str) -> int:
    """``500K`` / ``64M`` / ``2G`` / plain bytes — case-insensitive."""
    multipliers = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    text = text.strip()
    factor = multipliers.get(text[-1:].upper(), 1)
    digits = text[:-1] if factor != 1 else text
    try:
        value = int(digits)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r} (expected bytes or N[K|M|G])") from None
    if value < 0:
        raise argparse.ArgumentTypeError("size must be >= 0")
    return value * factor


def cache_main(argv=None) -> int:
    """``python -m repro.experiments cache`` — inspect / prune the store.

    A long-lived serving process (``repro.service``) grows ``.simcache``
    without bound; this is the operator's pressure valve.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cache",
        description=cache_main.__doc__)
    parser.add_argument("--stats", action="store_true",
                        help="print entry/byte/artifact counts (default "
                             "when no action is given)")
    parser.add_argument("--prune", action="store_true",
                        help="evict entries, LRU by mtime; telemetry "
                             "artifacts go with their entries")
    parser.add_argument("--max-bytes", type=_parse_size, default=None,
                        metavar="N[K|M|G]",
                        help="with --prune: evict oldest entries until "
                             "the store fits this budget")
    parser.add_argument("--max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="with --prune: evict entries untouched for "
                             "longer than this")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="store location (default: $REPRO_CACHE_DIR "
                             "or .simcache)")
    args = parser.parse_args(argv)
    if args.prune and args.max_bytes is None and args.max_age is None:
        print("cache --prune needs --max-bytes and/or --max-age "
              "(otherwise nothing would be evicted)", file=sys.stderr)
        return 2
    store = ResultStore(args.cache_dir or default_cache_dir())
    if args.prune:
        report = store.prune(max_bytes=args.max_bytes, max_age=args.max_age)
        print(f"cache {store.directory}: {report.summary()}")
        return 0
    from repro.experiments.cache import telemetry_dir
    artifacts = 0
    artifact_bytes = 0
    tdir = telemetry_dir(store)
    if tdir and os.path.isdir(tdir):
        for name in os.listdir(tdir):
            if name.endswith(".jsonl"):
                artifacts += 1
                artifact_bytes += os.path.getsize(os.path.join(tdir, name))
    print(f"cache {store.directory}: {store.disk_entries()} entries, "
          f"{store.disk_bytes() / 1024:.1f} KiB; "
          f"{artifacts} telemetry artifacts, "
          f"{artifact_bytes / 1024:.1f} KiB")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["cache"]:
        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selected", action="store_true",
                        help="only the paper's selected programs")
    parser.add_argument("--measure", type=int, default=15_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--csv-dir", type=str, default="",
                        help="also export each result as CSV+JSON here")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulation fan-out "
                             "(default: all cores; 1 = fully serial)")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="on-disk result store location (default: "
                             "$REPRO_CACHE_DIR or .simcache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="keep results in memory only; nothing is "
                             "read from or written to disk")
    parser.add_argument("--clear-cache", action="store_true",
                        help="wipe the on-disk result store first")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the repro.debug invariant sanitizer "
                             "to every simulation (slower; cached results "
                             "are bypassed so the checks actually run)")
    parser.add_argument("--telemetry", type=int, nargs="?", const=256,
                        default=0, metavar="PERIOD",
                        help="record a per-job telemetry time-series "
                             "(sampled every PERIOD cycles; 256 when the "
                             "flag is given bare) into "
                             "<cache-dir>/telemetry/<key>.jsonl — render "
                             "one with `python -m repro.telemetry report`")
    parser.add_argument("--engine", choices=("reference", "fast"),
                        default=None,
                        help="execution engine for every simulation "
                             "(host-speed knob; results and cache keys "
                             "are engine-independent — see "
                             "repro.pipeline.engine)")
    args = parser.parse_args(argv)

    if args.telemetry and args.no_cache:
        print("--telemetry needs the on-disk store for its artifacts; "
              "it cannot be combined with --no-cache", file=sys.stderr)
        return 2
    if args.telemetry < 0:
        print(f"--telemetry period must be >= 1, got {args.telemetry}",
              file=sys.stderr)
        return 2

    settings = Settings(all_programs=not args.selected, warmup=args.warmup,
                        measure=args.measure, seed=args.seed,
                        sanitize=args.sanitize,
                        telemetry_period=args.telemetry,
                        engine=args.engine)
    wanted = [e for e in args.only.split(",") if e] or list(EXPERIMENTS)
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or default_cache_dir())
    store = ResultStore(cache_dir)
    if args.clear_cache:
        removed = store.clear_disk()
        print(f"cache: cleared {removed} stored results")

    start = time.time()
    set_active_store(store)
    try:
        recorder = plan_campaign(wanted, settings)
        report = execute_campaign(recorder, store, jobs=jobs)
        if report.planned:
            print(f"campaign: {report.summary()}\n")

        sweep = Sweep(settings, store=store)
        results = []
        for exp_id in wanted:
            module = importlib.import_module(EXPERIMENTS[exp_id])
            t0 = time.time()
            hits0, sims0 = sweep.cache_hits, sweep.sim_runs
            result = module.run(sweep=sweep)
            results.append(result)
            print(result.as_text())
            hits = sweep.cache_hits - hits0
            sims = sweep.sim_runs - sims0
            print(f"[{exp_id}: {time.time() - t0:.1f}s, "
                  f"cache {hits} hit / {sims} simulated]\n")
    finally:
        set_active_store(None)
    if args.csv_dir:
        from repro.experiments.export import export_results
        written = export_results(results, args.csv_dir)
        print(f"exported {len(written)} files to {args.csv_dir}")
    summary = [f"total: {time.time() - start:.1f}s",
               f"cache {sweep.cache_hits} hit / {sweep.sim_runs} simulated "
               f"this pass",
               f"store: {store.memory_hits} mem / {store.disk_hits} disk "
               f"hits, {store.misses} misses, "
               f"{store.disk_entries()} entries on disk"]
    if report.executed:
        summary.append(
            f"fan-out: {report.executed} jobs on {report.workers} worker"
            + ("s" if report.workers != 1 else "")
            + f" at {report.utilisation():.0%} utilisation "
            + f"({report.busy_seconds:.1f}s busy / "
            + f"{report.wall_seconds:.1f}s wall)")
    elif report.planned:
        summary.append("fan-out: warm cache, nothing simulated")
    artifacts = report.telemetry_artifacts + sweep.telemetry_artifacts
    if args.telemetry:
        from repro.experiments.cache import telemetry_dir
        summary.append(f"telemetry: {artifacts} artifacts in "
                       f"{telemetry_dir(store)} (period {args.telemetry})")
    print(" | ".join(summary))
    slowest = report.slowest_programs()
    if slowest:
        print("slowest programs: "
              + ", ".join(f"{prog} {secs:.1f}s/{jobs} jobs"
                          for prog, secs, jobs in slowest))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
