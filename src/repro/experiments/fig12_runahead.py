"""Figure 12 — dynamic resizing vs runahead execution.

Runahead (Mutlu et al.) exploits MLP with a small window by
pre-executing past a blocking miss.  The paper's findings: runahead is
effective for memory-intensive programs but inferior to resizing on
average (resizing +8% mem / +1% comp over runahead), because runahead
abandons its computation at every exit while the large window keeps it;
and runahead can fall *below* the base when episodes turn out useless
(milc in the paper).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig12",
        title="Runahead vs dynamic resizing (IPC normalised by base)",
        headers=["program", "runahead", "resizing"],
    )
    ra_ratio, dyn_ratio = {}, {}
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        ra_ratio[program] = sweep.runahead(program).ipc / base_ipc
        dyn_ratio[program] = sweep.dynamic(program).ipc / base_ipc
        result.rows.append([program, f"{ra_ratio[program]:.2f}",
                            f"{dyn_ratio[program]:.2f}"])
    for label, programs in (("GM mem", sweep.settings.memory_programs()),
                            ("GM comp", sweep.settings.compute_programs()),
                            ("GM all", sweep.settings.programs())):
        if not programs:
            continue
        gm_ra = geometric_mean(ra_ratio[p] for p in programs)
        gm_dyn = geometric_mean(dyn_ratio[p] for p in programs)
        result.rows.append([label, f"{gm_ra:.2f}", f"{gm_dyn:.2f}"])
        short = label.split()[1]
        result.series[f"gm_runahead_{short}"] = gm_ra
        result.series[f"gm_dyn_{short}"] = gm_dyn
    result.series["per_program_runahead"] = ra_ratio
    result.series["per_program_dyn"] = dyn_ratio
    result.notes.append(
        "paper: resizing beats runahead by ~8% GM on memory-intensive "
        "programs and ~1% on compute-intensive ones; runahead drops below "
        "base on milc (useless episodes) — in this reproduction the "
        "useless-episode loss shows up on libquantum instead")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
