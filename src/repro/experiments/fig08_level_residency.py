"""Figure 8 — percentage of cycles at each window resource level.

Under the dynamic resizing model, compute-intensive programs should sit
at level 1 and memory-intensive programs at level 3, with phase-mixed
programs (omnetpp, soplex) spending meaningful time at several levels.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)

LEVELS = (1, 2, 3)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    result = ExperimentResult(
        exp_id="fig08",
        title="Cycles at each resource level under dynamic resizing (%)",
        headers=["program", "level 1", "level 2", "level 3"],
    )
    for program in sweep.settings.programs():
        res = sweep.dynamic(program)
        shares = [res.level_residency.get(lvl, 0.0) for lvl in LEVELS]
        result.rows.append(
            [program] + [f"{s:6.1%}" for s in shares])
        result.series[program] = shares
    result.notes.append(
        "paper: level 1 dominates in compute-intensive programs, level 3 "
        "in memory-intensive programs; omnetpp spreads across levels")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
