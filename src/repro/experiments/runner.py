"""Shared machinery for the experiment harnesses.

A :class:`Sweep` owns the trace and simulation cache for one evaluation
campaign: experiments request ``(program, model)`` results and identical
requests are simulated only once, so running the whole suite does not
re-simulate the base processor a dozen times.

Simulation scale is set by :class:`Settings`; the defaults are sized for
a laptop-class Python run (the paper simulates 100M instructions per
program after skipping 16G — a pure-Python cycle simulator substitutes
smaller samples plus the checkpoint-style warming described in
DESIGN.md §5).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field, replace

from repro.config import (
    ProcessorConfig,
    base_config,
    config_fingerprint,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
)
from repro.core.policies import ResizingPolicy
import repro.experiments.cache as result_cache
from repro.energy import EnergyModel
from repro.pipeline import simulate
from repro.stats import SimulationResult, geometric_mean
from repro.workloads import (
    program_names,
    trace_for_program,
    MEMORY_INTENSIVE,
    COMPUTE_INTENSIVE,
    SELECTED_MEMORY,
    SELECTED_COMPUTE,
)


@dataclass(frozen=True)
class Settings:
    """Scale and scope of an evaluation campaign."""

    #: simulate all 28 programs (True) or the paper's selected subset
    all_programs: bool = True
    warmup: int = 4_000
    measure: int = 15_000
    seed: int = 1
    #: explicit program list overriding the above scope (tests and
    #: quick spot-checks; empty = use ``all_programs``)
    only_programs: tuple[str, ...] = ()
    #: run every simulation with the repro.debug invariant sanitizer
    #: attached (slower; results bypass the on-disk cache so the checks
    #: actually execute)
    sanitize: bool = False
    #: attach a :class:`repro.telemetry.TelemetryProbe` with this
    #: sampling period (cycles) to every simulation and write a per-job
    #: JSONL artifact next to the on-disk store (0 = off).  Sampling is
    #: digest-neutral, so — unlike ``sanitize`` — cached results stay
    #: valid; a cached job re-executes only if its artifact is missing.
    telemetry_period: int = 0
    #: execution-engine backend for every simulation (None = config
    #: default, i.e. reference).  Engines are behaviourally identical
    #: (see :mod:`repro.pipeline.engine`), so the choice is absent from
    #: result keys and a warm cache serves either engine.
    engine: str | None = None

    @property
    def trace_ops(self) -> int:
        return self.warmup + self.measure + 1_000

    def programs(self) -> tuple[str, ...]:
        if self.only_programs:
            return self.only_programs
        if self.all_programs:
            return program_names()
        return SELECTED_MEMORY + SELECTED_COMPUTE

    def memory_programs(self) -> tuple[str, ...]:
        return tuple(p for p in self.programs() if p in MEMORY_INTENSIVE)

    def compute_programs(self) -> tuple[str, ...]:
        return tuple(p for p in self.programs() if p in COMPUTE_INTENSIVE)


def quick_settings() -> Settings:
    """Small-scale settings used by the pytest benchmarks."""
    return Settings(all_programs=False, warmup=3_000, measure=8_000)


@dataclass
class ExperimentResult:
    """Rendered output of one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: machine-readable series for tests/benchmarks to assert on
    series: dict = field(default_factory=dict)

    def as_text(self) -> str:
        out = [f"== {self.exp_id}: {self.title} ==",
               render_table(self.headers, self.rows)]
        out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table rendering."""
    table = [headers] + rows
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class Sweep:
    """Trace + simulation cache for one campaign.

    ``store`` (default: the module-wide active store, if one has been
    installed — see :mod:`repro.experiments.cache`) adds an on-disk
    content-addressed layer below the in-memory one, shared between
    campaigns and worker processes.
    """

    def __init__(self, settings: Settings | None = None,
                 store: "result_cache.ResultStore | None" = None) -> None:
        self.settings = settings or Settings()
        self._traces: dict[str, object] = {}
        self._results: dict[tuple, SimulationResult] = {}
        self.energy = EnergyModel()
        self.store = store if store is not None else result_cache.active_store()
        #: simulations answered from the store vs. actually executed
        self.cache_hits = 0
        self.sim_runs = 0
        #: telemetry artifacts written by this sweep's serial path
        self.telemetry_artifacts = 0

    def trace(self, program: str):
        trace = self._traces.get(program)
        if trace is None:
            trace = trace_for_program(program,
                                      n_ops=self.settings.trace_ops,
                                      seed=self.settings.seed)
            self._traces[program] = trace
        return trace

    # ------------------------------------------------------------------

    def run(self, program: str, config: ProcessorConfig,
            key_extra: object = None,
            policy: ResizingPolicy | None = None) -> SimulationResult:
        """Simulate (or fetch from cache) one program on one config.

        The cache key is derived from the *full* configuration
        fingerprint (plus the policy's), so any config field change —
        not just the handful an earlier key happened to enumerate —
        yields a distinct entry.  ``key_extra`` remains for callers
        that vary a policy object in ways they want keyed explicitly.
        """
        key = (program, config_fingerprint(config),
               result_cache.policy_fingerprint(policy), key_extra)
        result = self._results.get(key)
        if result is not None:
            return result
        settings = self.settings
        skey = result_cache.result_key(
            program, config, seed=settings.seed, warmup=settings.warmup,
            measure=settings.measure, trace_ops=settings.trace_ops,
            policy=policy, key_extra=key_extra)
        store = self.store
        telemetry_dir = (result_cache.telemetry_dir(store)
                         if settings.telemetry_period else None)
        recorder = result_cache.active_recorder()
        if recorder is not None:
            # Planning pass: record the job, hand back a placeholder.
            recorder.record(result_cache.JobSpec(
                key=skey, program=program, config=config, policy=policy,
                seed=settings.seed, warmup=settings.warmup,
                measure=settings.measure, trace_ops=settings.trace_ops,
                sanitize=settings.sanitize,
                telemetry_period=settings.telemetry_period,
                telemetry_dir=telemetry_dir,
                engine=settings.engine))
            result = result_cache.placeholder_result(program, config)
            self._results[key] = result
            return result
        # A sanitizing campaign must actually *run* the checks, so
        # stored entries are read-bypassed — except those this process
        # itself produced under the sanitizer (the campaign fan-out),
        # whose checks already ran.  Results are always written back:
        # sanitized runs are bit-identical to unsanitized ones.
        # A telemetry campaign may reuse any cached result (sampling is
        # digest-neutral) — but only if the job's artifact already
        # exists; otherwise it re-simulates to produce the recording.
        artifact = (result_cache.telemetry_artifact_path(telemetry_dir, skey)
                    if telemetry_dir is not None else None)
        if (store is not None
                and (not settings.sanitize or skey in store.sanitized_keys)
                and (artifact is None or os.path.exists(artifact))):
            result = store.get(skey)
            if result is not None:
                self.cache_hits += 1
                self._results[key] = result
                return result
        probe = None
        if settings.telemetry_period:
            from repro.telemetry import TelemetryProbe
            probe = TelemetryProbe(period=settings.telemetry_period)
        result = simulate(config, self.trace(program),
                          warmup=settings.warmup,
                          measure=settings.measure,
                          policy=policy,
                          sanitize=settings.sanitize,
                          telemetry=probe,
                          engine=settings.engine)
        self.energy.annotate(result, config)
        self.sim_runs += 1
        if probe is not None and artifact is not None:
            probe.telemetry.to_jsonl(artifact)
            self.telemetry_artifacts += 1
        if store is not None:
            store.put(skey, result)
            if settings.sanitize:
                store.sanitized_keys.add(skey)
        self._results[key] = result
        return result

    # convenience wrappers -------------------------------------------

    def base(self, program: str) -> SimulationResult:
        return self.run(program, base_config())

    def fixed(self, program: str, level: int) -> SimulationResult:
        return self.run(program, fixed_config(level))

    def ideal(self, program: str, level: int) -> SimulationResult:
        return self.run(program, ideal_config(level))

    def dynamic(self, program: str, max_level: int = 3) -> SimulationResult:
        return self.run(program, dynamic_config(max_level))

    def runahead(self, program: str) -> SimulationResult:
        return self.run(program, runahead_config())

    def speedup(self, program: str, result: SimulationResult) -> float:
        return result.speedup_over(self.base(program))

    def gm_speedups(self, programs, getter) -> float:
        """Geometric-mean speedup over ``programs`` for ``getter(p)``."""
        return geometric_mean(
            self.speedup(p, getter(p)) for p in programs)


def cli_settings(argv=None, description: str = "") -> Settings:
    """Parse the standard experiment CLI flags into Settings."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--selected", action="store_true",
                        help="only the paper's selected programs "
                             "(default: all 28)")
    parser.add_argument("--measure", type=int, default=15_000,
                        help="measured micro-ops per run")
    parser.add_argument("--warmup", type=int, default=4_000,
                        help="warmup micro-ops per run")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the repro.debug invariant sanitizer "
                             "to every simulation (slower, bypasses the "
                             "result cache)")
    parser.add_argument("--telemetry", type=int, nargs="?", const=256,
                        default=0, metavar="PERIOD",
                        help="record a telemetry time-series for every "
                             "simulation, sampled every PERIOD cycles "
                             "(default 256 when the flag is given bare); "
                             "artifacts land under the cache directory")
    parser.add_argument("--engine", choices=("reference", "fast"),
                        default=None,
                        help="execution engine for every simulation "
                             "(host-speed knob; results and cache keys "
                             "are engine-independent)")
    args = parser.parse_args(argv)
    return Settings(all_programs=not args.selected, warmup=args.warmup,
                    measure=args.measure, seed=args.seed,
                    sanitize=args.sanitize,
                    telemetry_period=args.telemetry,
                    engine=args.engine)
