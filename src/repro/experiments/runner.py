"""Shared machinery for the experiment harnesses.

A :class:`Sweep` owns the trace and simulation cache for one evaluation
campaign: experiments request ``(program, model)`` results and identical
requests are simulated only once, so running the whole suite does not
re-simulate the base processor a dozen times.

Simulation scale is set by :class:`Settings`; the defaults are sized for
a laptop-class Python run (the paper simulates 100M instructions per
program after skipping 16G — a pure-Python cycle simulator substitutes
smaller samples plus the checkpoint-style warming described in
DESIGN.md §5).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

from repro.config import (
    ProcessorConfig,
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
)
from repro.core.policies import ResizingPolicy
from repro.energy import EnergyModel
from repro.pipeline import simulate
from repro.stats import SimulationResult, geometric_mean
from repro.workloads import (
    generate_trace,
    profile,
    program_names,
    MEMORY_INTENSIVE,
    COMPUTE_INTENSIVE,
    SELECTED_MEMORY,
    SELECTED_COMPUTE,
)


@dataclass(frozen=True)
class Settings:
    """Scale and scope of an evaluation campaign."""

    #: simulate all 28 programs (True) or the paper's selected subset
    all_programs: bool = True
    warmup: int = 4_000
    measure: int = 15_000
    seed: int = 1

    @property
    def trace_ops(self) -> int:
        return self.warmup + self.measure + 1_000

    def programs(self) -> tuple[str, ...]:
        if self.all_programs:
            return program_names()
        return SELECTED_MEMORY + SELECTED_COMPUTE

    def memory_programs(self) -> tuple[str, ...]:
        return tuple(p for p in self.programs() if p in MEMORY_INTENSIVE)

    def compute_programs(self) -> tuple[str, ...]:
        return tuple(p for p in self.programs() if p in COMPUTE_INTENSIVE)


def quick_settings() -> Settings:
    """Small-scale settings used by the pytest benchmarks."""
    return Settings(all_programs=False, warmup=3_000, measure=8_000)


@dataclass
class ExperimentResult:
    """Rendered output of one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: machine-readable series for tests/benchmarks to assert on
    series: dict = field(default_factory=dict)

    def as_text(self) -> str:
        out = [f"== {self.exp_id}: {self.title} ==",
               render_table(self.headers, self.rows)]
        out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table rendering."""
    table = [headers] + rows
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class Sweep:
    """Trace + simulation cache for one campaign."""

    def __init__(self, settings: Settings | None = None) -> None:
        self.settings = settings or Settings()
        self._traces: dict[str, object] = {}
        self._results: dict[tuple, SimulationResult] = {}
        self.energy = EnergyModel()

    def trace(self, program: str):
        trace = self._traces.get(program)
        if trace is None:
            trace = generate_trace(profile(program),
                                   n_ops=self.settings.trace_ops,
                                   seed=self.settings.seed)
            self._traces[program] = trace
        return trace

    # ------------------------------------------------------------------

    def run(self, program: str, config: ProcessorConfig,
            key_extra: object = None,
            policy: ResizingPolicy | None = None) -> SimulationResult:
        """Simulate (or fetch from cache) one program on one config."""
        key = (program, config.model.value, config.level,
               config.l2.size_bytes, config.l2.assoc,
               config.transition_penalty, key_extra)
        result = self._results.get(key)
        if result is None:
            result = simulate(config, self.trace(program),
                              warmup=self.settings.warmup,
                              measure=self.settings.measure,
                              policy=policy)
            self.energy.annotate(result, config)
            self._results[key] = result
        return result

    # convenience wrappers -------------------------------------------

    def base(self, program: str) -> SimulationResult:
        return self.run(program, base_config())

    def fixed(self, program: str, level: int) -> SimulationResult:
        return self.run(program, fixed_config(level))

    def ideal(self, program: str, level: int) -> SimulationResult:
        return self.run(program, ideal_config(level))

    def dynamic(self, program: str, max_level: int = 3) -> SimulationResult:
        return self.run(program, dynamic_config(max_level))

    def runahead(self, program: str) -> SimulationResult:
        return self.run(program, runahead_config())

    def speedup(self, program: str, result: SimulationResult) -> float:
        return result.speedup_over(self.base(program))

    def gm_speedups(self, programs, getter) -> float:
        """Geometric-mean speedup over ``programs`` for ``getter(p)``."""
        return geometric_mean(
            self.speedup(p, getter(p)) for p in programs)


def cli_settings(argv=None, description: str = "") -> Settings:
    """Parse the standard experiment CLI flags into Settings."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--selected", action="store_true",
                        help="only the paper's selected programs "
                             "(default: all 28)")
    parser.add_argument("--measure", type=int, default=15_000,
                        help="measured micro-ops per run")
    parser.add_argument("--warmup", type=int, default=4_000,
                        help="warmup micro-ops per run")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    return Settings(all_programs=not args.selected, warmup=args.warmup,
                    measure=args.measure, seed=args.seed)
