"""Export experiment results to CSV for external plotting.

Every :class:`~repro.experiments.runner.ExperimentResult` renders to one
CSV file (headers + rows, notes as ``#`` comment lines); a campaign's
worth can be written in one call.  The files are plain enough for
pandas, gnuplot or a spreadsheet.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.runner import ExperimentResult


def result_to_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write one experiment's table to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        for note in result.notes:
            handle.write(f"# {note}\n")
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path


def series_to_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write the machine-readable series to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def default(obj):
        if isinstance(obj, dict):
            return obj
        return str(obj)

    payload = {"exp_id": result.exp_id, "title": result.title,
               "series": result.series}
    path.write_text(json.dumps(payload, indent=2, default=default,
                               sort_keys=True))
    return path


def export_results(results: list[ExperimentResult],
                   directory: str | Path) -> list[Path]:
    """Write CSV + JSON for each result under ``directory``."""
    directory = Path(directory)
    written = []
    for result in results:
        written.append(result_to_csv(result,
                                     directory / f"{result.exp_id}.csv"))
        written.append(series_to_json(result,
                                      directory / f"{result.exp_id}.json"))
    return written
