"""Content-addressed simulation result store and campaign planning hooks.

Two pieces live here:

* :class:`ResultStore` — a two-layer (in-memory + on-disk) cache of
  :class:`~repro.stats.SimulationResult` records, keyed by a sha256
  fingerprint of *everything that determines the outcome of a run*:
  the simulator version tag, the program, the trace seed and sample
  sizes, the full processor configuration and the policy construction
  parameters.  Re-running the suite therefore only simulates what
  changed; everything else is a disk hit.

* :class:`JobRecorder` + the planning-mode hooks — a campaign is
  executed twice.  The *planning pass* runs every experiment module
  with a recorder active: :meth:`Sweep.run <repro.experiments.runner.
  Sweep.run>` records each requested simulation as a :class:`JobSpec`
  and returns a placeholder result, so the pass is nearly free.  The
  recorded (and de-duplicated) jobs are then fanned out over worker
  processes (:mod:`repro.experiments.parallel`), the store is
  hydrated, and the *real pass* runs the experiment modules unchanged
  — every ``Sweep.run`` is now a cache hit.

Planning is best-effort: an experiment whose post-processing chokes on
placeholder numbers simply contributes no pre-planned jobs and falls
back to simulating serially during the real pass.  Correctness never
depends on the planning pass.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum

from repro.config import ProcessorConfig, config_fingerprint
from repro.core.policies import ResizingPolicy
from repro.stats import SimulationResult
from repro.stats.counters import SimStats

#: Files written by the on-disk layer carry this suffix.
_SUFFIX = ".pkl"


def default_cache_dir() -> str:
    """Default on-disk store location (override with ``REPRO_CACHE_DIR``)."""
    return os.environ.get("REPRO_CACHE_DIR", ".simcache")


def telemetry_dir(store: "ResultStore | None") -> str | None:
    """Where a campaign's per-job telemetry artifacts live.

    Telemetry artifacts need the on-disk store (they are files, keyed by
    the same content address as the result they accompany); a
    memory-only store yields None and campaign telemetry is disabled.
    """
    if store is None or store.directory is None:
        return None
    return os.path.join(store.directory, "telemetry")


def telemetry_artifact_path(directory: str, key: str) -> str:
    """Path of the JSONL telemetry artifact for result ``key``."""
    return os.path.join(directory, key + ".jsonl")


# ----------------------------------------------------------------------
# fingerprints


def _stable_repr(value: object, depth: int = 0) -> str:
    """A ``repr`` that is stable across processes and interpreter runs.

    The default ``repr`` of a plain object embeds its memory address,
    which would make disk-cache keys differ between runs.  Containers
    and objects are therefore walked structurally (depth-limited — a
    policy's constructor state is shallow).
    """
    if depth > 4:
        return "<deep>"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (tuple, list)):
        inner = ",".join(_stable_repr(v, depth + 1) for v in value)
        return f"[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_stable_repr(k, depth + 1)}:{_stable_repr(v, depth + 1)}"
            for k, v in sorted(value.items(), key=repr))
        return f"{{{inner}}}"
    attrs = getattr(value, "__dict__", None)
    if attrs is None and hasattr(type(value), "__slots__"):
        attrs = {name: getattr(value, name)
                 for name in type(value).__slots__ if hasattr(value, name)}
    if attrs is not None:
        inner = ",".join(f"{k}={_stable_repr(v, depth + 1)}"
                         for k, v in sorted(attrs.items()))
        return f"{type(value).__qualname__}({inner})"
    return f"<{type(value).__qualname__}>"


def policy_fingerprint(policy: ResizingPolicy | None) -> str:
    """Fingerprint of a policy's class and construction-time state.

    Policies are always handed to ``Sweep.run`` freshly constructed, so
    their attributes at this point *are* their constructor parameters.
    """
    if policy is None:
        return "default"
    cls = type(policy)
    payload = f"{cls.__module__}.{cls.__qualname__}|{_stable_repr(policy)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_key(program: str, config: ProcessorConfig, *,
               seed: int, warmup: int, measure: int, trace_ops: int,
               policy: ResizingPolicy | None = None,
               key_extra: object = None) -> str:
    """Content-address of one simulation run.

    Everything that can change the produced :class:`SimulationResult`
    participates: the simulator version tag (bumped whenever a change
    alters timing behaviour), the workload identity (program + seed +
    trace length), the sample sizes, the full configuration fingerprint
    and the policy fingerprint.  ``key_extra`` remains for callers that
    vary something not visible in config or policy (none today — kept
    for forward compatibility with the in-memory key).

    The program participates via
    :func:`repro.workloads.program_cache_identity`: synthetic names
    stand for themselves, while ``riscv:`` trace workloads fold in
    their trace content hash, so editing a corpus file invalidates
    exactly the keys derived from it.
    """
    from repro.pipeline.core import SIM_VERSION
    from repro.workloads import program_cache_identity
    payload = "|".join((
        SIM_VERSION, program_cache_identity(program), str(seed),
        str(warmup), str(measure),
        str(trace_ops), config_fingerprint(config),
        policy_fingerprint(policy), _stable_repr(key_extra)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the store


class ResultStore:
    """Two-layer content-addressed store of simulation results.

    Layer 1 is a plain dict; layer 2 (optional) a directory of pickle
    files, sharded by the first two key characters.  Disk writes are
    atomic (temp file + ``os.replace``) so a campaign killed mid-write
    never leaves a truncated entry — unreadable files are treated as
    misses and overwritten.
    """

    def __init__(self, directory: str | None = None) -> None:
        self.directory = directory
        self._mem: dict[str, SimulationResult] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        #: keys whose stored result was produced *by this process* with
        #: the invariant sanitizer attached.  A sanitizing campaign may
        #: reuse exactly these (the checks already ran); any other entry
        #: is read-bypassed so sanitization cannot be skipped by a warm
        #: cache.  Deliberately not persisted: provenance is only
        #: trustworthy within the process that verified it.
        self.sanitized_keys: set[str] = set()

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + _SUFFIX)

    def _touch(self, key: str) -> None:
        """Refresh the on-disk entry's LRU clock.

        :meth:`prune` evicts least-recently-*used* entries by file
        mtime, but a plain read never updates mtime — without this,
        eviction would silently degrade to FIFO and a hot, repeatedly
        hit entry would be evicted as if it had never been read again.
        """
        if self.directory is None:
            return
        try:
            os.utime(self._path(key))
        except OSError:
            pass  # entry pruned concurrently, or memory-only key

    def _lookup(self, key: str) -> SimulationResult | None:
        """Memory-then-disk lookup.  Counts hits (and refreshes the
        entry's LRU clock) but never counts a miss — tiered stores
        chain lookups across layers before declaring one."""
        result = self._mem.get(key)
        if result is not None:
            self.memory_hits += 1
            self._touch(key)
            return result
        if self.directory is not None:
            try:
                with open(self._path(key), "rb") as fh:
                    result = pickle.load(fh)
            except Exception:
                # unpickling garbage raises whatever opcode it trips
                # over (ValueError, EOFError, UnpicklingError, ...) —
                # any unreadable entry is simply a miss
                result = None
            if isinstance(result, SimulationResult):
                self._mem[key] = result
                self.disk_hits += 1
                self._touch(key)
                return result
        return None

    def get(self, key: str) -> SimulationResult | None:
        result = self._lookup(key)
        if result is None:
            self.misses += 1
        return result

    def contains(self, key: str) -> bool:
        """Like :meth:`get` but without counting a hit or a miss."""
        if key in self._mem:
            return True
        if self.directory is None:
            return False
        return os.path.exists(self._path(key))

    def put(self, key: str, result: SimulationResult) -> None:
        self._mem[key] = result
        if self.directory is None:
            return
        path = self._path(key)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear_disk(self) -> int:
        """Delete every on-disk entry; returns how many were removed."""
        removed = 0
        if self.directory is None or not os.path.isdir(self.directory):
            return removed
        for shard in os.listdir(self.directory):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(_SUFFIX):
                    os.unlink(os.path.join(shard_dir, name))
                    removed += 1
            if not os.listdir(shard_dir):
                os.rmdir(shard_dir)
        return removed

    def disk_entries(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for __ in self.iter_disk())

    def iter_disk(self):
        """Yield ``(key, path, mtime, size_bytes)`` for every on-disk
        entry.  Entries that vanish mid-scan (a concurrent prune or
        clear) are skipped, not errors."""
        if self.directory is None or not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir) or shard == "telemetry":
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                yield (name[:-len(_SUFFIX)], path, stat.st_mtime,
                       stat.st_size)

    def disk_bytes(self) -> int:
        """Total size of the on-disk result entries (telemetry artifacts
        not included — see :func:`telemetry_dir`)."""
        return sum(size for *__, size in self.iter_disk())

    def _artifact_path(self, key: str) -> str | None:
        directory = telemetry_dir(self)
        if directory is None:
            return None
        return telemetry_artifact_path(directory, key)

    def _drop_entry(self, key: str, path: str) -> int:
        """Remove one entry (and its telemetry artifact); returns the
        number of artifact files removed alongside."""
        try:
            os.unlink(path)
        except OSError:
            pass
        self._mem.pop(key, None)
        self.sanitized_keys.discard(key)
        artifact = self._artifact_path(key)
        if artifact is not None and os.path.exists(artifact):
            try:
                os.unlink(artifact)
                return 1
            except OSError:
                pass
        return 0

    def prune(self, max_bytes: int | None = None,
              max_age: float | None = None,
              now: float | None = None) -> "PruneReport":
        """Evict on-disk entries, LRU by file mtime.

        Two independent criteria, either or both may be given:

        * ``max_age`` — entries untouched for more than this many
          seconds are removed regardless of space;
        * ``max_bytes`` — after the age pass, the oldest remaining
          entries are evicted until the store fits in this budget.

        A pruned entry's telemetry artifact (``telemetry/<key>.jsonl``)
        goes with it — an artifact without its result is unreachable
        through the campaign and serving paths.  Eviction is safe
        against concurrent readers: a reader either sees the complete
        entry (and may re-cache it in memory) or a miss, never a
        partial file, because removal is a single ``unlink``.
        """
        report = PruneReport()
        entries = sorted(self.iter_disk(), key=lambda e: e[2])  # by mtime
        report.scanned = len(entries)
        now = time.time() if now is None else now
        keep: list[tuple[str, str, float, int]] = []
        for key, path, mtime, size in entries:
            if max_age is not None and now - mtime > max_age:
                report.artifacts_removed += self._drop_entry(key, path)
                report.removed += 1
                report.removed_bytes += size
            else:
                keep.append((key, path, mtime, size))
        if max_bytes is not None:
            total = sum(size for *__, size in keep)
            while keep and total > max_bytes:
                key, path, __, size = keep.pop(0)  # oldest first
                report.artifacts_removed += self._drop_entry(key, path)
                report.removed += 1
                report.removed_bytes += size
                total -= size
        report.kept = len(keep)
        report.kept_bytes = sum(size for *__, size in keep)
        self._remove_empty_shards()
        return report

    def _remove_empty_shards(self) -> None:
        if self.directory is None or not os.path.isdir(self.directory):
            return
        for shard in os.listdir(self.directory):
            shard_dir = os.path.join(self.directory, shard)
            if (os.path.isdir(shard_dir) and shard != "telemetry"
                    and not os.listdir(shard_dir)):
                os.rmdir(shard_dir)


@dataclass
class PruneReport:
    """What :meth:`ResultStore.prune` did."""

    scanned: int = 0
    removed: int = 0
    removed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    artifacts_removed: int = 0

    def summary(self) -> str:
        return (f"pruned {self.removed} of {self.scanned} entries "
                f"({self.removed_bytes / 1024:.1f} KiB, "
                f"{self.artifacts_removed} telemetry artifacts); "
                f"{self.kept} entries / {self.kept_bytes / 1024:.1f} KiB kept")


class TieredResultStore(ResultStore):
    """A local result tier in front of a shared store.

    The cluster worker's store (`docs/serving.md`, "The distributed
    fabric"): reads check the fast local tier first and fall back to
    the shared store with **read-through** (a shared hit is promoted
    into the local tier, so the worker's shard prefixes — which drive
    content-address-affine job placement — track what it actually
    serves); writes go to the local tier and are **written back** to
    the shared store, which is how results reach the coordinator and
    every other worker.

    Both tiers are plain :class:`ResultStore` layouts, so the shared
    tier can be any directory all nodes reach (one box, NFS, a fuse
    mount) and the usual tooling (``cache --stats|--prune``) works on
    either.  :meth:`prune` and the other maintenance methods operate on
    the *local* tier only — the shared store is community property and
    is pruned by its own owner.
    """

    def __init__(self, directory: str | None,
                 shared: "ResultStore | str | None" = None) -> None:
        super().__init__(directory)
        if isinstance(shared, str):
            shared = ResultStore(shared)
        self.shared = shared
        #: local misses served by the shared tier (read-through hits)
        self.shared_hits = 0

    def get(self, key: str) -> SimulationResult | None:
        result = self._lookup(key)
        if result is not None:
            return result
        if self.shared is not None:
            result = self.shared._lookup(key)
            if result is not None:
                self.shared_hits += 1
                super().put(key, result)  # promote into the local tier
                return result
        self.misses += 1
        return None

    def contains(self, key: str) -> bool:
        if super().contains(key):
            return True
        return self.shared is not None and self.shared.contains(key)

    def put(self, key: str, result: SimulationResult) -> None:
        super().put(key, result)
        if self.shared is not None:
            self.shared.put(key, result)

    def shard_prefixes(self) -> list[str]:
        """The local tier's populated shard prefixes (``key[:2]``).

        This is what a worker advertises to the coordinator: jobs whose
        content address falls in an advertised shard are preferentially
        routed here, because their neighbours (same config sweep, same
        program family) are statistically already local.
        """
        if self.directory is None or not os.path.isdir(self.directory):
            return []
        return sorted(
            shard for shard in os.listdir(self.directory)
            if len(shard) == 2 and shard != "telemetry"
            and os.path.isdir(os.path.join(self.directory, shard)))


# ----------------------------------------------------------------------
# campaign planning


@dataclass(frozen=True)
class JobSpec:
    """One simulation to run, self-contained enough to ship to a worker."""

    key: str
    program: str
    config: ProcessorConfig
    policy: ResizingPolicy | None
    seed: int
    warmup: int
    measure: int
    trace_ops: int
    #: run this job with the invariant sanitizer attached.  Not part of
    #: the result key: a sanitized run is bit-identical, it just checks.
    sanitize: bool = False
    #: fast-forward over provably idle cycles (the default).  Also not
    #: part of the result key — ff is timing-invariant by design, and
    #: :mod:`repro.verify` exists to prove it; a caller pairing ff with
    #: no-ff runs must disambiguate the keys itself via ``key_extra``
    #: (see ``repro.verify.fuzz``).
    fast_forward: bool = True
    #: sample the run with a :class:`repro.telemetry.TelemetryProbe`
    #: every this-many cycles (0 = off) and drop the recording as a
    #: JSONL artifact into ``telemetry_dir``.  Like ``sanitize``, not
    #: part of the result key: sampling is digest-neutral (pure reads
    #: only), so a telemetry run produces a bit-identical result.
    telemetry_period: int = 0
    #: directory for the per-job telemetry artifact
    #: (``<telemetry_dir>/<key>.jsonl``); None disables writing.
    telemetry_dir: str | None = None
    #: execution-engine override (:mod:`repro.pipeline.engine`); None
    #: uses ``config.engine``.  Not part of the result key: engines are
    #: behaviourally identical (the engine-equivalence oracle), so a
    #: warm cache populated by one engine serves the other.  A caller
    #: deliberately pairing engines against each other must split the
    #: keys via ``key_extra`` (see ``repro.verify.fuzz``).
    engine: str | None = None
    #: per-thread programs of an SMT job (``config.smt`` set); the
    #: worker generates one trace per entry and runs
    #: :func:`repro.pipeline.smt.simulate_smt` instead of ``simulate``.
    #: ``program`` holds the "+"-joined form the key is derived from;
    #: keeping the split here saves every consumer re-parsing it.
    smt_programs: tuple[str, ...] | None = None


class JobRecorder:
    """Collects the unique simulations a campaign will need."""

    def __init__(self) -> None:
        self.jobs: dict[str, JobSpec] = {}

    def record(self, spec: JobSpec) -> None:
        self.jobs.setdefault(spec.key, spec)

    def __len__(self) -> int:
        return len(self.jobs)


def placeholder_result(program: str, config: ProcessorConfig) -> SimulationResult:
    """A plausible stand-in returned by ``Sweep.run`` while planning.

    Experiment modules post-process their results (speedup ratios,
    geometric means, EDP ratios, Figure 11 line-usage shares, Figure 4
    miss-interval histograms); the placeholder carries non-degenerate
    values for all of those so the planning pass survives long enough
    to record every job.  The numbers are never shown to anyone.
    """
    stats = SimStats()
    stats.cycles = 1_000
    stats.committed_uops = 1_000
    stats.level_cycles = {config.level: 1_000}
    stats.l2_miss_cycles = [100, 300, 600]
    stats.demand_miss_intervals = [(100, 300)]
    line_usage = {f"{src}_{use}": 1
                  for src in ("corrpath", "wrongpath", "prefetch")
                  for use in ("useful", "useless")}
    return SimulationResult(
        program=program,
        model=config.model.value,
        level=config.level,
        cycles=1_000,
        instructions=1_000,
        ipc=1.0,
        avg_load_latency=10.0,
        mispredict_rate=0.01,
        mlp=1.5,
        level_residency={config.level: 1.0},
        line_usage=line_usage,
        memory_stats={
            "l1i_accesses": 1_000, "l1i_misses": 10,
            "l1d_accesses": 1_000, "l1d_misses": 10,
            "l2_accesses": 100, "l2_misses": 10,
            "dram_requests": 10, "prefetch_fills": 1,
            "row_hit_rate": 0.5,
        },
        energy_nj=1.0,
        edp=1_000.0,
        stats=stats,
    )


# ----------------------------------------------------------------------
# module-level active store / recorder
#
# Module-level rather than per-Sweep because some experiments construct
# their own Sweep instances internally (ablation_seeds builds one per
# trace seed): a store or recorder installed here reaches those too.

_active_store: ResultStore | None = None
_active_recorder: JobRecorder | None = None


def set_active_store(store: ResultStore | None) -> None:
    """Install the store newly constructed ``Sweep`` instances pick up."""
    global _active_store
    _active_store = store


def active_store() -> ResultStore | None:
    return _active_store


def active_recorder() -> JobRecorder | None:
    return _active_recorder


@contextmanager
def recording(recorder: JobRecorder):
    """Planning mode: ``Sweep.run`` records jobs instead of simulating."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder
    try:
        yield recorder
    finally:
        _active_recorder = previous
