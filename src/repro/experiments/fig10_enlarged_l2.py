"""Figure 10 — same silicon spent on a bigger L2 instead.

The paper asks whether the extra area would be better spent enlarging
the L2 from 2MB 4-way to 2.5MB 5-way (which actually costs ~1.3x more
than the window enlargement).  Answer: the bigger L2 buys +0.6% GM IPC,
dynamic resizing buys +21% — the window is the better investment.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import CacheConfig, base_config
from repro.experiments.runner import (
    ExperimentResult, Settings, Sweep, cli_settings)
from repro.stats import geometric_mean


def enlarged_l2_config():
    """Base processor with a 2.5MB, 5-way L2 (paper Section 5.5)."""
    base = base_config()
    bigger = CacheConfig(size_bytes=2560 * 1024, assoc=5,
                         line_bytes=base.l2.line_bytes,
                         hit_latency=base.l2.hit_latency,
                         mshr_entries=base.l2.mshr_entries)
    return replace(base, l2=bigger)


def run(settings: Settings | None = None,
        sweep: Sweep | None = None) -> ExperimentResult:
    sweep = sweep or Sweep(settings)
    big_l2 = enlarged_l2_config()
    result = ExperimentResult(
        exp_id="fig10",
        title="Enlarged 2.5MB/5-way L2 vs dynamic resizing "
              "(IPC normalised by base)",
        headers=["program", "bigger L2", "dynamic resizing"],
    )
    l2_ratios, dyn_ratios = [], []
    for program in sweep.settings.programs():
        base_ipc = sweep.base(program).ipc
        l2_ratio = sweep.run(program, big_l2).ipc / base_ipc
        dyn_ratio = sweep.dynamic(program).ipc / base_ipc
        l2_ratios.append(l2_ratio)
        dyn_ratios.append(dyn_ratio)
        result.rows.append([program, f"{l2_ratio:.3f}", f"{dyn_ratio:.3f}"])
    gm_l2 = geometric_mean(l2_ratios)
    gm_dyn = geometric_mean(dyn_ratios)
    result.rows.append(["GM all", f"{gm_l2:.3f}", f"{gm_dyn:.3f}"])
    result.series["gm_l2"] = gm_l2
    result.series["gm_dyn"] = gm_dyn
    result.notes.append(
        "paper: the enlarged L2 gains only +0.6% GM while resizing gains "
        "+21%, despite the L2 costing ~1.3x more area")
    return result


if __name__ == "__main__":
    print(run(cli_settings(description=__doc__)).as_text())
