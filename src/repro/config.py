"""Processor and experiment configuration.

This module encodes the evaluated processor of the paper:

* Table 1 — configuration of the base processor (pipeline width, window
  resource sizes, branch predictor, caches, main memory, prefetcher).
* Table 2 — the instruction window resource *levels*: number of entries and
  pipeline depth of the IQ/ROB/LSQ at each level, and the cycle penalty paid
  at a level transition.

Everything is a plain frozen dataclass so configurations can be shared
between models, hashed, compared in tests, and tweaked with
``dataclasses.replace``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from functools import lru_cache


class ModelKind(Enum):
    """The three processor models evaluated in Section 5.3 of the paper,
    plus the runahead comparator of Section 5.7."""

    #: Window sizes fixed at a given level for the whole run; the resources
    #: are pipelined per Table 2 (issue delay + extra mispredict penalty).
    FIXED = "fixed"
    #: Window resources resized dynamically by the MLP-aware controller.
    DYNAMIC = "dynamic"
    #: Window sizes fixed at a given level but *not* pipelined: no issue
    #: delay and no extra mispredict penalty (upper bound, Fig 7 line).
    IDEAL = "ideal"
    #: Base-sized window plus runahead execution (Mutlu et al.).
    RUNAHEAD = "runahead"


@dataclass(frozen=True)
class ResourceLevel:
    """Sizes and pipeline depths of the window resources at one level.

    Mirrors one column of Table 2 of the paper.
    """

    iq_entries: int
    rob_entries: int
    lsq_entries: int
    iq_depth: int
    rob_depth: int
    lsq_depth: int

    def __post_init__(self) -> None:
        if self.iq_entries <= 0 or self.rob_entries <= 0 or self.lsq_entries <= 0:
            raise ValueError("resource sizes must be positive")
        if self.iq_depth < 1 or self.rob_depth < 1 or self.lsq_depth < 1:
            raise ValueError("pipeline depths must be >= 1")

    @property
    def extra_wakeup_delay(self) -> int:
        """Extra cycles before a consumer can issue after its producer.

        A pipelined IQ (depth ``d``) cannot issue dependent instructions
        back-to-back: the wakeup/select loop takes ``d`` cycles, so the
        consumer observes the broadcast ``d - 1`` cycles late.
        """
        return self.iq_depth - 1

    @property
    def extra_branch_penalty(self) -> int:
        """Extra branch misprediction penalty at this level.

        The enlarged IQ adds issue delay and the pipelined ROB register
        field read lengthens recovery (Section 5.1 of the paper).  One
        extra cycle per extra IQ stage plus one per extra ROB stage.
        """
        return (self.iq_depth - 1) + (self.rob_depth - 1)


#: Table 2 of the paper: the three instruction window resource levels.
LEVEL_TABLE: tuple[ResourceLevel, ...] = (
    ResourceLevel(iq_entries=64, rob_entries=128, lsq_entries=64,
                  iq_depth=1, rob_depth=1, lsq_depth=1),
    ResourceLevel(iq_entries=160, rob_entries=320, lsq_entries=160,
                  iq_depth=2, rob_depth=2, lsq_depth=2),
    ResourceLevel(iq_entries=256, rob_entries=512, lsq_entries=256,
                  iq_depth=2, rob_depth=2, lsq_depth=2),
)

#: Extension beyond the paper: a fourth level (6x IQ/LSQ, 6x ROB).  The
#: IQ delay scaling of [25] implies a third pipeline stage at this size,
#: so level 4 pays a 2-cycle wakeup gap and a larger recovery penalty —
#: the ablation_level4 experiment probes whether it still pays.
EXTENDED_LEVEL_TABLE: tuple[ResourceLevel, ...] = LEVEL_TABLE + (
    ResourceLevel(iq_entries=384, rob_entries=768, lsq_entries=384,
                  iq_depth=3, rob_depth=2, lsq_depth=3),
)

#: Cycles during which front-end allocation stalls at a level transition.
LEVEL_TRANSITION_PENALTY = 10


def level_at(level: int, table: tuple[ResourceLevel, ...] = LEVEL_TABLE) -> ResourceLevel:
    """Return the :class:`ResourceLevel` for a 1-based level number."""
    if not 1 <= level <= len(table):
        raise ValueError(f"level must be in 1..{len(table)}, got {level}")
    return table[level - 1]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError("cache size must be a multiple of assoc * line size")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory channel: minimum latency plus bandwidth (Table 1)."""

    min_latency: int = 300
    bytes_per_cycle: int = 8
    #: charge channel bandwidth for dirty-line writebacks on L2 eviction.
    #: Off by default (the paper's Table 1 specifies only the fetch path);
    #: the ablation_writeback experiment quantifies the difference.
    model_writebacks: bool = False
    #: "flat" = the paper's Table 1 channel (min latency + bandwidth);
    #: "banked" = bank/row-buffer model (see memory/dram_banked.py and
    #: the ablation_dram experiment).
    organisation: str = "flat"


@dataclass(frozen=True)
class PrefetcherConfig:
    """Data prefetcher.  Table 1 of the paper: stride-based, 4K-entry
    4-way table, 16-data prefetch into the L2 on a miss.  ``kind``
    selects alternatives for the prefetcher ablation ("stride" |
    "stream" | "nextline" | "none")."""

    enabled: bool = True
    kind: str = "stride"
    table_entries: int = 4096
    table_assoc: int = 4
    degree: int = 16


@dataclass(frozen=True)
class BranchPredictorConfig:
    """gshare with a 16-bit history and 64K-entry PHT, 2K-set 4-way BTB,
    10-cycle misprediction penalty (Table 1)."""

    history_bits: int = 16
    pht_entries: int = 65536
    btb_sets: int = 2048
    btb_assoc: int = 4
    mispredict_penalty: int = 10


@dataclass(frozen=True)
class FunctionUnitConfig:
    """Function unit counts (Table 1)."""

    int_alu: int = 4
    int_mul_div: int = 2
    mem_ports: int = 2
    fp_alu: int = 4
    fp_mul_div: int = 2


@dataclass(frozen=True)
class RunaheadConfig:
    """Runahead comparator configuration (Section 5.7).

    Two checkpointed register files, and a 512-byte 4-way 2-port runahead
    cache for memory dependences in runahead mode.  The runahead cause
    status table (RCST) predicts useless runahead episodes.
    """

    runahead_cache_bytes: int = 512
    runahead_cache_assoc: int = 4
    rcst_entries: int = 64
    use_rcst: bool = True
    #: minimum number of L2 misses observed during an episode for the RCST
    #: to deem that episode useful.
    rcst_useful_threshold: int = 1


@dataclass(frozen=True)
class SMTConfig:
    """SMT scenario: 2-4 hardware threads sharing one window.

    ``partition`` selects the :mod:`repro.core.partition` policy that
    maps per-thread resizing levels onto a partition of the shared
    ROB/IQ/LSQ; ``fetch`` selects the per-cycle thread fetch selector
    ("mlp" = ICOUNT biased away from threads with outstanding demand L2
    misses, "icount" = plain ICOUNT, "roundrobin" = rotation).
    """

    threads: int = 2
    partition: str = "mlp"
    fetch: str = "mlp"

    def __post_init__(self) -> None:
        if not 1 <= self.threads <= 4:
            raise ValueError(f"SMT threads must be in 1..4, "
                             f"got {self.threads}")
        if self.partition not in ("mlp", "equal", "shared"):
            raise ValueError(f"unknown partition policy {self.partition!r} "
                             f"(want 'mlp', 'equal' or 'shared')")
        if self.fetch not in ("mlp", "icount", "roundrobin"):
            raise ValueError(f"unknown fetch policy {self.fetch!r} "
                             f"(want 'mlp', 'icount' or 'roundrobin')")


@dataclass(frozen=True)
class ProcessorConfig:
    """Full processor configuration; defaults reproduce Table 1."""

    model: ModelKind = ModelKind.FIXED
    #: fixed level for FIXED/IDEAL models; maximum level for DYNAMIC.
    level: int = 1
    width: int = 4
    levels: tuple[ResourceLevel, ...] = LEVEL_TABLE
    transition_penalty: int = LEVEL_TRANSITION_PENALTY
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    fu: FunctionUnitConfig = field(default_factory=FunctionUnitConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, assoc=2, line_bytes=32, hit_latency=1))
    # MSHR files are provisioned generously (the paper's SimpleScalar-
    # derived simulator does not bound outstanding misses): the
    # *instruction window* must be the MLP limiter, not the miss buffers.
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, assoc=2, line_bytes=32, hit_latency=2,
        mshr_entries=64))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=2 * 1024 * 1024, assoc=4, line_bytes=64, hit_latency=12,
        mshr_entries=64))
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    runahead: RunaheadConfig = field(default_factory=RunaheadConfig)
    #: Main-loop backend (:mod:`repro.pipeline.engine`): ``"reference"``
    #: or ``"fast"``.  A pure host-speed knob — engines are behaviourally
    #: identical — so it is excluded from :func:`config_fingerprint` and
    #: never changes a result key.
    engine: str = "reference"
    #: SMT scenario (None = the ordinary single-thread pipeline).  When
    #: set, ``level`` is the *provisioned* window level all threads
    #: share and ``model`` must be FIXED (static partition) or DYNAMIC
    #: (per-thread MLP detectors driving the partition).
    smt: SMTConfig | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.level <= len(self.levels):
            raise ValueError(
                f"level {self.level} outside 1..{len(self.levels)}")
        if self.width < 1:
            raise ValueError("pipeline width must be >= 1")
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown engine {self.engine!r} (want 'reference' or "
                f"'fast')")
        if self.smt is not None and self.model not in (
                ModelKind.FIXED, ModelKind.DYNAMIC):
            raise ValueError(
                f"SMT supports the fixed and dynamic models, "
                f"not {self.model.value!r}")

    @property
    def max_level(self) -> int:
        return len(self.levels)

    def level_config(self, level: int) -> ResourceLevel:
        """Resource level configuration for a 1-based level number."""
        return level_at(level, self.levels)

    @property
    def active_level(self) -> ResourceLevel:
        """The level the model starts at (and stays at, unless DYNAMIC)."""
        return self.level_config(self.level)

    def with_model(self, model: ModelKind, level: int | None = None) -> "ProcessorConfig":
        """A copy of this configuration running a different model."""
        return replace(self, model=model,
                       level=self.level if level is None else level)


def _encode_enum(obj: object) -> object:
    if isinstance(obj, Enum):
        return obj.value
    raise TypeError(f"cannot canonicalise {obj!r} in a config fingerprint")


@lru_cache(maxsize=None)
def config_fingerprint(config: ProcessorConfig) -> str:
    """Stable content hash over every *model* field of a processor config.

    Canonical form: the nested-dataclass dict, JSON-encoded with sorted
    keys (enums by value, tuples as lists).  Two configs share a
    fingerprint iff they are field-for-field identical, so the
    fingerprint is a collision-free simulation cache key component —
    unlike hand-picked field subsets, it cannot silently alias configs
    that differ in DRAM latency, prefetcher kind, or any future field.

    The one exclusion is ``engine``: execution engines are behaviourally
    identical by contract (the engine-equivalence oracle), so results
    computed by either must share cache entries — a warm cache populated
    with one engine fully serves the other.

    Configs are frozen (hashable), so fingerprints are memoised.
    """
    fields = asdict(config)
    del fields["engine"]
    if fields.get("smt") is None:
        # Every pre-SMT config fingerprints exactly as it always did, so
        # existing on-disk result-store entries stay addressable.
        del fields["smt"]
    payload = json.dumps(fields, sort_keys=True,
                         default=_encode_enum, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def base_config() -> ProcessorConfig:
    """The conventional (base) processor: fixed level-1 window (Table 1)."""
    return ProcessorConfig(model=ModelKind.FIXED, level=1)


def fixed_config(level: int) -> ProcessorConfig:
    """Fixed-size model at ``level`` with pipelined resources."""
    return ProcessorConfig(model=ModelKind.FIXED, level=level)


def ideal_config(level: int) -> ProcessorConfig:
    """Ideal model: level's sizes but non-pipelined and penalty-free."""
    return ProcessorConfig(model=ModelKind.IDEAL, level=level)


def dynamic_config(max_level: int = 3) -> ProcessorConfig:
    """Dynamic resizing model: starts at level 1, may grow to ``max_level``."""
    return ProcessorConfig(model=ModelKind.DYNAMIC, level=max_level)


def runahead_config() -> ProcessorConfig:
    """Runahead comparator: base window plus runahead execution."""
    return ProcessorConfig(model=ModelKind.RUNAHEAD, level=1)


def smt_config(threads: int = 2, partition: str = "mlp",
               fetch: str = "mlp", level: int = 3) -> ProcessorConfig:
    """SMT processor: ``threads`` contexts sharing one ``level`` window.

    The ``mlp`` partition needs live per-thread phase detectors, so it
    runs as the DYNAMIC model; the static partitions (``equal``,
    ``shared``) run as FIXED — with one thread and the ``equal``
    partition this is bit-identical to ``fixed_config(level)``, the
    property the ``verify smt`` oracle suite pins.
    """
    model = ModelKind.DYNAMIC if partition == "mlp" else ModelKind.FIXED
    return ProcessorConfig(
        model=model, level=level,
        smt=SMTConfig(threads=threads, partition=partition, fetch=fetch))
