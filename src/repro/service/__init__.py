"""Simulation service layer: async job API over the campaign machinery.

``python -m repro.service serve`` turns the one-shot simulation stack
into a long-lived HTTP service — jobs as JSON, deduplicated by the
campaign layer's content addresses, executed on a process pool into the
shared :class:`~repro.experiments.cache.ResultStore`, observable via
``/metrics`` and per-job event streams.  See ``docs/serving.md``.
"""

from repro.service.client import QueueFull, ServiceClient, ServiceError
from repro.service.jobs import Job, ValidationError, build_spec, result_to_json
from repro.service.metrics import ServiceMetrics, parse_exposition
from repro.service.server import SimulationService


def __getattr__(name):
    # lazy: importing the package from `python -m repro.service.loadgen`
    # must not pre-load the loadgen module (runpy would warn and run a
    # second copy)
    if name in ("LoadReport", "run_load"):
        from repro.service import loadgen
        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Job",
    "LoadReport",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SimulationService",
    "ValidationError",
    "build_spec",
    "parse_exposition",
    "result_to_json",
    "run_load",
]
