"""Service metrics: counters, gauges and per-stage latency percentiles.

Rendered in the Prometheus text exposition format by ``GET /metrics``.
Latency distributions ride on the telemetry layer's
:class:`~repro.telemetry.profiler.LatencyReservoir` — the same
reservoir the load generator uses for its report, so a scrape of the
server and the client-side report speak the same percentiles.
"""

from __future__ import annotations

import time

from repro.telemetry.profiler import LatencyReservoir

#: Pipeline of a job through the service, each with its own latency
#: distribution: request validation, time spent queued, execution
#: (wall-clock including retries), and end-to-end.
STAGES = ("validate", "queue_wait", "execute", "total")

_COUNTERS = (
    "jobs_submitted", "jobs_completed", "jobs_failed", "jobs_rejected",
    "jobs_dropped_on_drain", "cache_hits", "coalesced", "simulations",
    "retries", "timeouts", "requests", "bad_requests",
)


class ServiceMetrics:
    """Mutable metric state for one service process."""

    def __init__(self) -> None:
        self.started = time.time()
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}
        self.stage_latency: dict[str, LatencyReservoir] = {
            stage: LatencyReservoir() for stage in STAGES}
        self.worker_busy_seconds = 0.0
        #: live gauges, installed by the server: name -> zero-arg callable
        self.gauges: dict[str, object] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        # auto-vivifying: topology-specific counters (the cluster
        # coordinator's lease/requeue family) join the exposition on
        # first increment; the _COUNTERS tuple only pre-seeds the
        # common ones to zero so they render before first use.
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, stage: str, seconds: float) -> None:
        self.stage_latency[stage].record(seconds)

    # ------------------------------------------------------------------

    def cache_hit_rate(self) -> float:
        """Jobs served without simulating (store hits + coalesced) as a
        share of all completed work."""
        served = (self.counters["cache_hits"] + self.counters["coalesced"]
                  + self.counters["simulations"])
        if not served:
            return 0.0
        return (self.counters["cache_hits"]
                + self.counters["coalesced"]) / served

    def render(self) -> str:
        """Text exposition: ``repro_service_*`` gauges and counters."""
        lines = [
            "# repro.service metrics (text exposition format)",
            "repro_service_up 1",
            f"repro_service_uptime_seconds "
            f"{time.time() - self.started:.3f}",
        ]
        for name, fn in sorted(self.gauges.items()):
            value = fn() if callable(fn) else fn
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, float):
                lines.append(f"repro_service_{name} {value:.6f}")
            else:
                lines.append(f"repro_service_{name} {value}")
        for name, value in sorted(self.counters.items()):
            lines.append(f"repro_service_{name}_total {value}")
        lines.append(f"repro_service_cache_hit_rate "
                     f"{self.cache_hit_rate():.6f}")
        lines.append(f"repro_service_worker_busy_seconds_total "
                     f"{self.worker_busy_seconds:.6f}")
        for stage in STAGES:
            reservoir = self.stage_latency[stage]
            base = "repro_service_stage_latency_seconds"
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'{base}{{stage="{stage}",quantile="{q}"}} '
                    f"{reservoir.percentile(q):.6f}")
            lines.append(f'{base}_count{{stage="{stage}"}} '
                         f"{reservoir.count}")
            lines.append(f'{base}_sum{{stage="{stage}"}} '
                         f"{reservoir.total:.6f}")
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """Parse a ``render()`` payload back into ``{name: value}``.

    Labelled series keep their label string:
    ``repro_service_stage_latency_seconds{stage="total",quantile="0.5"}``.
    Used by the client's ``metrics()`` and the CI assertions — the
    service is also its own consumer, so the format cannot rot.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values
