"""The cluster worker agent: pull jobs, simulate, push results.

``python -m repro.service worker --coordinator URL`` runs one worker
node.  The agent registers with the coordinator, then loops: lease up
to ``slots`` jobs (long-polling when idle, heartbeating to renew its
leases when busy), execute each through the exact campaign worker
function (:func:`repro.experiments.parallel._run_job`), push the
result into its **tiered store** — local ``.simcache`` tier first,
written back to the shared store the coordinator reads — and report
completion.

Placement affinity comes from the store: the agent advertises the
shard prefixes (``key[:2]``) its local tier holds, refreshed on every
lease call, so the coordinator can route jobs whose cache neighbours
already live here.  Read-through makes the affinity self-reinforcing:
a shared-store hit is promoted into the local tier and widens the
advertised shards.

Execution runs on daemon threads so the agent keeps renewing leases
while a simulation grinds (a slot's simulation is pure Python; the
heartbeat's sleeps and socket I/O release the GIL).  SIGTERM/SIGINT
finish the running jobs, deregister (requeueing nothing — held work
completes) and exit; SIGKILL is the chaos case the coordinator's
lease-timeout requeue exists for, and the atomic store writes
guarantee it never leaves a torn entry.

Before executing, the agent re-derives the :class:`JobSpec` from the
shipped request payload and checks the content address matches the
coordinator's — a mismatch means coordinator/worker version skew
(different ``SIM_VERSION``), and the job is failed loudly rather than
poisoning the shared store with wrong-version results.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time

from repro.experiments.cache import TieredResultStore, telemetry_dir
from repro.experiments.parallel import _run_job
from repro.service.client import ClusterClient, QueueFull, ServiceError
from repro.service.jobs import ValidationError, build_spec

__all__ = ["WorkerAgent", "parse_coordinator"]


def parse_coordinator(url: str) -> tuple[str, int]:
    """``http://host:port``, ``host:port`` or bare ``host`` → address."""
    trimmed = url.strip()
    for scheme in ("http://", "https://"):
        if trimmed.startswith(scheme):
            trimmed = trimmed[len(scheme):]
    trimmed = trimmed.rstrip("/")
    host, sep, port = trimmed.partition(":")
    if not host:
        raise ValueError(f"bad coordinator address: {url!r}")
    return host, int(port) if sep else 8321


class WorkerAgent:
    """One worker node: lease loop, slot threads, tiered store."""

    def __init__(self, coordinator: str, *, name: str | None = None,
                 slots: int = 1, cache_dir: str | None = None,
                 shared_dir: str | None = None, engine: str | None = None,
                 lease_wait: float = 2.0, retry_interval: float = 1.0) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        host, port = parse_coordinator(coordinator)
        self.client = ClusterClient(host, port, timeout=60.0)
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.slots = slots
        #: local tier location; defaults to a per-worker directory so
        #: several agents on one box do not share (and therefore do not
        #: skew) each other's affinity shards
        self.cache_dir = cache_dir or f".simcache-{self.name.replace(':', '-')}"
        #: shared tier; None = take the coordinator's answer at
        #: registration (same-box/NFS deployments)
        self.shared_dir = shared_dir
        self.engine = engine
        self.lease_wait = lease_wait
        self.retry_interval = retry_interval
        self.worker_id: str | None = None
        self.lease_ttl = 15.0
        self.store: TieredResultStore | None = None
        self.executed = 0
        self.failed = 0
        self._stop = threading.Event()
        self._running: list[threading.Thread] = []

    # ------------------------------------------------------------- lifecycle

    def stop(self) -> None:
        """Thread-safe graceful-stop signal."""
        self._stop.set()

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # embedder (tests) owns signals
        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, lambda *_: self._stop.set())

    def _register(self) -> bool:
        """Register (retrying until the coordinator answers) and build
        the tiered store from the negotiated shared directory."""
        prefixes = ()
        if self.store is not None:
            prefixes = self.store.shard_prefixes()
        while not self._stop.is_set():
            try:
                answer = self.client.register_worker(
                    name=self.name, slots=self.slots, prefixes=prefixes)
            except ServiceError:
                self._stop.wait(self.retry_interval)
                continue
            self.worker_id = answer["worker_id"]
            self.lease_ttl = float(answer.get("lease_ttl", self.lease_ttl))
            shared = self.shared_dir or answer.get("shared_cache_dir")
            if self.store is None:
                self.store = TieredResultStore(self.cache_dir, shared)
            return True
        return False

    # ------------------------------------------------------------- main loop

    def run(self) -> int:
        """Blocking entry point; returns an exit code."""
        self._install_signal_handlers()
        if not self._register():
            return 1
        print(f"repro.service worker {self.name} ({self.worker_id}): "
              f"serving {self.client.host}:{self.client.port} "
              f"(slots={self.slots}, local={self.store.directory}, "
              f"shared={self.store.shared.directory if self.store.shared else None})",
              flush=True)
        heartbeat = max(0.2, self.lease_ttl / 3)
        draining = False
        while not self._stop.is_set():
            self._running = [t for t in self._running if t.is_alive()]
            free = self.slots - len(self._running)
            try:
                answer = self.client.lease(
                    self.worker_id,
                    prefixes=self.store.shard_prefixes(),
                    max_jobs=free,
                    wait=self.lease_wait if free and not draining else 0.0)
            except ServiceError as exc:
                if getattr(exc, "status", 0) == 404:
                    # coordinator restarted and forgot us: re-register
                    if not self._register():
                        break
                    continue
                self._stop.wait(self.retry_interval)
                continue
            draining = bool(answer.get("draining"))
            for grant in answer.get("jobs", ()):
                thread = threading.Thread(
                    target=self._execute_one, args=(grant,),
                    name=f"worker-slot-{grant['key'][:8]}", daemon=True)
                self._running.append(thread)
                thread.start()
            if draining and not self._running:
                break  # coordinator is shutting down and we are idle
            if not free:
                self._stop.wait(heartbeat)  # busy: heartbeat cadence
            elif not answer.get("jobs") and (draining
                                             or self.lease_wait <= 0):
                # idle without a server-side long poll to pace us
                self._stop.wait(min(heartbeat, 0.2))
        return self._shutdown()

    def _shutdown(self) -> int:
        for thread in self._running:
            thread.join(timeout=max(60.0, self.lease_ttl * 4))
        try:
            if self.worker_id is not None:
                self.client.deregister(self.worker_id)
        except ServiceError:
            pass
        print(f"repro.service worker {self.name}: exiting "
              f"({self.executed} simulated, {self.failed} failed)",
              flush=True)
        return 0

    # ------------------------------------------------------------- execution

    def _execute_one(self, grant: dict) -> None:
        key = grant["key"]
        started = time.perf_counter()
        try:
            spec = build_spec(
                grant.get("payload") or {},
                telemetry_dir=telemetry_dir(self.store.shared),
                engine=self.engine)
            if spec.key != key:
                raise ValidationError(
                    f"content-address mismatch: coordinator says "
                    f"{key[:12]}…, this worker derives {spec.key[:12]}… "
                    f"(simulator version skew?)")
            # read-through: another worker (or a previous campaign) may
            # already have produced this key — then the lease is served
            # from the store and nothing simulates twice cluster-wide
            if self.store.get(key) is None:
                __, result, __busy = _run_job(spec)
                self.store.put(key, result)
                self.executed += 1
            self._report(key, ok=True,
                         busy=time.perf_counter() - started)
        except Exception as exc:
            self.failed += 1
            self._report(key, ok=False,
                         error=f"{type(exc).__name__}: {exc}",
                         busy=time.perf_counter() - started)

    def _report(self, key: str, *, ok: bool, error: str | None = None,
                busy: float = 0.0) -> None:
        deadline = time.monotonic() + max(30.0, self.lease_ttl * 2)
        while time.monotonic() < deadline:
            try:
                self.client.complete(self.worker_id, key, ok=ok,
                                     error=error, busy_seconds=busy)
                return
            except QueueFull:
                time.sleep(self.retry_interval)
            except ServiceError as exc:
                if getattr(exc, "status", 0) == 404:
                    return  # coordinator forgot us; lease will requeue
                time.sleep(self.retry_interval)
            if self._stop.is_set():
                return
