"""The distributed campaign fabric: coordinator/worker serving.

One coordinator fronts the same client job API as the single-box
server (`src/repro/service/server.py`); many worker agents pull jobs
over HTTP with content-address-affine work-stealing, execute them
through the campaign machinery, and push results through tiered
stores (local tier → shared store) back to the coordinator.  Dedup,
coalescing and admission control all generalise cluster-wide because
every node speaks the same ``result_key`` content addresses.

See ``docs/serving.md`` ("The distributed fabric") for the topology,
the lease/requeue protocol and the store tiering.
"""

from repro.service.cluster.coordinator import Coordinator
from repro.service.cluster.worker import WorkerAgent, parse_coordinator

__all__ = ["Coordinator", "WorkerAgent", "parse_coordinator"]
