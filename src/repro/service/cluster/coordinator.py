"""The cluster coordinator: many-node serving behind one job API.

``python -m repro.service coordinator`` fronts the exact client API of
the single-box server (``POST /v1/jobs`` and friends — see
:mod:`repro.service.frontend`), but executes nothing itself: registered
workers (:mod:`repro.service.cluster.worker`) pull jobs over HTTP,
execute them through the campaign machinery, push results into the
shared :class:`~repro.experiments.cache.ResultStore`, and report back.
Because every topology shares the same ``result_key`` content
addresses and the same store, dedup is *cluster-wide*: N workers
serving a duplicate-heavy stream run each unique simulation exactly
once, and every digest is bit-identical to a single-node run.

The worker protocol (all JSON over POST):

* ``/v1/workers/register`` ``{name, slots, prefixes}`` →
  ``{worker_id, lease_ttl, shared_cache_dir}``
* ``/v1/workers/<id>/lease`` ``{prefixes, max, wait}`` → up to ``max``
  granted jobs ``{key, job_id, payload, attempt}``.  Also the
  heartbeat: every call renews the worker's held leases (``max: 0`` is
  a pure renewal).  With ``wait > 0`` the call long-polls until work
  arrives or the wait expires.
* ``/v1/workers/<id>/complete`` ``{key, ok, error?, busy_seconds?}`` —
  on success the coordinator reads the result back from the shared
  store (the worker wrote it there first; results never ride this
  request) and completes the job plus everything coalesced onto it.
* ``/v1/workers/<id>/deregister`` — graceful exit: the worker's held
  leases are requeued immediately instead of waiting for expiry.

Placement is **work-stealing with content-address affinity**: a worker
advertises the shard prefixes (``key[:2]``) its local cache tier
holds, and the grant loop prefers pending jobs inside those shards —
jobs whose cache neighbours the worker already serves — before
stealing arbitrary work.  Affinity is a preference, never a
constraint, so no job waits for a "right" worker.

Fault model: every grant carries a **lease**.  A worker that stops
renewing (killed mid-job, wedged, partitioned) has its leases expire;
the reaper requeues the job (``attempts`` + a ``requeued`` event) up
to ``max_requeues`` times, then fails it.  Store writes are atomic, so
a worker killed mid-execution leaves no torn entry — the requeued
execution is deterministic and produces the identical result.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.experiments.cache import ResultStore, default_cache_dir
from repro.service.frontend import JobFrontendBase
from repro.service.jobs import Job

__all__ = ["Coordinator"]

#: coordinator-specific counters, pre-seeded so they render as zero
_CLUSTER_COUNTERS = (
    "workers_registered", "workers_lost", "leases_granted",
    "leases_expired", "requeues", "affinity_hits", "affinity_misses",
    "stale_completions",
)


@dataclass
class WorkerInfo:
    """One registered worker, as the coordinator sees it."""

    id: str
    name: str
    slots: int
    prefixes: frozenset[str] = frozenset()
    last_seen: float = 0.0
    held: set[str] = field(default_factory=set)

    def as_json(self) -> dict:
        return {"id": self.id, "name": self.name, "slots": self.slots,
                "held": sorted(self.held),
                "prefixes": len(self.prefixes)}


@dataclass
class PendingJob:
    """One execution waiting for (or held by) a worker."""

    key: str
    payload: dict
    job: Job
    attempts: int = 0


@dataclass
class Lease:
    """A grant of one pending job to one worker, with an expiry."""

    pending: PendingJob
    worker_id: str
    deadline: float


class Coordinator(JobFrontendBase):
    """Cluster front end: admission, placement, leases, completion."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8321,
                 queue_limit: int = 256, lease_ttl: float = 15.0,
                 max_requeues: int = 2, cache_dir: str | None = "",
                 store: ResultStore | None = None,
                 drain_grace: float | None = None) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if store is None:
            directory = (default_cache_dir() if cache_dir == ""
                         else cache_dir)
            if directory is None:
                raise ValueError(
                    "the coordinator needs an on-disk store: workers "
                    "deliver results through it")
            store = ResultStore(directory)
        if store.directory is None:
            raise ValueError("the coordinator needs an on-disk store")
        super().__init__(host=host, port=port, queue_limit=queue_limit,
                         store=store)
        self.lease_ttl = lease_ttl
        self.max_requeues = max_requeues
        #: how long a drain waits for leased jobs before giving up on
        #: them (default: one lease expiry + one requeue-free margin)
        self.drain_grace = (drain_grace if drain_grace is not None
                            else lease_ttl * 1.5)
        self.workers: dict[str, WorkerInfo] = {}
        self._worker_seq = 0
        self._pending: dict[str, PendingJob] = {}  # insertion-ordered
        self._leased: dict[str, Lease] = {}
        self._work_available: asyncio.Event | None = None
        self._reaper: asyncio.Task | None = None
        for name in _CLUSTER_COUNTERS:
            self.metrics.counters.setdefault(name, 0)
        self.metrics.gauges.update({
            "pending": lambda: len(self._pending),
            "leased": lambda: len(self._leased),
            "workers_live": lambda: len(self.workers),
            "cluster_slots": self._total_slots,
            "queue_limit": lambda: self.queue_limit,
            "draining": lambda: self.draining,
        })

    # ------------------------------------------------------------- lifecycle

    async def _on_start(self) -> None:
        self._work_available = asyncio.Event()
        self._reaper = asyncio.create_task(self._reaper_loop(),
                                           name="coordinator-reaper")

    async def _on_drain(self) -> None:
        """Stop admission, reject pending jobs, wait for leased ones.

        Mirrors the single-box drain: queued (unleased) work is
        rejected with its followers; work a worker already holds gets
        ``drain_grace`` seconds to complete — the socket stays open
        underneath us, so ``complete`` requests still land.  Leases
        that expire during the grace window are rejected, not
        requeued.
        """
        self.draining = True
        for pending in list(self._pending.values()):
            self._pending.pop(pending.key, None)
            dropped = self._reject_with_followers(pending.job,
                                                  "server draining")
            self.metrics.inc("jobs_dropped_on_drain", dropped)
        deadline = time.monotonic() + self.drain_grace
        while self._leased and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for lease in list(self._leased.values()):
            self._leased.pop(lease.pending.key, None)
            dropped = self._reject_with_followers(
                lease.pending.job, "server draining (lease abandoned)")
            self.metrics.inc("jobs_dropped_on_drain", dropped)
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass

    # --------------------------------------------------------- reaper/leases

    async def _reaper_loop(self) -> None:
        period = max(0.05, min(1.0, self.lease_ttl / 4))
        while True:
            await asyncio.sleep(period)
            now = time.monotonic()
            for key, lease in list(self._leased.items()):
                if lease.deadline <= now:
                    self._expire_lease(key, lease)
            # forget workers that stopped heartbeating and hold nothing
            # (their leases expired above); their jobs moved on already
            horizon = now - 3 * self.lease_ttl
            for wid, worker in list(self.workers.items()):
                if worker.last_seen < horizon and not worker.held:
                    del self.workers[wid]
                    self.metrics.inc("workers_lost")

    def _expire_lease(self, key: str, lease: Lease) -> None:
        self._leased.pop(key, None)
        worker = self.workers.get(lease.worker_id)
        if worker is not None:
            worker.held.discard(key)
        self.metrics.inc("leases_expired")
        self._requeue(lease.pending, reason="lease expired",
                      worker=lease.worker_id)

    def _requeue(self, pending: PendingJob, *, reason: str,
                 worker: str) -> None:
        if self.draining:
            dropped = self._reject_with_followers(pending.job,
                                                  "server draining")
            self.metrics.inc("jobs_dropped_on_drain", dropped)
            return
        # The worker may have finished the write before dying — or a
        # sibling may have raced it there.  A store hit makes the
        # requeue free and keeps "one execution per unique key"
        # observable in the digests.
        result = self.store.get(pending.key)
        if result is not None:
            self.metrics.inc("simulations")
            self._finish_done(pending.job, result)
            return
        if pending.attempts > self.max_requeues:
            self._finish_failed(
                pending.job,
                f"{reason} after {pending.attempts} attempts "
                f"(last worker: {worker})")
            return
        self.metrics.inc("requeues")
        pending.job.set_state("queued", requeued=True, reason=reason,
                              worker=worker)
        self._pending[pending.key] = pending
        self._work_available.set()

    # ----------------------------------------------------- frontend hooks

    def _dispatch(self, job: Job) -> None:
        pending = PendingJob(key=job.spec.key, payload=job.payload or {},
                             job=job)
        job.enqueued_at = time.perf_counter()
        job.add_event("queued")
        self._pending[pending.key] = pending
        if self._work_available is not None:
            self._work_available.set()

    def _outstanding(self) -> int:
        return len(self._pending) + len(self._leased)

    def _total_slots(self) -> int:
        return sum(worker.slots for worker in self.workers.values())

    def _retry_after(self) -> float:
        """Backoff estimate that propagates *cluster* capacity.

        The denominator is the workers' aggregate slot count and the
        per-job cost is the measured mean execution latency they
        reported — so admission pressure on the worker side surfaces
        to the client as a proportionally longer ``Retry-After``
        instead of a flat constant.  May be fractional: a cluster
        draining its backlog in under a second deserves a sub-second
        retry hint.
        """
        execute = self.metrics.stage_latency["execute"]
        per_job = execute.mean if execute.count else 1.0
        slots = max(1, self._total_slots())
        estimate = per_job * max(1, self._outstanding()) / slots
        return max(0.05, round(estimate, 3))

    def _health_extra(self) -> dict:
        return {
            "pending": len(self._pending),
            "leased": len(self._leased),
            "workers": [w.as_json()
                        for w in sorted(self.workers.values(),
                                        key=lambda w: w.id)],
            "cluster_slots": self._total_slots(),
            "lease_ttl": self.lease_ttl,
        }

    # ------------------------------------------------------- worker protocol

    def _register_worker(self, body: dict) -> dict:
        self._worker_seq += 1
        worker = WorkerInfo(
            id=f"w{self._worker_seq:04d}",
            name=str(body.get("name") or f"worker-{self._worker_seq}"),
            slots=max(1, int(body.get("slots", 1))),
            prefixes=frozenset(body.get("prefixes") or ()),
            last_seen=time.monotonic())
        self.workers[worker.id] = worker
        self.metrics.inc("workers_registered")
        return {"worker_id": worker.id, "lease_ttl": self.lease_ttl,
                "shared_cache_dir": self.store.directory,
                "draining": self.draining}

    def _renew_leases(self, worker: WorkerInfo) -> None:
        deadline = time.monotonic() + self.lease_ttl
        for key in worker.held:
            lease = self._leased.get(key)
            if lease is not None and lease.worker_id == worker.id:
                lease.deadline = deadline

    def _take_jobs(self, worker: WorkerInfo, max_jobs: int) -> list[dict]:
        """Grant up to ``max_jobs`` pending jobs to ``worker``,
        affinity-first, FIFO within each class."""
        granted: list[dict] = []
        deadline = time.monotonic() + self.lease_ttl
        while len(granted) < max_jobs and self._pending:
            key = None
            if worker.prefixes:
                for candidate in self._pending:
                    if candidate[:2] in worker.prefixes:
                        key = candidate
                        break
            if key is not None:
                self.metrics.inc("affinity_hits")
            else:
                key = next(iter(self._pending))
                self.metrics.inc("affinity_misses")
            pending = self._pending.pop(key)
            pending.attempts += 1
            self._leased[key] = Lease(pending=pending, worker_id=worker.id,
                                      deadline=deadline)
            worker.held.add(key)
            self.metrics.inc("leases_granted")
            self.metrics.observe(
                "queue_wait", time.perf_counter() - pending.job.enqueued_at)
            pending.job.attempts = pending.attempts
            pending.job.started_at = time.time()
            pending.job.set_state("running", worker=worker.name,
                                  attempt=pending.attempts)
            granted.append({"key": key, "job_id": pending.job.id,
                            "payload": pending.payload,
                            "attempt": pending.attempts})
        if not self._pending and self._work_available is not None:
            self._work_available.clear()
        return granted

    async def _lease_jobs(self, worker: WorkerInfo, body: dict) -> dict:
        worker.last_seen = time.monotonic()
        if "prefixes" in body:
            worker.prefixes = frozenset(body.get("prefixes") or ())
        if "slots" in body:
            worker.slots = max(1, int(body["slots"]))
        self._renew_leases(worker)
        max_jobs = max(0, int(body.get("max", 1)))
        wait = min(30.0, max(0.0, float(body.get("wait", 0.0))))
        granted = self._take_jobs(worker, max_jobs) if max_jobs else []
        if not granted and max_jobs and wait > 0 and not self.draining:
            try:
                await asyncio.wait_for(self._work_available.wait(),
                                       timeout=wait)
            except asyncio.TimeoutError:
                pass
            worker.last_seen = time.monotonic()
            self._renew_leases(worker)
            granted = self._take_jobs(worker, max_jobs)
        return {"jobs": granted, "lease_ttl": self.lease_ttl,
                "draining": self.draining}

    def _complete_job(self, worker: WorkerInfo, body: dict) -> dict:
        worker.last_seen = time.monotonic()
        key = str(body.get("key", ""))
        worker.held.discard(key)
        lease = self._leased.get(key)
        if lease is None or lease.worker_id != worker.id:
            # The lease expired (and was requeued or re-leased) before
            # this report arrived.  The work is not wasted: the result
            # is already in the shared store, and the requeue path
            # (or the re-leased worker's read-through) serves it.
            self.metrics.inc("stale_completions")
            return {"accepted": False, "draining": self.draining}
        self._leased.pop(key, None)
        pending = lease.pending
        if not body.get("ok"):
            # Worker-side failures are deterministic simulation errors
            # (bad config reached a worker, version skew) — retrying
            # elsewhere would fail identically, so fail fast.
            self._finish_failed(pending.job,
                                str(body.get("error") or "worker failure"))
            return {"accepted": True, "draining": self.draining}
        result = self.store.get(key)
        if result is None:
            self._finish_failed(
                pending.job,
                f"worker {worker.name} reported success but the shared "
                f"store has no entry for {key[:12]}…")
            return {"accepted": True, "draining": self.draining}
        busy = float(body.get("busy_seconds", 0.0) or 0.0)
        self.metrics.inc("simulations")
        self.metrics.worker_busy_seconds += busy
        self.metrics.observe("execute", busy if busy > 0 else
                             time.time() - (pending.job.started_at
                                            or pending.job.created))
        self._finish_done(pending.job, result)
        return {"accepted": True, "draining": self.draining}

    def _deregister_worker(self, worker: WorkerInfo) -> dict:
        requeued = 0
        for key in list(worker.held):
            lease = self._leased.get(key)
            worker.held.discard(key)
            if lease is None or lease.worker_id != worker.id:
                continue
            self._leased.pop(key, None)
            self._requeue(lease.pending, reason="worker deregistered",
                          worker=worker.name)
            requeued += 1
        self.workers.pop(worker.id, None)
        return {"requeued": requeued}

    # ------------------------------------------------------------------ HTTP

    async def _route_extra(self, method: str, path: str, body: bytes,
                           writer: asyncio.StreamWriter) -> bool:
        if not path.startswith("/v1/workers"):
            return False
        if method != "POST":
            self._write_response(writer, 405,
                                 {"error": f"{method} not allowed"})
            return True
        try:
            parsed = json.loads(body or b"{}")
            if not isinstance(parsed, dict):
                raise ValueError("body must be an object")
        except (json.JSONDecodeError, ValueError) as exc:
            self.metrics.inc("bad_requests")
            self._write_response(writer, 400,
                                 {"error": f"bad JSON: {exc}"})
            return True
        if path == "/v1/workers/register":
            self._write_response(writer, 200, self._register_worker(parsed))
            return True
        parts = path.split("/")  # ['', 'v1', 'workers', wid, action]
        if len(parts) != 5:
            self._write_response(writer, 404, {"error": "not found"})
            return True
        worker = self.workers.get(parts[3])
        if worker is None:
            # the worker restarted or was reaped: tell it to re-register
            self._write_response(writer, 404, {"error": "unknown worker"})
            return True
        action = parts[4]
        if action == "lease":
            self._write_response(writer, 200,
                                 await self._lease_jobs(worker, parsed))
        elif action == "complete":
            self._write_response(writer, 200,
                                 self._complete_job(worker, parsed))
        elif action == "deregister":
            self._write_response(writer, 200,
                                 self._deregister_worker(worker))
        else:
            self._write_response(writer, 404, {"error": "not found"})
        return True
