"""Entry point: ``python -m repro.service serve|coordinator|worker|loadgen``.

``serve`` runs the single-box HTTP job server in the foreground until
SIGINT or SIGTERM, then drains gracefully (running jobs finish, queued
jobs are rejected, worker processes are reaped).  ``coordinator`` and
``worker`` run the two halves of the distributed fabric
(:mod:`repro.service.cluster`): the coordinator fronts the same job
API without executing anything, workers register against it and pull
jobs.  ``loadgen`` forwards to :mod:`repro.service.loadgen`.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.cache import default_cache_dir


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="run the simulation job server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="0 = pick a free port (printed on startup)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="max outstanding executions (queued + "
                             "running) before 429")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-job execution timeout (seconds)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries after a worker crash")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="result store location (default: "
                             "$REPRO_CACHE_DIR or .simcache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="memory-only store: no persistence, no "
                             "cross-restart dedup, telemetry disabled")
    parser.add_argument("--engine", choices=("reference", "fast"),
                        default=None,
                        help="execution engine for every job (host-speed "
                             "knob; results and cache keys are "
                             "engine-independent)")
    args = parser.parse_args(argv)

    from repro.service.server import SimulationService
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or default_cache_dir())
    service = SimulationService(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, job_timeout=args.timeout,
        max_retries=args.retries, cache_dir=cache_dir,
        engine=args.engine)
    banner = (f"workers={service.workers}, "
              f"queue_limit={service.queue_limit}, "
              f"cache={service.store.directory or 'memory-only'}")
    return _run_foreground(service, banner)


def coordinator_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service coordinator",
        description="run the cluster coordinator (no local execution; "
                    "workers pull jobs and deliver results through the "
                    "shared store)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="0 = pick a free port (printed on startup)")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="max outstanding executions (pending + "
                             "leased) before 429")
    parser.add_argument("--lease-ttl", type=float, default=15.0,
                        help="seconds a worker may hold a job without "
                             "renewing before it is requeued")
    parser.add_argument("--max-requeues", type=int, default=2,
                        help="requeues after lease expiry before a job "
                             "fails")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="shared result store all workers write "
                             "back to (default: $REPRO_CACHE_DIR or "
                             ".simcache)")
    args = parser.parse_args(argv)

    from repro.service.cluster import Coordinator
    service = Coordinator(
        host=args.host, port=args.port, queue_limit=args.queue_limit,
        lease_ttl=args.lease_ttl, max_requeues=args.max_requeues,
        cache_dir=args.cache_dir or default_cache_dir())
    banner = (f"queue_limit={service.queue_limit}, "
              f"lease_ttl={service.lease_ttl}s, "
              f"shared_cache={service.store.directory}")
    return _run_foreground(service, banner)


def worker_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service worker",
        description="run one cluster worker agent")
    parser.add_argument("--coordinator", default="http://127.0.0.1:8321",
                        help="coordinator address (http://host:port)")
    parser.add_argument("--name", default=None,
                        help="worker name (default: host:pid)")
    parser.add_argument("--slots", type=int, default=1,
                        help="concurrent executions this worker offers")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="local store tier (default: "
                             ".simcache-<name>)")
    parser.add_argument("--shared-cache", type=str, default=None,
                        help="shared store tier (default: the path the "
                             "coordinator advertises at registration)")
    parser.add_argument("--engine", choices=("reference", "fast"),
                        default=None,
                        help="execution engine for every job")
    args = parser.parse_args(argv)

    from repro.service.cluster import WorkerAgent
    agent = WorkerAgent(args.coordinator, name=args.name,
                        slots=args.slots, cache_dir=args.cache_dir,
                        shared_dir=args.shared_cache, engine=args.engine)
    return agent.run()


def _run_foreground(service, banner: str) -> int:
    """Serve in the foreground with startup/drain progress lines."""
    import asyncio

    async def _serve() -> None:
        await service.start()
        print(f"repro.service: serving on "
              f"http://{service.host}:{service.port} ({banner})",
              flush=True)
        try:
            await service._stop_requested.wait()
            print("repro.service: draining (running jobs finish, "
                  "queued jobs are rejected) ...", flush=True)
        finally:
            await service.drain()
            print("repro.service: drained, bye", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = ("serve", "coordinator", "worker", "loadgen")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] not in _COMMANDS:
        print("usage: python -m repro.service "
              "serve|coordinator|worker|loadgen [options]\n"
              "       (--help after the subcommand for its options)",
              file=sys.stderr)
        return 2
    if argv[0] == "serve":
        return serve_main(argv[1:])
    if argv[0] == "coordinator":
        return coordinator_main(argv[1:])
    if argv[0] == "worker":
        return worker_main(argv[1:])
    from repro.service.loadgen import main as loadgen_main
    return loadgen_main(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
