"""Entry point: ``python -m repro.service serve|loadgen``.

``serve`` runs the HTTP job server in the foreground until SIGINT or
SIGTERM, then drains gracefully (running jobs finish, queued jobs are
rejected, worker processes are reaped).  ``loadgen`` forwards to
:mod:`repro.service.loadgen`.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.cache import default_cache_dir


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="run the simulation job server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="0 = pick a free port (printed on startup)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="max outstanding executions (queued + "
                             "running) before 429")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-job execution timeout (seconds)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries after a worker crash")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="result store location (default: "
                             "$REPRO_CACHE_DIR or .simcache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="memory-only store: no persistence, no "
                             "cross-restart dedup, telemetry disabled")
    parser.add_argument("--engine", choices=("reference", "fast"),
                        default=None,
                        help="execution engine for every job (host-speed "
                             "knob; results and cache keys are "
                             "engine-independent)")
    args = parser.parse_args(argv)

    from repro.service.server import SimulationService
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or default_cache_dir())
    service = SimulationService(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, job_timeout=args.timeout,
        max_retries=args.retries, cache_dir=cache_dir,
        engine=args.engine)

    import asyncio

    async def _serve() -> None:
        await service.start()
        print(f"repro.service: serving on "
              f"http://{service.host}:{service.port} "
              f"(workers={service.workers}, "
              f"queue_limit={service.queue_limit}, "
              f"cache={service.store.directory or 'memory-only'})",
              flush=True)
        try:
            await service._stop_requested.wait()
            print("repro.service: draining (running jobs finish, "
                  "queued jobs are rejected) ...", flush=True)
        finally:
            await service.drain()
            print("repro.service: drained, bye", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] not in ("serve", "loadgen"):
        print("usage: python -m repro.service serve|loadgen [options]\n"
              "       (--help after the subcommand for its options)",
              file=sys.stderr)
        return 2
    if argv[0] == "serve":
        return serve_main(argv[1:])
    from repro.service.loadgen import main as loadgen_main
    return loadgen_main(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
