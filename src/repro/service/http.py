"""Shared asyncio HTTP plumbing for the serving layer.

Both serving processes — the single-box job server
(:class:`repro.service.server.SimulationService`) and the cluster
coordinator (:class:`repro.service.cluster.Coordinator`) — are
stdlib-only asyncio HTTP servers with the same lifecycle: bind a
socket, serve until a stop is requested (SIGINT/SIGTERM or an embedder
calling :meth:`HttpServiceBase.request_stop`), then drain gracefully.
This module holds exactly that shared skeleton; what a request *does*
lives in the subclasses' ``_route`` implementations.

The request parser is deliberately minimal (one request per
connection, ``Connection: close``): the protocol is JSON-over-HTTP
between our own client and servers, not a general web server.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpServiceBase:
    """Lifecycle + connection plumbing of one asyncio HTTP service.

    Subclasses implement::

        async def _route(method, path, body, writer)   # request logic
        async def _on_start()                          # build resources
        async def _on_drain()                          # graceful teardown

    ``_on_drain`` runs before the listening socket closes, so a
    draining service can keep answering the requests its own shutdown
    protocol needs (e.g. workers reporting their last results).
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8321) -> None:
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_requested: asyncio.Event | None = None
        self._drained = False
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------- lifecycle

    async def _on_start(self) -> None:
        """Build subclass resources; runs before the socket binds."""

    async def _on_drain(self) -> None:
        """Graceful teardown; runs before the socket closes."""

    async def start(self) -> None:
        """Bind the socket, build resources, install signal handlers."""
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        await self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        self._ready.set()

    async def run_async(self) -> None:
        """Serve until a stop is requested, then drain and return."""
        try:
            await self.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        try:
            await self._stop_requested.wait()
        finally:
            await self.drain()
            self._loop = None

    def run(self) -> None:
        """Blocking entry point (``python -m repro.service ...``)."""
        asyncio.run(self.run_async())

    def start_in_thread(self) -> threading.Thread:
        """Run the service on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self._run_quietly,
                                  name=type(self).__name__, daemon=True)
        thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}")
        return thread

    def _run_quietly(self) -> None:
        try:
            self.run()
        except BaseException:
            # run_async already recorded the startup error; a crash
            # after startup surfaces through the joined thread's logs
            pass

    def request_stop(self) -> None:
        """Thread-safe stop signal: begin the graceful drain."""
        loop = self._loop
        if loop is not None and self._stop_requested is not None:
            loop.call_soon_threadsafe(self._stop_requested.set)

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return  # not the main thread: embedder owns signals

    async def drain(self) -> None:
        """Run the subclass teardown, then close the listening socket."""
        if self._drained:
            return
        self._drained = True
        await self._on_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    ValueError, ConnectionError):
                return
            self.on_request()
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:
            try:
                self._write_response(writer, 500,
                                     {"error": f"internal: {exc}"})
                await writer.drain()
            except Exception:
                pass
            print(f"service: request handler error: {exc!r}",
                  file=sys.stderr)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def on_request(self) -> None:
        """Hook: called once per successfully parsed request."""

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        raise NotImplementedError

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: dict | str, *,
                        extra_headers: dict | None = None) -> None:
        if isinstance(body, str):
            payload = body.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            payload = (json.dumps(body, sort_keys=True) + "\n").encode()
            content_type = "application/json"
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
