"""The client-facing job API, shared by every serving topology.

A single-box server executes admitted jobs on a local process pool; a
cluster coordinator hands them to registered workers.  Everything a
*client* sees — validation, content-addressed dedup against the result
store, in-flight coalescing, atomic batch admission with 429 +
``Retry-After``, job records, the NDJSON event stream, health and
metrics — is identical, and lives here.  Subclasses provide three
hooks:

* :meth:`_dispatch` — send one admitted job toward execution;
* :meth:`_outstanding` — executions currently queued or running, for
  admission control;
* :meth:`_retry_after` — the backoff estimate a rejected client gets
  (seconds; may be fractional — sub-second capacity deserves a
  sub-second retry hint, and the client parses fractions).
"""

from __future__ import annotations

import asyncio
import json
import time
from time import perf_counter

from repro.experiments.cache import ResultStore, telemetry_dir
from repro.service.http import HttpServiceBase
from repro.service.jobs import Job, ValidationError, build_spec
from repro.service.metrics import ServiceMetrics
from repro.workloads import (all_program_names,
                             workload_namespaces)

#: terminal job records kept for GET /v1/jobs/<id>; oldest are evicted
#: past this many total records so a long-lived server stays bounded.
MAX_JOB_RECORDS = 10_000


def format_retry_after(seconds: float) -> str:
    """``Retry-After`` header value: integral seconds stay integral
    (the classic header format), fractional estimates keep their
    precision — the client parses either."""
    if float(seconds).is_integer():
        return str(int(seconds))
    return f"{seconds:.3f}"


class JobFrontendBase(HttpServiceBase):
    """HTTP job API over an abstract execution fabric."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8321,
                 queue_limit: int = 32, store: ResultStore,
                 engine: str | None = None) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        super().__init__(host=host, port=port)
        self.queue_limit = queue_limit
        #: execution engine every admitted job runs on (None = config
        #: default).  A pure host-speed knob: results, digests and
        #: store keys are engine-independent, so switching it never
        #: invalidates the cache or the dedup-by-key path.
        self.engine = engine
        self.store = store
        self.metrics = ServiceMetrics()
        self.draining = False
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._job_seq = 0

    def on_request(self) -> None:
        self.metrics.inc("requests")

    # ------------------------------------------------------- subclass hooks

    def _dispatch(self, job: Job) -> None:
        """Send one admitted (non-cached, non-coalesced) job toward
        execution.  ``job.spec.key`` is already registered in
        ``_by_key`` as the in-flight primary."""
        raise NotImplementedError

    def _outstanding(self) -> int:
        """Executions currently queued or running (admission control)."""
        raise NotImplementedError

    def _retry_after(self) -> float:
        """Seconds until an execution slot plausibly frees up."""
        raise NotImplementedError

    def _health_extra(self) -> dict:
        """Topology-specific fields merged into ``GET /healthz``."""
        return {}

    # ------------------------------------------------------- job bookkeeping

    def _new_job(self, spec, payload: dict | None = None) -> Job:
        self._job_seq += 1
        job = Job(f"j{self._job_seq:06d}", spec, payload=payload)
        self.jobs[job.id] = job
        return job

    def _remember_finished(self, job: Job) -> None:
        self._finished_order.append(job.id)
        while len(self.jobs) > MAX_JOB_RECORDS and self._finished_order:
            self.jobs.pop(self._finished_order.pop(0), None)

    def _finish_done(self, job: Job, result, *, cached: bool = False) -> None:
        if self._by_key.get(job.spec.key) is job:
            del self._by_key[job.spec.key]
        job.finish_done(result, cached=cached)
        self.metrics.observe("total", time.time() - job.created)
        self.metrics.inc("jobs_completed")
        self._remember_finished(job)
        for follower in job.followers:
            follower.finish_done(result, coalesced=True)
            self.metrics.observe("total", time.time() - follower.created)
            self.metrics.inc("jobs_completed")
            self._remember_finished(follower)

    def _finish_failed(self, job: Job, error: str) -> None:
        if self._by_key.get(job.spec.key) is job:
            del self._by_key[job.spec.key]
        job.finish_failed(error)
        self.metrics.inc("jobs_failed")
        self._remember_finished(job)
        for follower in job.followers:
            follower.finish_failed(error)
            self.metrics.inc("jobs_failed")
            self._remember_finished(follower)

    def _reject_with_followers(self, job: Job, reason: str) -> int:
        """Drain casualty: reject a primary and everything coalesced
        onto it; returns how many records were rejected."""
        self._by_key.pop(job.spec.key, None)
        casualties = [job] + job.followers
        for casualty in casualties:
            casualty.finish_rejected(reason)
            self._remember_finished(casualty)
        return len(casualties)

    # ------------------------------------------------------------ submission

    def submit_batch(self, payloads: list[dict]) -> tuple[int, dict, dict]:
        """Admit (or reject) one batch; returns (status, headers, body)."""
        started = perf_counter()
        if self.draining:
            return 503, {}, {"error": "server draining"}
        if not payloads:
            return 400, {}, {"errors": [{"error": "empty batch"}]}
        tdir = telemetry_dir(self.store)
        specs = []
        errors = []
        for index, payload in enumerate(payloads):
            try:
                specs.append(build_spec(payload, telemetry_dir=tdir,
                                        engine=self.engine))
            except ValidationError as exc:
                errors.append({"index": index, "error": str(exc)})
        if errors:
            self.metrics.inc("bad_requests")
            return 400, {}, {"errors": errors}
        self.metrics.observe("validate", perf_counter() - started)

        # Atomic admission: count distinct executions this batch needs
        # (cache hits and coalesced duplicates are free), then either
        # admit everything or reject the whole request with 429.
        needed = set()
        for spec in specs:
            primary = self._by_key.get(spec.key)
            if primary is not None and not primary.terminal:
                continue
            if self.store.contains(spec.key):
                continue
            needed.add(spec.key)
        outstanding = self._outstanding()
        if needed and outstanding + len(needed) > self.queue_limit:
            self.metrics.inc("jobs_rejected", len(payloads))
            retry_after = self._retry_after()
            return (429, {"Retry-After": format_retry_after(retry_after)},
                    {"error": "queue full",
                     "outstanding": outstanding,
                     "queue_limit": self.queue_limit,
                     "retry_after": retry_after})

        self.metrics.inc("jobs_submitted", len(payloads))
        batch = []
        for spec, payload in zip(specs, payloads):
            job = self._new_job(spec, payload)
            primary = self._by_key.get(spec.key)
            if primary is not None and not primary.terminal:
                job.coalesced = True
                job.add_event("queued", coalesced_into=primary.id)
                primary.followers.append(job)
                self.metrics.inc("coalesced")
            elif self.store.contains(spec.key):
                result = self.store.get(spec.key)
                if result is not None:
                    self.metrics.inc("cache_hits")
                    self._finish_done(job, result, cached=True)
                else:  # entry vanished between contains() and get()
                    self._admit(job)
            else:
                self._admit(job)
            batch.append(job.as_json(include_result=False))
        return 200, {}, {"jobs": batch}

    def _admit(self, job: Job) -> None:
        self._by_key[job.spec.key] = job
        self._dispatch(job)

    # ------------------------------------------------------------------ HTTP

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if await self._route_extra(method, path, body, writer):
            pass
        elif path == "/healthz" and method == "GET":
            self._write_response(writer, 200, self._health())
        elif path == "/metrics" and method == "GET":
            self._write_response(writer, 200, self.metrics.render())
        elif path == "/v1/programs" and method == "GET":
            self._write_response(writer, 200,
                                 {"programs": list(all_program_names()),
                                  "namespaces": workload_namespaces()})
        elif path == "/v1/jobs" and method == "POST":
            try:
                parsed = json.loads(body or b"null")
            except json.JSONDecodeError as exc:
                self.metrics.inc("bad_requests")
                self._write_response(writer, 400,
                                     {"errors": [{"error": f"bad JSON: {exc}"}]})
                await writer.drain()
                return
            if isinstance(parsed, dict) and "jobs" in parsed:
                payloads = parsed["jobs"]
                if not isinstance(payloads, list):
                    payloads = [payloads]
            elif isinstance(parsed, dict):
                payloads = [parsed]
            else:
                payloads = []
            status, headers, response = self.submit_batch(payloads)
            self._write_response(writer, status, response,
                                 extra_headers=headers)
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job = self.jobs.get(rest[:-len("/events")])
                if job is None:
                    self._write_response(writer, 404,
                                         {"error": "no such job"})
                else:
                    await self._stream_events(writer, job)
                    return
            else:
                job = self.jobs.get(rest)
                if job is None:
                    self._write_response(writer, 404,
                                         {"error": "no such job"})
                else:
                    self._write_response(writer, 200, job.as_json())
        elif path in ("/healthz", "/metrics", "/v1/jobs", "/v1/programs"):
            self._write_response(writer, 405,
                                 {"error": f"{method} not allowed"})
        else:
            self._write_response(writer, 404, {"error": "not found"})
        await writer.drain()

    async def _route_extra(self, method: str, path: str, body: bytes,
                           writer: asyncio.StreamWriter) -> bool:
        """Topology-specific endpoints (e.g. the coordinator's worker
        protocol).  Return True when the request was handled — the
        response must already be written (not yet drained)."""
        return False

    def _health(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        view = {
            "status": "draining" if self.draining else "ok",
            "queue_limit": self.queue_limit,
            "jobs": states,
            "uptime_seconds": round(time.time() - self.metrics.started, 3),
            "cache_dir": self.store.directory,
        }
        view.update(self._health_extra())
        return view

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job: Job) -> None:
        """Chunked NDJSON: one line per job event, until terminal."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                data = (json.dumps(job.events[sent], sort_keys=True)
                        + "\n").encode()
                writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
                sent += 1
            await writer.drain()
            if job.terminal:
                break
            await job.wait_update()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
