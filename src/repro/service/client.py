"""Thin stdlib client for the simulation service.

Speaks the JSON protocol of :mod:`repro.service.server` over plain
``http.client`` connections — one connection per request, no external
dependencies.  Used by the test suite, the CI service job and the load
generator; the documented examples in ``docs/serving.md`` are written
against this module.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.service.jobs import TERMINAL_STATES
from repro.service.metrics import parse_exposition


class ServiceError(RuntimeError):
    """The server answered with an error (or not at all)."""

    def __init__(self, message: str, status: int = 0,
                 body: object = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class QueueFull(ServiceError):
    """Admission control rejected the batch (HTTP 429)."""

    def __init__(self, message: str, retry_after: float,
                 body: object = None) -> None:
        super().__init__(message, status=429, body=body)
        self.retry_after = retry_after


class ServiceClient:
    """Synchronous client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------- transport

    def _request(self, method: str, path: str, payload: object = None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"{method} {path} failed: {exc}") from exc
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def _json(self, method: str, path: str, payload: object = None) -> dict:
        status, headers, data = self._request(method, path, payload)
        try:
            body = json.loads(data) if data else {}
        except json.JSONDecodeError:
            body = {"raw": data.decode("utf-8", "replace")}
        if status == 429:
            raise QueueFull(f"queue full at {path}",
                            retry_after=float(headers.get("Retry-After", 1)),
                            body=body)
        if status >= 400:
            raise ServiceError(f"{method} {path} -> {status}: {body}",
                               status=status, body=body)
        return body

    # ------------------------------------------------------------------- API

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def programs(self) -> list[str]:
        return self._json("GET", "/v1/programs")["programs"]

    def metrics_text(self) -> str:
        status, __, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> {status}", status=status)
        return data.decode("utf-8")

    def metrics(self) -> dict[str, float]:
        return parse_exposition(self.metrics_text())

    def submit(self, jobs) -> list[dict]:
        """Submit one job dict or a list; returns the job records.

        Raises :class:`QueueFull` when admission control rejects the
        batch — ``exc.retry_after`` is the server's backoff estimate.
        """
        if isinstance(jobs, dict):
            jobs = [jobs]
        return self._json("POST", "/v1/jobs", {"jobs": jobs})["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str):
        """Yield the job's event stream (blocks until terminal state).

        Reads the chunked ``/events`` endpoint; ``http.client``
        de-chunks transparently, so each line is one JSON event.  The
        server only closes the stream after emitting a terminal event
        (``done``/``failed``/``rejected``), so an EOF *before* one is a
        dropped connection, not a completed stream — it raises
        :class:`ServiceError` instead of silently ending the generator
        exactly like a clean close would.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                body = response.read().decode("utf-8", "replace")
                raise ServiceError(f"events({job_id}) -> "
                                   f"{response.status}: {body}",
                                   status=response.status)
            terminal_seen = False
            while True:
                try:
                    line = response.readline()
                except (OSError, http.client.HTTPException) as exc:
                    raise ServiceError(
                        f"events({job_id}) stream dropped mid-flight: "
                        f"{exc}") from exc
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") in TERMINAL_STATES:
                    terminal_seen = True
                yield event
            if not terminal_seen:
                raise ServiceError(
                    f"events({job_id}) stream truncated before a "
                    f"terminal event (connection dropped?)")
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def submit_and_wait(self, jobs, timeout: float = 120.0) -> list[dict]:
        """Submit a batch and block until every job is terminal.

        ``timeout`` is one shared deadline for the *whole batch*, not a
        per-job allowance — waiting on N jobs sequentially can never
        block for N × timeout.  (The jobs run concurrently server-side,
        so waiting for the first consumes most of the batch's wall
        time; a per-job budget would multiply it.)
        """
        records = self.submit(jobs)
        deadline = time.monotonic() + timeout
        finished = []
        for record in records:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"batch deadline exceeded after {timeout:.0f}s with "
                    f"{len(records) - len(finished)} jobs still pending")
            finished.append(self.wait(record["id"], timeout=remaining))
        return finished

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> dict:
        """Block until ``/healthz`` answers (server warm-up)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)


class ClusterClient(ServiceClient):
    """The worker side of the coordinator's fabric protocol.

    Same transport as :class:`ServiceClient` (it *is* one — a worker
    can also submit and inspect jobs), plus the four worker endpoints:
    register, lease (also the heartbeat/renewal), complete, deregister.
    See :mod:`repro.service.cluster.coordinator` for the protocol.
    """

    def register_worker(self, *, name: str, slots: int = 1,
                        prefixes=()) -> dict:
        return self._json("POST", "/v1/workers/register",
                          {"name": name, "slots": slots,
                           "prefixes": list(prefixes)})

    def lease(self, worker_id: str, *, prefixes=(), max_jobs: int = 1,
              wait: float = 0.0, slots: int | None = None) -> dict:
        payload = {"prefixes": list(prefixes), "max": max_jobs,
                   "wait": wait}
        if slots is not None:
            payload["slots"] = slots
        return self._json("POST", f"/v1/workers/{worker_id}/lease",
                          payload)

    def complete(self, worker_id: str, key: str, *, ok: bool,
                 error: str | None = None,
                 busy_seconds: float = 0.0) -> dict:
        payload: dict = {"key": key, "ok": ok,
                         "busy_seconds": busy_seconds}
        if error is not None:
            payload["error"] = error
        return self._json("POST", f"/v1/workers/{worker_id}/complete",
                          payload)

    def deregister(self, worker_id: str) -> dict:
        return self._json("POST", f"/v1/workers/{worker_id}/deregister",
                          {})
