"""Thin stdlib client for the simulation service.

Speaks the JSON protocol of :mod:`repro.service.server` over plain
``http.client`` connections — one connection per request, no external
dependencies.  Used by the test suite, the CI service job and the load
generator; the documented examples in ``docs/serving.md`` are written
against this module.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.service.jobs import TERMINAL_STATES
from repro.service.metrics import parse_exposition


class ServiceError(RuntimeError):
    """The server answered with an error (or not at all)."""

    def __init__(self, message: str, status: int = 0,
                 body: object = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class QueueFull(ServiceError):
    """Admission control rejected the batch (HTTP 429)."""

    def __init__(self, message: str, retry_after: float,
                 body: object = None) -> None:
        super().__init__(message, status=429, body=body)
        self.retry_after = retry_after


class ServiceClient:
    """Synchronous client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------- transport

    def _request(self, method: str, path: str, payload: object = None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"{method} {path} failed: {exc}") from exc
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def _json(self, method: str, path: str, payload: object = None) -> dict:
        status, headers, data = self._request(method, path, payload)
        try:
            body = json.loads(data) if data else {}
        except json.JSONDecodeError:
            body = {"raw": data.decode("utf-8", "replace")}
        if status == 429:
            raise QueueFull(f"queue full at {path}",
                            retry_after=float(headers.get("Retry-After", 1)),
                            body=body)
        if status >= 400:
            raise ServiceError(f"{method} {path} -> {status}: {body}",
                               status=status, body=body)
        return body

    # ------------------------------------------------------------------- API

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def programs(self) -> list[str]:
        return self._json("GET", "/v1/programs")["programs"]

    def metrics_text(self) -> str:
        status, __, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> {status}", status=status)
        return data.decode("utf-8")

    def metrics(self) -> dict[str, float]:
        return parse_exposition(self.metrics_text())

    def submit(self, jobs) -> list[dict]:
        """Submit one job dict or a list; returns the job records.

        Raises :class:`QueueFull` when admission control rejects the
        batch — ``exc.retry_after`` is the server's backoff estimate.
        """
        if isinstance(jobs, dict):
            jobs = [jobs]
        return self._json("POST", "/v1/jobs", {"jobs": jobs})["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str):
        """Yield the job's event stream (blocks until terminal state).

        Reads the chunked ``/events`` endpoint; ``http.client``
        de-chunks transparently, so each line is one JSON event.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                body = response.read().decode("utf-8", "replace")
                raise ServiceError(f"events({job_id}) -> "
                                   f"{response.status}: {body}",
                                   status=response.status)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def submit_and_wait(self, jobs, timeout: float = 120.0) -> list[dict]:
        """Submit a batch and block until every job is terminal."""
        records = self.submit(jobs)
        return [self.wait(r["id"], timeout=timeout) for r in records]

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> dict:
        """Block until ``/healthz`` answers (server warm-up)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
