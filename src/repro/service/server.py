"""The single-box simulation service: job API over a local pool.

``python -m repro.service serve`` exposes the simulator as a long-lived
service.  Jobs arrive as JSON, are validated against :mod:`repro.config`
(:func:`repro.service.jobs.build_spec`), content-addressed with the same
``result_key`` fingerprints as the campaign driver, and executed on a
:class:`~concurrent.futures.ProcessPoolExecutor` feeding the shared
:class:`~repro.experiments.cache.ResultStore` — a job the batch path
already simulated is a cache hit here, and vice versa.

The whole client-facing surface (endpoints, dedup, coalescing, atomic
admission, event streams) lives in :mod:`repro.service.frontend` and is
shared with the cluster coordinator (:mod:`repro.service.cluster`);
this module adds the *local* execution fabric::

    POST /v1/jobs             submit one job or {"jobs": [...]} (atomic
                              admission: the whole batch or 429)
    GET  /v1/jobs/<id>        status + result
    GET  /v1/jobs/<id>/events chunked NDJSON stream of state changes
    GET  /v1/programs         available workload profiles
    GET  /healthz             liveness + queue/drain status
    GET  /metrics             text exposition (see service/metrics.py)

Operational behaviour:

* **admission control** — at most ``queue_limit`` executions may be
  outstanding (queued + running); a batch that does not fit is rejected
  whole with 429 and a ``Retry-After`` estimate.  Cache hits and
  coalesced duplicates never consume slots.
* **deduplication** — identical jobs (same content address) already in
  flight are coalesced onto one execution; identical *stored* results
  are served without executing anything.
* **fault handling** — a crashed worker process (``BrokenProcessPool``)
  is retried with exponential backoff on a fresh executor; a job
  exceeding ``job_timeout`` fails, and its stuck worker is reaped by
  recycling the pool (in-flight siblings are retried automatically).
* **graceful drain** — SIGINT/SIGTERM stops admission (503), rejects
  queued jobs, lets running jobs finish, reaps the workers, then exits.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

from repro.experiments.cache import ResultStore, default_cache_dir
from repro.experiments.parallel import _run_job
from repro.service.frontend import MAX_JOB_RECORDS, JobFrontendBase
from repro.service.jobs import Job

__all__ = ["SimulationService", "MAX_JOB_RECORDS"]


class SimulationService(JobFrontendBase):
    """One serving process: HTTP front end, bounded queue, worker pool."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8321,
                 workers: int = 2, queue_limit: int = 32,
                 job_timeout: float = 120.0, max_retries: int = 2,
                 retry_backoff: float = 0.25,
                 cache_dir: str | None = "",
                 store: ResultStore | None = None,
                 engine: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if store is None:
            directory = (default_cache_dir() if cache_dir == ""
                         else cache_dir)
            store = ResultStore(directory)
        super().__init__(host=host, port=port, queue_limit=queue_limit,
                         store=store, engine=engine)
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self._in_flight = 0
        self._queue: asyncio.Queue | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self.metrics.gauges.update({
            "queue_depth": lambda: (self._queue.qsize()
                                    if self._queue is not None else 0),
            "in_flight": lambda: self._in_flight,
            "queue_limit": lambda: self.queue_limit,
            "workers": lambda: self.workers,
            "draining": lambda: self.draining,
            "worker_utilisation": self._worker_utilisation,
        })

    # ------------------------------------------------------------- lifecycle

    async def _on_start(self) -> None:
        """Spin up the worker pool and its feeder tasks."""
        self._queue = asyncio.Queue()
        self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"svc-worker-{i}")
            for i in range(self.workers)]

    async def _on_drain(self) -> None:
        """Reject queued jobs, finish running ones, reap the workers."""
        self.draining = True
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job is None:
                continue
            dropped = self._reject_with_followers(job, "server draining")
            self.metrics.inc("jobs_dropped_on_drain", dropped)
        for __ in self._worker_tasks:
            self._queue.put_nowait(None)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks,
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------- execution

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.terminal:  # rejected while queued
                continue
            self._in_flight += 1
            try:
                await self._execute(job)
            finally:
                self._in_flight -= 1

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        queue_wait = perf_counter() - job.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        job.started_at = time.time()
        job.set_state("running", queue_wait=round(queue_wait, 6))
        exec_start = perf_counter()
        attempts = 0
        while True:
            attempts += 1
            job.attempts = attempts
            executor = self._executor
            try:
                __, result, busy = await asyncio.wait_for(
                    loop.run_in_executor(executor, _run_job, job.spec),
                    timeout=self.job_timeout)
            except asyncio.TimeoutError:
                # The worker is still grinding on the job; recycling the
                # pool with reap=True terminates it (siblings killed
                # with it come back as BrokenProcessPool and retry).
                self.metrics.inc("timeouts")
                self._recycle_executor(reap=True)
                self._finish_failed(
                    job, f"timed out after {self.job_timeout:.0f}s")
                return
            except BrokenProcessPool:
                self.metrics.inc("retries")
                if attempts > self.max_retries:
                    self._finish_failed(
                        job, f"worker crashed ({attempts} attempts)")
                    return
                if self._executor is executor:
                    self._recycle_executor(reap=False)
                job.add_event("retry", attempt=attempts)
                await asyncio.sleep(
                    self.retry_backoff * (2 ** (attempts - 1)))
            except Exception as exc:  # the simulation itself raised
                self._finish_failed(job, f"{type(exc).__name__}: {exc}")
                return
            else:
                break
        self.store.put(job.spec.key, result)
        self.metrics.inc("simulations")
        self.metrics.worker_busy_seconds += busy
        self.metrics.observe("execute", perf_counter() - exec_start)
        self._finish_done(job, result)

    def _recycle_executor(self, *, reap: bool) -> None:
        old = self._executor
        self._executor = ProcessPoolExecutor(max_workers=self.workers)
        if old is None:
            return
        stuck = list(getattr(old, "_processes", {}).values())
        old.shutdown(wait=False, cancel_futures=True)
        if reap:
            for proc in stuck:
                if proc.is_alive():
                    proc.terminate()

    def _worker_utilisation(self) -> float:
        elapsed = time.time() - self.metrics.started
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.metrics.worker_busy_seconds
                   / (elapsed * self.workers))

    # ----------------------------------------------------- frontend hooks

    def _dispatch(self, job: Job) -> None:
        job.enqueued_at = perf_counter()
        job.add_event("queued")
        self._queue.put_nowait(job)

    def _outstanding(self) -> int:
        return self._queue.qsize() + self._in_flight

    def _retry_after(self) -> float:
        """Seconds until a queue slot plausibly frees up."""
        execute = self.metrics.stage_latency["execute"]
        per_job = execute.mean if execute.count else 1.0
        estimate = per_job * max(1, self._outstanding()) / self.workers
        return max(1, int(estimate + 0.999))

    def _health_extra(self) -> dict:
        return {
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "in_flight": self._in_flight,
            "workers": self.workers,
        }
