"""The simulation service: a stdlib-only asyncio HTTP job server.

``python -m repro.service serve`` exposes the simulator as a long-lived
service.  Jobs arrive as JSON, are validated against :mod:`repro.config`
(:func:`repro.service.jobs.build_spec`), content-addressed with the same
``result_key`` fingerprints as the campaign driver, and executed on a
:class:`~concurrent.futures.ProcessPoolExecutor` feeding the shared
:class:`~repro.experiments.cache.ResultStore` — a job the batch path
already simulated is a cache hit here, and vice versa.

Endpoints::

    POST /v1/jobs             submit one job or {"jobs": [...]} (atomic
                              admission: the whole batch or 429)
    GET  /v1/jobs/<id>        status + result
    GET  /v1/jobs/<id>/events chunked NDJSON stream of state changes
    GET  /v1/programs         available workload profiles
    GET  /healthz             liveness + queue/drain status
    GET  /metrics             text exposition (see service/metrics.py)

Operational behaviour:

* **admission control** — at most ``queue_limit`` executions may be
  outstanding (queued + running); a batch that does not fit is rejected
  whole with 429 and a ``Retry-After`` estimate.  Cache hits and
  coalesced duplicates never consume slots.
* **deduplication** — identical jobs (same content address) already in
  flight are coalesced onto one execution; identical *stored* results
  are served without executing anything.
* **fault handling** — a crashed worker process (``BrokenProcessPool``)
  is retried with exponential backoff on a fresh executor; a job
  exceeding ``job_timeout`` fails, and its stuck worker is reaped by
  recycling the pool (in-flight siblings are retried automatically).
* **graceful drain** — SIGINT/SIGTERM stops admission (503), rejects
  queued jobs, lets running jobs finish, reaps the workers, then exits.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

from repro.experiments.cache import (
    ResultStore,
    default_cache_dir,
    telemetry_dir,
)
from repro.experiments.parallel import _run_job
from repro.service.jobs import Job, ValidationError, build_spec
from repro.service.metrics import ServiceMetrics
from repro.workloads import PROFILES

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: terminal job records kept for GET /v1/jobs/<id>; oldest are evicted
#: past this many total records so a long-lived server stays bounded.
MAX_JOB_RECORDS = 10_000


class SimulationService:
    """One serving process: HTTP front end, bounded queue, worker pool."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8321,
                 workers: int = 2, queue_limit: int = 32,
                 job_timeout: float = 120.0, max_retries: int = 2,
                 retry_backoff: float = 0.25,
                 cache_dir: str | None = "",
                 store: ResultStore | None = None,
                 engine: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.workers = workers
        #: execution engine every admitted job runs on (None = config
        #: default).  A pure host-speed knob: results, digests and
        #: store keys are engine-independent, so switching it never
        #: invalidates the cache or the dedup-by-key path.
        self.engine = engine
        self.queue_limit = queue_limit
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        if store is not None:
            self.store = store
        else:
            directory = (default_cache_dir() if cache_dir == ""
                         else cache_dir)
            self.store = ResultStore(directory)
        self.metrics = ServiceMetrics()
        self.draining = False
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._job_seq = 0
        self._in_flight = 0
        self._queue: asyncio.Queue | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._stop_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drained = False
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.metrics.gauges.update({
            "queue_depth": lambda: (self._queue.qsize()
                                    if self._queue is not None else 0),
            "in_flight": lambda: self._in_flight,
            "queue_limit": lambda: self.queue_limit,
            "workers": lambda: self.workers,
            "draining": lambda: self.draining,
            "worker_utilisation": self._worker_utilisation,
        })

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the socket, spin up the worker pool, install handlers."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop_requested = asyncio.Event()
        self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"svc-worker-{i}")
            for i in range(self.workers)]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        self._ready.set()

    async def run_async(self) -> None:
        """Serve until a stop is requested, then drain and return."""
        try:
            await self.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        try:
            await self._stop_requested.wait()
        finally:
            await self.drain()
            self._loop = None

    def run(self) -> None:
        """Blocking entry point (``python -m repro.service serve``)."""
        asyncio.run(self.run_async())

    def start_in_thread(self) -> threading.Thread:
        """Run the service on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self._run_quietly,
                                  name="repro-service", daemon=True)
        thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}")
        return thread

    def _run_quietly(self) -> None:
        try:
            self.run()
        except BaseException:
            # run_async already recorded the startup error; a crash
            # after startup surfaces through the joined thread's logs
            pass

    def request_stop(self) -> None:
        """Thread-safe stop signal: begin the graceful drain."""
        loop = self._loop
        if loop is not None and self._stop_requested is not None:
            loop.call_soon_threadsafe(self._stop_requested.set)

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return  # not the main thread: embedder owns signals

    async def drain(self) -> None:
        """Reject queued jobs, finish running ones, reap the workers."""
        if self._drained:
            return
        self._drained = True
        self.draining = True
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job is None:
                continue
            self._by_key.pop(job.spec.key, None)
            casualties = [job] + job.followers
            for casualty in casualties:
                casualty.finish_rejected("server draining")
                self._remember_finished(casualty)
            self.metrics.inc("jobs_dropped_on_drain", len(casualties))
        for __ in self._worker_tasks:
            self._queue.put_nowait(None)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks,
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------- execution

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.terminal:  # rejected while queued
                continue
            self._in_flight += 1
            try:
                await self._execute(job)
            finally:
                self._in_flight -= 1

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        queue_wait = perf_counter() - job.enqueued_at
        self.metrics.observe("queue_wait", queue_wait)
        job.started_at = time.time()
        job.set_state("running", queue_wait=round(queue_wait, 6))
        exec_start = perf_counter()
        attempts = 0
        while True:
            attempts += 1
            job.attempts = attempts
            executor = self._executor
            try:
                __, result, busy = await asyncio.wait_for(
                    loop.run_in_executor(executor, _run_job, job.spec),
                    timeout=self.job_timeout)
            except asyncio.TimeoutError:
                # The worker is still grinding on the job; recycling the
                # pool with reap=True terminates it (siblings killed
                # with it come back as BrokenProcessPool and retry).
                self.metrics.inc("timeouts")
                self._recycle_executor(reap=True)
                self._finish_failed(
                    job, f"timed out after {self.job_timeout:.0f}s")
                return
            except BrokenProcessPool:
                self.metrics.inc("retries")
                if attempts > self.max_retries:
                    self._finish_failed(
                        job, f"worker crashed ({attempts} attempts)")
                    return
                if self._executor is executor:
                    self._recycle_executor(reap=False)
                job.add_event("retry", attempt=attempts)
                await asyncio.sleep(
                    self.retry_backoff * (2 ** (attempts - 1)))
            except Exception as exc:  # the simulation itself raised
                self._finish_failed(job, f"{type(exc).__name__}: {exc}")
                return
            else:
                break
        self.store.put(job.spec.key, result)
        self.metrics.inc("simulations")
        self.metrics.worker_busy_seconds += busy
        self.metrics.observe("execute", perf_counter() - exec_start)
        self._finish_done(job, result)

    def _recycle_executor(self, *, reap: bool) -> None:
        old = self._executor
        self._executor = ProcessPoolExecutor(max_workers=self.workers)
        if old is None:
            return
        stuck = list(getattr(old, "_processes", {}).values())
        old.shutdown(wait=False, cancel_futures=True)
        if reap:
            for proc in stuck:
                if proc.is_alive():
                    proc.terminate()

    def _finish_done(self, job: Job, result, *, cached: bool = False) -> None:
        if self._by_key.get(job.spec.key) is job:
            del self._by_key[job.spec.key]
        job.finish_done(result, cached=cached)
        self.metrics.observe("total", time.time() - job.created)
        self.metrics.inc("jobs_completed")
        self._remember_finished(job)
        for follower in job.followers:
            follower.finish_done(result, coalesced=True)
            self.metrics.observe("total", time.time() - follower.created)
            self.metrics.inc("jobs_completed")
            self._remember_finished(follower)

    def _finish_failed(self, job: Job, error: str) -> None:
        if self._by_key.get(job.spec.key) is job:
            del self._by_key[job.spec.key]
        job.finish_failed(error)
        self.metrics.inc("jobs_failed")
        self._remember_finished(job)
        for follower in job.followers:
            follower.finish_failed(error)
            self.metrics.inc("jobs_failed")
            self._remember_finished(follower)

    def _remember_finished(self, job: Job) -> None:
        self._finished_order.append(job.id)
        while len(self.jobs) > MAX_JOB_RECORDS and self._finished_order:
            self.jobs.pop(self._finished_order.pop(0), None)

    def _worker_utilisation(self) -> float:
        elapsed = time.time() - self.metrics.started
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.metrics.worker_busy_seconds
                   / (elapsed * self.workers))

    # ------------------------------------------------------------ submission

    def _new_job(self, spec) -> Job:
        self._job_seq += 1
        job = Job(f"j{self._job_seq:06d}", spec)
        self.jobs[job.id] = job
        return job

    def _retry_after(self) -> int:
        """Seconds until a queue slot plausibly frees up."""
        execute = self.metrics.stage_latency["execute"]
        per_job = execute.mean if execute.count else 1.0
        outstanding = self._queue.qsize() + self._in_flight
        estimate = per_job * max(1, outstanding) / self.workers
        return max(1, int(estimate + 0.999))

    def submit_batch(self, payloads: list[dict]) -> tuple[int, dict, dict]:
        """Admit (or reject) one batch; returns (status, headers, body)."""
        started = perf_counter()
        if self.draining:
            return 503, {}, {"error": "server draining"}
        if not payloads:
            return 400, {}, {"errors": [{"error": "empty batch"}]}
        tdir = telemetry_dir(self.store)
        specs = []
        errors = []
        for index, payload in enumerate(payloads):
            try:
                specs.append(build_spec(payload, telemetry_dir=tdir,
                                        engine=self.engine))
            except ValidationError as exc:
                errors.append({"index": index, "error": str(exc)})
        if errors:
            self.metrics.inc("bad_requests")
            return 400, {}, {"errors": errors}
        self.metrics.observe("validate", perf_counter() - started)

        # Atomic admission: count distinct executions this batch needs
        # (cache hits and coalesced duplicates are free), then either
        # admit everything or reject the whole request with 429.
        needed = set()
        for spec in specs:
            primary = self._by_key.get(spec.key)
            if primary is not None and not primary.terminal:
                continue
            if self.store.contains(spec.key):
                continue
            needed.add(spec.key)
        outstanding = self._queue.qsize() + self._in_flight
        if needed and outstanding + len(needed) > self.queue_limit:
            self.metrics.inc("jobs_rejected", len(payloads))
            retry_after = self._retry_after()
            return (429, {"Retry-After": str(retry_after)},
                    {"error": "queue full",
                     "outstanding": outstanding,
                     "queue_limit": self.queue_limit,
                     "retry_after": retry_after})

        self.metrics.inc("jobs_submitted", len(payloads))
        batch = []
        for spec in specs:
            job = self._new_job(spec)
            primary = self._by_key.get(spec.key)
            if primary is not None and not primary.terminal:
                job.coalesced = True
                job.add_event("queued", coalesced_into=primary.id)
                primary.followers.append(job)
                self.metrics.inc("coalesced")
            elif self.store.contains(spec.key):
                result = self.store.get(spec.key)
                if result is not None:
                    self.metrics.inc("cache_hits")
                    self._finish_done(job, result, cached=True)
                else:  # entry vanished between contains() and get()
                    self._enqueue(job)
            else:
                self._enqueue(job)
            batch.append(job.as_json(include_result=False))
        return 200, {}, {"jobs": batch}

    def _enqueue(self, job: Job) -> None:
        self._by_key[job.spec.key] = job
        job.enqueued_at = perf_counter()
        job.add_event("queued")
        self._queue.put_nowait(job)

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    ValueError, ConnectionError):
                return
            self.metrics.inc("requests")
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:
            try:
                self._write_response(writer, 500,
                                     {"error": f"internal: {exc}"})
                await writer.drain()
            except Exception:
                pass
            print(f"service: request handler error: {exc!r}",
                  file=sys.stderr)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: dict | str, *,
                        extra_headers: dict | None = None) -> None:
        if isinstance(body, str):
            payload = body.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            payload = (json.dumps(body, sort_keys=True) + "\n").encode()
            content_type = "application/json"
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            self._write_response(writer, 200, self._health())
        elif path == "/metrics" and method == "GET":
            self._write_response(writer, 200, self.metrics.render())
        elif path == "/v1/programs" and method == "GET":
            self._write_response(writer, 200,
                                 {"programs": sorted(PROFILES)})
        elif path == "/v1/jobs" and method == "POST":
            try:
                parsed = json.loads(body or b"null")
            except json.JSONDecodeError as exc:
                self.metrics.inc("bad_requests")
                self._write_response(writer, 400,
                                     {"errors": [{"error": f"bad JSON: {exc}"}]})
                await writer.drain()
                return
            if isinstance(parsed, dict) and "jobs" in parsed:
                payloads = parsed["jobs"]
                if not isinstance(payloads, list):
                    payloads = [payloads]
            elif isinstance(parsed, dict):
                payloads = [parsed]
            else:
                payloads = []
            status, headers, response = self.submit_batch(payloads)
            self._write_response(writer, status, response,
                                 extra_headers=headers)
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job = self.jobs.get(rest[:-len("/events")])
                if job is None:
                    self._write_response(writer, 404,
                                         {"error": "no such job"})
                else:
                    await self._stream_events(writer, job)
                    return
            else:
                job = self.jobs.get(rest)
                if job is None:
                    self._write_response(writer, 404,
                                         {"error": "no such job"})
                else:
                    self._write_response(writer, 200, job.as_json())
        elif path in ("/healthz", "/metrics", "/v1/jobs", "/v1/programs"):
            self._write_response(writer, 405,
                                 {"error": f"{method} not allowed"})
        else:
            self._write_response(writer, 404, {"error": "not found"})
        await writer.drain()

    def _health(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "in_flight": self._in_flight,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "jobs": states,
            "uptime_seconds": round(time.time() - self.metrics.started, 3),
            "cache_dir": self.store.directory,
        }

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job: Job) -> None:
        """Chunked NDJSON: one line per job event, until terminal."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                data = (json.dumps(job.events[sent], sort_keys=True)
                        + "\n").encode()
                writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
                sent += 1
            await writer.drain()
            if job.terminal:
                break
            await job.wait_update()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
