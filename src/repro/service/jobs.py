"""Job model of the simulation service.

A *job request* is a JSON object describing one simulation: which
program, which processor model, optional configuration overrides and
policy spec, sample sizes and seed.  Validation turns it into the same
:class:`~repro.experiments.cache.JobSpec` the campaign executor ships
to worker processes — the service and the batch path run byte-for-byte
the same job, so their results share one content address and one
:class:`~repro.experiments.cache.ResultStore`.

A *job record* (:class:`Job`) is the server-side lifecycle object:
state machine (``queued → running → done|failed``, plus ``rejected``
for drain casualties), an append-only event log that feeds the
``/v1/jobs/<id>/events`` stream, and the follower list used to
coalesce concurrent submissions of the same content address onto a
single execution.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time

from repro.config import (
    ProcessorConfig,
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
    smt_config,
)
from repro.core.policies import make_policy
from repro.experiments.cache import JobSpec, result_key
from repro.stats import SimulationResult
from repro.workloads import UnknownProgramError, ensure_program


class ValidationError(ValueError):
    """A job request that cannot be turned into a simulation."""


_MODEL_FACTORIES = {
    "base": lambda level: base_config(),
    "fixed": fixed_config,
    "ideal": ideal_config,
    "dynamic": dynamic_config,
    "runahead": lambda level: runahead_config(),
}

_DEFAULT_LEVEL = {"base": 1, "fixed": 3, "ideal": 3, "dynamic": 3,
                  "runahead": 1, "smt": 3}

#: how many hardware threads one SMT job may carry (mirrors SMTConfig)
_SMT_MAX_THREADS = 4

#: Admission guards: a single service job may not exceed these sample
#: sizes (a campaign wanting more has the batch path; a service exists
#: to make many *small* jobs cheap, not one giant job possible).
MAX_MEASURE = 500_000
MAX_WARMUP = 500_000

_ALLOWED_KEYS = frozenset((
    "program", "model", "level", "policy", "seed", "warmup", "measure",
    "config", "telemetry_period", "smt",
))

#: job states; ``done``/``failed``/``rejected`` are terminal.
TERMINAL_STATES = frozenset(("done", "failed", "rejected"))


def _require_int(payload: dict, name: str, default: int, *,
                 minimum: int, maximum: int | None = None) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name!r} must be an integer, "
                              f"got {value!r}")
    if value < minimum:
        raise ValidationError(f"{name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValidationError(f"{name!r} must be <= {maximum}, got {value}")
    return value


def _ensure_known_program(program: str) -> None:
    """Reject unknown program names across every workload namespace
    (synthetic table, ``adv_*``, ``riscv:`` corpus) with one message."""
    if not isinstance(program, str) or not program:
        raise ValidationError(f"unknown program {program!r}; "
                              "see GET /v1/programs")
    try:
        ensure_program(program)
    except UnknownProgramError as exc:
        raise ValidationError(f"{exc}; see GET /v1/programs") from None


def _apply_overrides(config: ProcessorConfig, overrides: dict) -> ProcessorConfig:
    """Apply a ``config`` override dict onto a ProcessorConfig.

    Top-level scalar fields are replaced directly; nested dataclass
    fields (``memory``, ``l2``, ``branch``, ...) take a dict of their
    own field overrides.  Anything unknown, and any value the frozen
    dataclasses' ``__post_init__`` validation rejects, is a
    :class:`ValidationError` — the service never simulates a config the
    library would not construct.
    """
    if not isinstance(overrides, dict):
        raise ValidationError(f"'config' must be an object, "
                              f"got {overrides!r}")
    fields = {f.name: f for f in dataclasses.fields(config)}
    changes: dict[str, object] = {}
    for name, value in overrides.items():
        if name == "model":
            raise ValidationError("select the model with the top-level "
                                  "'model' key, not a config override")
        if name == "smt":
            raise ValidationError("configure SMT with the top-level "
                                  "'smt' key, not a config override")
        if name not in fields:
            known = ", ".join(sorted(fields))
            raise ValidationError(f"unknown config field {name!r} "
                                  f"(known: {known})")
        current = getattr(config, name)
        if dataclasses.is_dataclass(current) and isinstance(value, dict):
            nested = {f.name for f in dataclasses.fields(current)}
            unknown = set(value) - nested
            if unknown:
                raise ValidationError(
                    f"unknown {name!r} fields: {', '.join(sorted(unknown))}")
            try:
                changes[name] = dataclasses.replace(current, **value)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"bad {name!r} override: {exc}") from None
        else:
            changes[name] = value
    if not changes:
        return config
    try:
        return dataclasses.replace(config, **changes)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"bad config override: {exc}") from None


def build_spec(payload: dict, *, sanitize: bool = False,
               telemetry_dir: str | None = None,
               engine: str | None = None) -> JobSpec:
    """Validate one job request and return its executable spec.

    ``engine`` is the server-side execution-engine selection (the
    ``--engine`` serve flag); it rides the spec but not the result key,
    because engines are behaviourally identical by contract.

    Raises :class:`ValidationError` with a message that names the
    offending field; the server turns that into a 400 with the message
    in the body, so a client can fix its request without reading
    server logs.
    """
    if not isinstance(payload, dict):
        raise ValidationError(f"job must be an object, got {payload!r}")
    unknown = set(payload) - _ALLOWED_KEYS
    if unknown:
        raise ValidationError(
            f"unknown job keys: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_ALLOWED_KEYS))})")

    model = payload.get("model", "dynamic")
    if model != "smt" and model not in _MODEL_FACTORIES:
        known = sorted(_MODEL_FACTORIES) + ["smt"]
        raise ValidationError(
            f"unknown model {model!r} (known: {', '.join(known)})")

    program = payload.get("program")
    smt_programs: tuple[str, ...] | None = None
    if model == "smt":
        # one program per hardware thread, "+"-joined: "libquantum+sjeng"
        if not isinstance(program, str) or not program:
            raise ValidationError(
                "smt jobs take 'program' as 'prog1+prog2[+...]'")
        smt_programs = tuple(program.split("+"))
        if len(smt_programs) > _SMT_MAX_THREADS:
            raise ValidationError(
                f"smt supports at most {_SMT_MAX_THREADS} threads, "
                f"got {len(smt_programs)} programs")
        for part in smt_programs:
            _ensure_known_program(part)
    else:
        _ensure_known_program(program)

    level = _require_int(payload, "level", _DEFAULT_LEVEL[model], minimum=1)
    if model == "smt":
        if sanitize:
            raise ValidationError(
                "the invariant sanitizer does not support smt jobs; "
                "their invariants run under python -m repro.verify smt")
        smt_options = payload.get("smt", {})
        if not isinstance(smt_options, dict):
            raise ValidationError(f"'smt' must be an object, "
                                  f"got {smt_options!r}")
        unknown = set(smt_options) - {"partition", "fetch"}
        if unknown:
            raise ValidationError(
                f"unknown smt options: {', '.join(sorted(unknown))} "
                f"(known: partition, fetch)")
        try:
            config = smt_config(threads=len(smt_programs),
                                partition=smt_options.get("partition", "mlp"),
                                fetch=smt_options.get("fetch", "mlp"),
                                level=level)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
    else:
        if "smt" in payload:
            raise ValidationError(
                "'smt' options only apply to the smt model")
        try:
            config = _MODEL_FACTORIES[model](level)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
    if "config" in payload:
        config = _apply_overrides(config, payload["config"])

    policy = None
    policy_name = payload.get("policy")
    if policy_name is not None:
        if model != "dynamic":
            raise ValidationError(
                f"'policy' only applies to the dynamic model, not {model!r}")
        if not isinstance(policy_name, str):
            raise ValidationError(f"'policy' must be a string, "
                                  f"got {policy_name!r}")
        if policy_name.startswith("table:"):
            # a table: spec names a file on the *executing* host —
            # letting requests open server-side paths is both a
            # traversal hazard and unreproducible across workers
            # (the fingerprint covers table contents, not the path,
            # but two workers could resolve the path differently).
            raise ValidationError(
                "'table:' policies load a local artifact file and are "
                "not accepted as service jobs; run them through the "
                "batch path (repro.experiments) on the host that owns "
                "the artifact")
        try:
            policy = make_policy(policy_name, config.level,
                                 config.memory.min_latency)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None

    seed = _require_int(payload, "seed", 1, minimum=0)
    warmup = _require_int(payload, "warmup", 1_000, minimum=0,
                          maximum=MAX_WARMUP)
    measure = _require_int(payload, "measure", 3_000, minimum=1,
                           maximum=MAX_MEASURE)
    telemetry_period = _require_int(payload, "telemetry_period", 0,
                                    minimum=0)
    if telemetry_period and model == "smt":
        raise ValidationError("telemetry sampling is per-core and does "
                              "not support smt jobs")
    if telemetry_period and telemetry_dir is None:
        raise ValidationError("telemetry_period needs an on-disk result "
                              "store (server started with --no-cache)")

    trace_ops = warmup + measure + 1_000  # same margin as Settings.trace_ops
    key = result_key(program, config, seed=seed, warmup=warmup,
                     measure=measure, trace_ops=trace_ops, policy=policy)
    return JobSpec(key=key, program=program, config=config, policy=policy,
                   seed=seed, warmup=warmup, measure=measure,
                   trace_ops=trace_ops, sanitize=sanitize,
                   telemetry_period=telemetry_period,
                   telemetry_dir=telemetry_dir if telemetry_period else None,
                   engine=engine, smt_programs=smt_programs)


def result_to_json(result: SimulationResult) -> dict:
    """The JSON view of a result: every scalar the experiment harnesses
    consume, plus the canonical stat digest so a client can check
    bit-identity against a local run without shipping raw counters."""
    from repro.verify.digest import result_digest
    return {
        "program": result.program,
        "model": result.model,
        "level": result.level,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "avg_load_latency": result.avg_load_latency,
        "mispredict_rate": result.mispredict_rate,
        "mlp": result.mlp,
        "level_residency": {str(k): v
                            for k, v in sorted(result.level_residency.items())},
        "memory_stats": dict(sorted(result.memory_stats.items())),
        "energy_nj": result.energy_nj,
        "edp": result.edp,
        "digest": result_digest(result),
    }


class Job:
    """Server-side lifecycle record of one submitted job."""

    __slots__ = ("id", "spec", "payload", "state", "created", "enqueued_at",
                 "started_at", "finished_at", "result", "error", "cached",
                 "coalesced", "attempts", "events", "followers", "_updated")

    def __init__(self, job_id: str, spec: JobSpec,
                 payload: dict | None = None) -> None:
        self.id = job_id
        self.spec = spec
        #: the raw (validated) request this job was built from.  The
        #: cluster coordinator ships this to workers, which re-derive
        #: the spec locally — re-validation on the executing node is
        #: what catches coordinator/worker version skew.
        self.payload = payload
        self.state = "queued"
        self.created = time.time()
        self.enqueued_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: SimulationResult | None = None
        self.error: str | None = None
        #: served straight from the result store, no execution
        self.cached = False
        #: attached to an identical in-flight job's execution
        self.coalesced = False
        self.attempts = 0
        self.events: list[dict] = []
        self.followers: list[Job] = []
        # replaced on every transition; streamers wait on the current one
        self._updated = asyncio.Event()

    # ------------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, kind: str, **extra) -> None:
        event = {"seq": len(self.events), "job": self.id, "event": kind,
                 "elapsed": round(time.time() - self.created, 6)}
        event.update(extra)
        self.events.append(event)
        self._bump()

    def set_state(self, state: str, **extra) -> None:
        self.state = state
        self.add_event(state, **extra)

    def _bump(self) -> None:
        previous = self._updated
        self._updated = asyncio.Event()
        previous.set()

    async def wait_update(self) -> None:
        """Block until the next event is appended (or return at once if
        the job is already terminal)."""
        if self.terminal:
            return
        await self._updated.wait()

    # ------------------------------------------------------------------

    def finish_done(self, result: SimulationResult, *, cached: bool = False,
                    coalesced: bool = False) -> None:
        self.result = result
        self.cached = cached
        self.coalesced = coalesced
        self.finished_at = time.time()
        self.set_state("done", cached=cached, coalesced=coalesced)

    def finish_failed(self, error: str) -> None:
        self.error = error
        self.finished_at = time.time()
        self.set_state("failed", error=error)

    def finish_rejected(self, reason: str) -> None:
        self.error = reason
        self.finished_at = time.time()
        self.set_state("rejected", reason=reason)

    def as_json(self, *, include_result: bool = True) -> dict:
        view = {
            "id": self.id,
            "key": self.spec.key,
            "program": self.spec.program,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "attempts": self.attempts,
        }
        if self.error is not None:
            view["error"] = self.error
        if include_result and self.result is not None:
            view["result"] = result_to_json(self.result)
        return view
