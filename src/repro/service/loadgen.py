"""Deterministic load generator for the simulation service.

``python -m repro.service.loadgen --rps N --duration S --seed S`` drives
a running server with an open-loop arrival schedule (request *i* fires
at ``i / rps`` seconds, regardless of how earlier requests fared — the
schedule never adapts to server latency, so two runs offer identical
load) and a seeded job mix drawn from a small pool of distinct job
shapes.  The duplicate-heavy mix is deliberate: it exercises exactly
the dedup/caching path a sweep workload produces, and makes the
reported cache-hit rate a meaningful serving metric rather than zero
by construction.

The report — achieved throughput, p50/p95/p99 latency, rejection rate,
cache-hit rate — makes serving performance a measured artifact, the
way ``benchmarks/`` does for the simulator itself.
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.service.client import QueueFull, ServiceClient, ServiceError
from repro.telemetry.profiler import LatencyReservoir
from repro.workloads import known_program

#: default program pool: a memory-bound / compute-bound mix, plus one
#: riscv trace workload so serving CI exercises the ingestion frontend
#: under dedup/coalescing
DEFAULT_PROGRAMS = ("mcf", "leslie3d", "libquantum", "milc", "gcc", "namd",
                    "povray", "riscv:memcpy")

MODELS = ("base", "fixed", "ideal", "dynamic", "runahead")


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    retried: int = 0
    failed: int = 0
    errors: int = 0
    cached: int = 0
    coalesced: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0
    target_rps: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return ((self.cached + self.coalesced) / self.completed
                if self.completed else 0.0)

    def render(self) -> str:
        p = self.latency.summary()
        lines = [
            f"loadgen: offered {self.offered} jobs in "
            f"{self.wall_seconds:.1f}s (target {self.target_rps:.1f} rps)",
            f"  completed {self.completed} "
            f"({self.achieved_rps:.2f} done/s), "
            f"rejected {self.rejected} ({self.rejection_rate:.1%}, "
            f"{self.retried} retried after 429), "
            f"failed {self.failed}, transport errors {self.errors}",
            f"  latency: p50 {p['p50'] * 1e3:.1f}ms  "
            f"p95 {p['p95'] * 1e3:.1f}ms  p99 {p['p99'] * 1e3:.1f}ms  "
            f"max {p['max'] * 1e3:.1f}ms  (mean {p['mean'] * 1e3:.1f}ms)",
            f"  cache: {self.cached} store hits + {self.coalesced} "
            f"coalesced / {self.simulated} simulated "
            f"-> hit rate {self.cache_hit_rate:.1%}",
        ]
        return "\n".join(lines)


def build_job_mix(seed: int, distinct: int, programs, *,
                  measure: int, warmup: int) -> list[dict]:
    """``distinct`` job shapes, deterministically derived from ``seed``.

    Every shape is a complete job payload; the arrival loop cycles
    through them with a seeded RNG, so duplicates (and therefore cache
    hits and coalescing) occur by design.
    """
    rng = random.Random(seed)
    shapes = []
    for index in range(distinct):
        program = programs[index % len(programs)]
        model = MODELS[rng.randrange(len(MODELS))]
        shape = {"program": program, "model": model,
                 "seed": 1 + rng.randrange(3),
                 "warmup": warmup, "measure": measure}
        if model in ("fixed", "ideal", "dynamic"):
            shape["level"] = 1 + rng.randrange(3)
        shapes.append(shape)
    return shapes


def run_load(client: ServiceClient, *, rps: float, duration: float,
             seed: int, measure: int = 1_500, warmup: int = 500,
             distinct: int = 6, programs=None,
             job_timeout: float = 120.0, retry_429: int = 0,
             retry_cap: float = 5.0) -> LoadReport:
    """Drive the server and measure it; blocks until every request
    resolved (completed, rejected or failed).

    ``retry_429`` > 0 makes each rejected submit honour the server's
    ``Retry-After`` header (fractional seconds respected, capped at
    ``retry_cap``) and resubmit up to that many times before counting
    the request as rejected — the closed-loop behaviour a polite
    client exhibits, and the path that exercises admission-control
    backoff end to end.
    """
    if rps <= 0 or duration <= 0:
        raise ValueError("rps and duration must be positive")
    programs = tuple(programs) if programs else DEFAULT_PROGRAMS
    unknown = {p for p in programs if not known_program(p)}
    if unknown:
        raise ValueError(f"unknown programs: {', '.join(sorted(unknown))}")
    shapes = build_job_mix(seed, distinct, programs,
                           measure=measure, warmup=warmup)
    rng = random.Random(seed ^ 0x5EED)
    total = max(1, int(rps * duration))
    plan = [shapes[rng.randrange(len(shapes))] for __ in range(total)]

    report = LoadReport(offered=total, target_rps=rps)
    lock = threading.Lock()
    epoch = time.perf_counter()

    def submit_with_retry(payload: dict) -> dict:
        """One submit, honouring Retry-After up to ``retry_429`` times."""
        attempts = 0
        while True:
            try:
                return client.submit([payload])[0]
            except QueueFull as exc:
                if attempts >= retry_429:
                    raise
                attempts += 1
                with lock:
                    report.retried += 1
                # Retry-After may be fractional (the coordinator emits
                # sub-second estimates); never sleep unboundedly long
                time.sleep(min(max(exc.retry_after, 0.0), retry_cap))

    def fire(index: int, payload: dict) -> None:
        wait = epoch + index / rps - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        started = time.perf_counter()
        try:
            record = submit_with_retry(payload)
            record = client.wait(record["id"], timeout=job_timeout)
        except QueueFull:
            with lock:
                report.rejected += 1
            return
        except (ServiceError, TimeoutError):
            with lock:
                report.errors += 1
            return
        elapsed = time.perf_counter() - started
        with lock:
            if record["state"] == "done":
                report.completed += 1
                report.latency.record(elapsed)
                if record.get("cached"):
                    report.cached += 1
                elif record.get("coalesced"):
                    report.coalesced += 1
                else:
                    report.simulated += 1
            else:
                report.failed += 1

    threads = [threading.Thread(target=fire, args=(i, payload), daemon=True)
               for i, payload in enumerate(plan)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - epoch
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen", description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--rps", type=float, default=5.0,
                        help="offered request rate (open loop)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of offered load")
    parser.add_argument("--seed", type=int, default=1,
                        help="job mix + arrival plan seed")
    parser.add_argument("--measure", type=int, default=1_500,
                        help="measured micro-ops per job")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct job shapes in the mix (lower = "
                             "more duplicates = more cache hits)")
    parser.add_argument("--programs", default="",
                        help="comma-separated program pool "
                             f"(default: {','.join(DEFAULT_PROGRAMS)})")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-job completion timeout")
    parser.add_argument("--retry-429", type=int, default=0,
                        metavar="N",
                        help="resubmit a 429-rejected job up to N times, "
                             "sleeping the server's Retry-After between "
                             "attempts (default: count it as rejected)")
    args = parser.parse_args(argv)

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        client.wait_ready(timeout=10.0)
    except ServiceError as exc:
        print(f"loadgen: no server at {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1
    programs = tuple(p for p in args.programs.split(",") if p) or None
    report = run_load(client, rps=args.rps, duration=args.duration,
                      seed=args.seed, measure=args.measure,
                      warmup=args.warmup, distinct=args.distinct,
                      programs=programs, job_timeout=args.timeout,
                      retry_429=args.retry_429)
    print(report.render())
    return 0 if report.completed or report.rejected else 1


if __name__ == "__main__":
    raise SystemExit(main())
