"""gshare branch direction predictor and branch target buffer.

The predictor is consulted at fetch.  The simulator applies *speculative
update* of the global history (standard in high-performance front ends)
and repairs the history on a misprediction, so wrong-path fetch does not
permanently corrupt the history register.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import BranchPredictorConfig


class BranchUpdate:
    """Token carrying the state needed to update/repair the predictor
    when the branch resolves."""

    __slots__ = ("pc", "index", "history_before", "predicted_taken",
                 "predicted_target")

    def __init__(self, pc: int, index: int, history_before: int,
                 predicted_taken: bool, predicted_target: int) -> None:
        self.pc = pc
        self.index = index
        self.history_before = history_before
        self.predicted_taken = predicted_taken
        self.predicted_target = predicted_target


class BTB:
    """Set-associative branch target buffer."""

    def __init__(self, sets: int, assoc: int) -> None:
        if sets & (sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self.sets = sets
        self.assoc = assoc
        self._table: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> OrderedDict[int, int]:
        return self._table[(pc >> 2) & (self.sets - 1)]

    def lookup(self, pc: int) -> int | None:
        """Predicted target for ``pc``, or None if not resident."""
        cset = self._set_for(pc)
        target = cset.get(pc)
        if target is None:
            self.misses += 1
            return None
        cset.move_to_end(pc)
        self.hits += 1
        return target

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the taken target of branch ``pc``."""
        cset = self._set_for(pc)
        if pc not in cset and len(cset) >= self.assoc:
            cset.popitem(last=False)
        cset[pc] = target
        cset.move_to_end(pc)


class BranchPredictor:
    """gshare + BTB front-end predictor."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        if config.pht_entries & (config.pht_entries - 1):
            raise ValueError("PHT size must be a power of two")
        # 2-bit counters, initialised weakly-not-taken: most static
        # branches are not-taken-biased, so this is the cheaper cold start.
        self._pht = bytearray([1] * config.pht_entries)
        self._pht_mask = config.pht_entries - 1
        self._history = 0
        self._history_mask = (1 << config.history_bits) - 1
        self.btb = BTB(config.btb_sets, config.btb_assoc)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._pht_mask

    def predict(self, pc: int, fallthrough: int) -> tuple[bool, int, BranchUpdate]:
        """Predict direction and target of the branch at ``pc``.

        Returns ``(taken, target, update_token)``.  The global history is
        speculatively updated with the prediction.
        """
        self.predictions += 1
        index = self._index(pc)
        taken = self._pht[index] >= 2
        target = fallthrough
        if taken:
            btb_target = self.btb.lookup(pc)
            if btb_target is None:
                # No target available: fall through (will mispredict if taken).
                taken = False
            else:
                target = btb_target
        token = BranchUpdate(pc, index, self._history, taken, target)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return taken, target, token

    def resolve(self, token: BranchUpdate, taken: bool, target: int) -> bool:
        """Resolve a branch; trains the PHT/BTB and repairs history.

        Returns True if the branch was mispredicted (direction or target).
        """
        counter = self._pht[token.index]
        if taken:
            if counter < 3:
                self._pht[token.index] = counter + 1
            self.btb.update(token.pc, target)
        elif counter > 0:
            self._pht[token.index] = counter - 1
        mispredicted = (taken != token.predicted_taken or
                        (taken and target != token.predicted_target))
        if mispredicted:
            self.mispredictions += 1
            # Repair the speculative history with the actual outcome.
            self._history = (((token.history_before << 1) | int(taken))
                             & self._history_mask)
        return mispredicted

    def mispredict_rate(self) -> float:
        """Fraction of predictions that were wrong (0.0 if none made)."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
