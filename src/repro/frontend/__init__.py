"""Front-end substrate: branch prediction (gshare + BTB) and fetch.

Table 1 of the paper: 16-bit-history 64K-entry-PHT gshare, 2K-set 4-way
BTB, 10-cycle misprediction penalty.  Deeper window levels pay an extra
recovery penalty on top (pipelined IQ issue delay and pipelined ROB
register-field read), modelled by
:meth:`repro.config.ResourceLevel.extra_branch_penalty`.
"""

from repro.frontend.branch import BranchPredictor, BranchUpdate, BTB

__all__ = ["BranchPredictor", "BranchUpdate", "BTB"]
