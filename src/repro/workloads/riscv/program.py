"""RiscvTraceProgram: adapt a decoded RV64 trace into a simulator Trace.

The adapter makes a recorded dynamic trace *interchangeable* with
``generate_trace`` output: it produces a :class:`~repro.workloads.Trace`
with the same wrong-path synthesis machinery, deterministic per
``(content, seed)``, plus cache warm-up regions derived from the
trace's own data footprint (standing in for the profile metadata the
synthetic generator supplies).

Traces are finite recordings of loop kernels, so a request for more
micro-ops than the recording holds is served by *replaying* the trace
cyclically — the behaviour of a program whose outer loop re-runs the
same working set, which keeps steady-state cache behaviour faithful
(a footprint larger than the L2 keeps missing on every lap).
"""

from __future__ import annotations

from repro.workloads.riscv import format as rvformat
from repro.workloads.riscv.isa import to_micro_op
from repro.workloads.trace import Trace, _mix

__all__ = ["RiscvTraceProgram"]

_LINE = 64
#: address gap (bytes) that splits the footprint into separate regions
_CLUSTER_GAP = 64 * 1024
#: regions up to this size are pre-warmed into the L2 (larger ones miss
#: in steady state anyway, so warming them would be misleading)
_WARM_LIMIT = 512 * 1024
#: ...and into the L1D as well when at most this big
_L1_LIMIT = 32 * 1024
_DEFAULT_DATA_BASE = 0x8000_0000


class RiscvTraceProgram:
    """One RISC-V trace workload, addressable as ``riscv:<name>``."""

    def __init__(self, name: str, insns: list[rvformat.RvInsn],
                 content_hash: str | None = None) -> None:
        if not insns:
            raise rvformat.TraceFormatError(
                "empty trace: no instruction records")
        self.name = name if name.startswith("riscv:") else f"riscv:{name}"
        self.insns = insns
        self.content_hash = content_hash or rvformat.content_hash(insns)
        (self.data_base, self.data_size, self.warm_regions,
         self.hot_base, self.hot_size) = self._footprint()

    # ------------------------------------------------------ footprint

    def _footprint(self):
        lines = sorted({i.addr - i.addr % _LINE
                        for i in self.insns if i.addr is not None})
        if not lines:
            return _DEFAULT_DATA_BASE, 4096, [], None, 8192
        clusters: list[tuple[int, int]] = []  # (base, bytes)
        start = prev = lines[0]
        for line in lines[1:]:
            if line - prev > _CLUSTER_GAP:
                clusters.append((start, prev + _LINE - start))
                start = line
            prev = line
        clusters.append((start, prev + _LINE - start))
        warm = [(base, span, span <= _L1_LIMIT)
                for base, span in clusters if span <= _WARM_LIMIT]
        data_base = lines[0]
        data_size = max(4096, lines[-1] + _LINE - data_base)
        if warm:
            hot_base, hot_size, _ = max(warm, key=lambda r: r[1])
        else:
            hot_base, hot_size = data_base, 8192
        return data_base, data_size, warm, hot_base, hot_size

    # ---------------------------------------------------------- trace

    def micro_ops(self) -> list:
        """Decode one full lap of the recording."""
        return [to_micro_op(i) for i in self.insns]

    def trace(self, n_ops: int, seed: int = 1) -> Trace:
        """A simulator trace of exactly ``n_ops`` micro-ops.

        The recording is replayed cyclically to fill ``n_ops``; the
        wrong-path seed folds the trace's content hash with ``seed``,
        so wrong-path work is deterministic per (content, seed) and two
        distinct recordings never share a wrong path by accident.
        """
        if n_ops <= 0:
            raise ValueError("n_ops must be positive")
        ops = []
        while len(ops) < n_ops:
            ops.extend(to_micro_op(i) for i in self.insns)
        del ops[n_ops:]
        wp_seed = _mix(seed ^ int(self.content_hash[:16], 16))
        return Trace(self.name, ops, wp_seed, self.data_base,
                     self.data_size, warm_regions=list(self.warm_regions),
                     hot_base=self.hot_base, hot_size=self.hot_size)
