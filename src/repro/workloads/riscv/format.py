"""The compact RV64 dynamic-trace format: text and packed binary codecs.

One trace is an ordered sequence of :class:`RvInsn` records, one per
*retired* instruction (the correct path only; wrong-path work is
synthesised by the simulator, exactly as for generated traces).

Text form (``.rvt``) — one record per line, eight whitespace-separated
columns with ``-`` for fields an instruction does not use::

    # rvtrace v1 name=memcpy
    # pc         op   rd  rs1 rs2 addr       taken target
    0x00400000   addi x5  x0  -   -          -     -
    0x00400004   ld   x6  x5  -   0x80001000 -     -
    0x00400008   bne  -   x6  x0  -          T     0x00400000

``taken`` is ``T``/``N`` and only valid on branches; ``target`` is the
static taken-target (recorded on not-taken branches too, so the trace
preserves the CFG edge).  Lines starting with ``#`` are comments; a
``# rvtrace v1 name=<name>`` header names the trace.

Binary form (``.rvb``) — ``RVTR`` magic, version byte, name, record
count, then zlib-compressed fixed-width records (29 bytes each,
little-endian ``pc:u64 op:u8 rd:u8 rs1:u8 rs2:u8 flags:u8 addr:u64
target:u64`` with ``0xff`` / all-ones sentinels for absent fields).
The trace **content hash** — the cache identity of every ``riscv:``
workload — is the SHA-256 of the *uncompressed* record block, so it is
independent of compression level, container (text vs binary) and file
name.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

from repro.workloads.riscv.isa import (JUMPS, MEM_SIZE, MNEMONIC_CLASS,
                                       MNEMONICS, OPCODE_INDEX)

__all__ = ["TraceFormatError", "RvInsn", "parse_text", "render_text",
           "pack", "unpack", "content_hash", "validate_insn", "load_file",
           "dump_file"]

MAGIC = b"RVTR"
FORMAT_VERSION = 1

_RECORD = struct.Struct("<QBBBBBQQ")
_NO_REG = 0xFF
_NO_U64 = (1 << 64) - 1
_FLAG_TAKEN = 0x01
_FLAG_HAS_TAKEN = 0x02

_BRANCHES = frozenset(m for m, c in MNEMONIC_CLASS.items()
                      if c.name == "BRANCH")
_MEM = frozenset(MEM_SIZE)


class TraceFormatError(ValueError):
    """A malformed, truncated or semantically invalid trace record."""


class RvInsn:
    """One retired RV64 instruction of a dynamic trace."""

    __slots__ = ("pc", "op", "rd", "rs1", "rs2", "addr", "taken", "target")

    def __init__(self, pc: int, op: str, rd: int | None = None,
                 rs1: int | None = None, rs2: int | None = None,
                 addr: int | None = None, taken: bool | None = None,
                 target: int | None = None) -> None:
        self.pc = pc
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.addr = addr
        self.taken = taken
        self.target = target

    def __eq__(self, other) -> bool:
        return (isinstance(other, RvInsn)
                and all(getattr(self, f) == getattr(other, f)
                        for f in self.__slots__))

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, f) for f in self.__slots__))

    def __repr__(self) -> str:
        return "<RvInsn " + render_line(self) + ">"


def validate_insn(insn: RvInsn, line: int | None = None) -> None:
    """Structural validation of one record; raises TraceFormatError."""
    where = f" (record {line})" if line is not None else ""

    def bad(why: str) -> TraceFormatError:
        return TraceFormatError(f"{why}{where}: {insn!r}")

    if insn.op not in MNEMONIC_CLASS:
        raise TraceFormatError(
            f"unknown opcode {insn.op!r}{where}; supported mnemonics: "
            + " ".join(MNEMONICS))
    for reg in (insn.rd, insn.rs1, insn.rs2):
        if reg is not None and not 0 <= reg <= 31:
            raise bad(f"register x{reg} out of range")
    if not 0 <= insn.pc < _NO_U64:
        raise bad("pc out of range")
    if insn.op in _MEM:
        if insn.addr is None:
            raise bad("memory op without an effective address")
        if not 0 <= insn.addr < _NO_U64:
            raise bad("effective address out of range")
        # misaligned addresses are legal and pass through untouched
    elif insn.addr is not None:
        raise bad("address on a non-memory op")
    if insn.op in _BRANCHES:
        if insn.op in JUMPS:
            if insn.taken is False:
                raise bad("not-taken unconditional jump")
        elif insn.taken is None:
            raise bad("branch without a taken flag")
        if insn.target is None:
            raise bad("branch without a target")
    elif insn.taken is not None or insn.target is not None:
        raise bad("branch fields on a non-branch op")
    if insn.op[0] == "s" and insn.op in _MEM and insn.rd is not None:
        raise bad("store with a destination register")


# ---------------------------------------------------------------- text

def _reg(tok: str) -> int | None:
    if tok == "-":
        return None
    if not tok.startswith("x") or not tok[1:].isdigit():
        raise TraceFormatError(f"bad register token {tok!r}")
    return int(tok[1:])


def _hex(tok: str) -> int | None:
    if tok == "-":
        return None
    try:
        return int(tok, 16)
    except ValueError:
        raise TraceFormatError(f"bad hex token {tok!r}") from None


def parse_line(line: str) -> RvInsn:
    cols = line.split()
    if len(cols) != 8:
        raise TraceFormatError(
            f"expected 8 columns (pc op rd rs1 rs2 addr taken target), "
            f"got {len(cols)}: {line.strip()!r}")
    pc, op, rd, rs1, rs2, addr, taken_tok, target = cols
    if taken_tok == "-":
        taken = None
    elif taken_tok in ("T", "N"):
        taken = taken_tok == "T"
    else:
        raise TraceFormatError(f"bad taken token {taken_tok!r} (T/N/-)")
    pc_val = _hex(pc)
    if pc_val is None:
        raise TraceFormatError("pc column may not be '-'")
    return RvInsn(pc_val, op, _reg(rd), _reg(rs1), _reg(rs2),
                  _hex(addr), taken, _hex(target))


def render_line(insn: RvInsn) -> str:
    def reg(r):
        return "-" if r is None else f"x{r}"

    def hx(v):
        return "-" if v is None else f"0x{v:08x}"

    taken = "-" if insn.taken is None else ("T" if insn.taken else "N")
    return (f"{insn.pc:#010x} {insn.op:<6s} {reg(insn.rd):<3s} "
            f"{reg(insn.rs1):<3s} {reg(insn.rs2):<3s} {hx(insn.addr):<12s} "
            f"{taken} {hx(insn.target)}")


def parse_text(text: str) -> tuple[str, list[RvInsn]]:
    """Parse the text form; returns ``(name, records)``."""
    name = "riscv-trace"
    insns: list[RvInsn] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("name="):
                    name = token[5:]
            continue
        try:
            insn = parse_line(line)
            validate_insn(insn, lineno)
        except TraceFormatError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from None
        insns.append(insn)
    if not insns:
        raise TraceFormatError("empty trace: no instruction records")
    return name, insns


def render_text(name: str, insns: list[RvInsn]) -> str:
    lines = [f"# rvtrace v{FORMAT_VERSION} name={name}",
             "# pc op rd rs1 rs2 addr taken target"]
    lines.extend(render_line(i) for i in insns)
    return "\n".join(lines) + "\n"


# -------------------------------------------------------------- binary

def _pack_record(insn: RvInsn) -> bytes:
    flags = 0
    if insn.taken is not None:
        flags |= _FLAG_HAS_TAKEN
        if insn.taken:
            flags |= _FLAG_TAKEN
    return _RECORD.pack(
        insn.pc, OPCODE_INDEX[insn.op],
        _NO_REG if insn.rd is None else insn.rd,
        _NO_REG if insn.rs1 is None else insn.rs1,
        _NO_REG if insn.rs2 is None else insn.rs2,
        flags,
        _NO_U64 if insn.addr is None else insn.addr,
        _NO_U64 if insn.target is None else insn.target)


def _unpack_record(buf: bytes, offset: int) -> RvInsn:
    pc, opidx, rd, rs1, rs2, flags, addr, target = \
        _RECORD.unpack_from(buf, offset)
    if opidx >= len(MNEMONICS):
        raise TraceFormatError(f"unknown opcode index {opidx} "
                               f"(record {offset // _RECORD.size})")
    taken = None
    if flags & _FLAG_HAS_TAKEN:
        taken = bool(flags & _FLAG_TAKEN)
    return RvInsn(pc, MNEMONICS[opidx],
                  None if rd == _NO_REG else rd,
                  None if rs1 == _NO_REG else rs1,
                  None if rs2 == _NO_REG else rs2,
                  None if addr == _NO_U64 else addr,
                  taken,
                  None if target == _NO_U64 else target)


def record_block(insns: list[RvInsn]) -> bytes:
    """The canonical uncompressed record block (hash input)."""
    return b"".join(_pack_record(i) for i in insns)


def content_hash(insns: list[RvInsn]) -> str:
    """SHA-256 of the canonical record block — the trace's identity."""
    return hashlib.sha256(record_block(insns)).hexdigest()


def pack(name: str, insns: list[RvInsn]) -> bytes:
    """Serialise to the packed binary container."""
    if not insns:
        raise TraceFormatError("empty trace: no instruction records")
    for index, insn in enumerate(insns):
        validate_insn(insn, index)
    name_bytes = name.encode("utf-8")
    if len(name_bytes) > 255:
        raise TraceFormatError("trace name longer than 255 bytes")
    payload = zlib.compress(record_block(insns), 9)
    return (MAGIC + bytes((FORMAT_VERSION, len(name_bytes))) + name_bytes
            + struct.pack("<II", len(insns), len(payload)) + payload)


def unpack(data: bytes) -> tuple[str, list[RvInsn]]:
    """Parse the packed binary container; returns ``(name, records)``."""
    if len(data) < 6 or data[:4] != MAGIC:
        raise TraceFormatError("not an rvtrace binary (bad magic)")
    version, name_len = data[4], data[5]
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported rvtrace version {version}")
    offset = 6
    if len(data) < offset + name_len + 8:
        raise TraceFormatError("truncated rvtrace header")
    name = data[offset:offset + name_len].decode("utf-8")
    offset += name_len
    count, payload_len = struct.unpack_from("<II", data, offset)
    offset += 8
    payload = data[offset:offset + payload_len]
    if len(payload) != payload_len:
        raise TraceFormatError("truncated rvtrace payload")
    try:
        block = zlib.decompress(payload)
    except zlib.error as exc:
        raise TraceFormatError(f"corrupt rvtrace payload: {exc}") from None
    if len(block) != count * _RECORD.size:
        raise TraceFormatError(
            f"truncated record block: expected {count} records "
            f"({count * _RECORD.size} bytes), got {len(block)} bytes")
    if count == 0:
        raise TraceFormatError("empty trace: no instruction records")
    insns = [_unpack_record(block, i * _RECORD.size) for i in range(count)]
    for index, insn in enumerate(insns):
        validate_insn(insn, index)
    return name, insns


# ---------------------------------------------------------------- files

def load_file(path) -> tuple[str, list[RvInsn]]:
    """Load a trace from ``.rvt`` (text) or ``.rvb`` (binary)."""
    path = str(path)
    if path.endswith(".rvt"):
        with open(path, encoding="utf-8") as handle:
            return parse_text(handle.read())
    with open(path, "rb") as handle:
        return unpack(handle.read())


def dump_file(path, name: str, insns: list[RvInsn]) -> None:
    """Write a trace as ``.rvt`` (text) or ``.rvb`` (binary) by suffix."""
    path = str(path)
    if path.endswith(".rvt"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_text(name, insns))
    else:
        with open(path, "wb") as handle:
            handle.write(pack(name, insns))
