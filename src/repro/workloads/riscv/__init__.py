"""RISC-V trace ingestion frontend: real-program workloads.

This package decodes a compact RV64I(+M) dynamic-trace format into the
simulator's :class:`~repro.isa.instructions.MicroOp` stream, making
recorded real-program behaviour a second workload source alongside the
synthetic profile generator.  See ``docs/workloads.md`` for the trace
format, the ``tools/rv_trace.py`` converter, and how ``riscv:``
programs flow through sweeps, campaigns and the service.
"""

from repro.workloads.riscv.corpus import (RISCV_PREFIX, clear_corpus_memo,
                                          corpus_dir, load_corpus_program,
                                          riscv_program_names)
from repro.workloads.riscv.format import (RvInsn, TraceFormatError,
                                          content_hash, pack, parse_text,
                                          render_text, unpack)
from repro.workloads.riscv.isa import (MNEMONIC_CLASS, MNEMONICS,
                                       to_micro_op)
from repro.workloads.riscv.kernels import (DEFAULT_OPS, KERNELS,
                                           build_kernel, kernel_names)
from repro.workloads.riscv.program import RiscvTraceProgram

__all__ = [
    "RISCV_PREFIX", "RvInsn", "RiscvTraceProgram", "TraceFormatError",
    "MNEMONICS", "MNEMONIC_CLASS", "KERNELS", "DEFAULT_OPS",
    "build_kernel", "kernel_names", "content_hash", "corpus_dir",
    "clear_corpus_memo", "load_corpus_program", "pack", "parse_text",
    "render_text", "riscv_program_names", "to_micro_op", "unpack",
]
