"""RV64I(+M) mnemonic tables and the RvInsn → MicroOp decoder.

The simulator consumes :class:`~repro.isa.instructions.MicroOp` streams;
this module maps each supported RISC-V mnemonic onto an
:class:`~repro.isa.instructions.OpClass` and the existing flat register
model (``x0``..``x31`` occupy the integer register file indices 0..31,
exactly the space the synthetic generator draws from).

Decode conventions:

* ``x0`` is the architectural zero register.  A write to ``x0`` is
  discarded (``dst = REG_INVALID``) and a read from ``x0`` creates no
  dependence (it is dropped from ``srcs``) — the rename stage treats an
  absent source as always-ready, which is precisely RISC-V semantics.
* Load/store effective addresses come from the trace record, not from
  register values (the simulator is timing-only); the access width is
  implied by the mnemonic (``lb``=1 .. ``ld``=8).  Misaligned addresses
  are passed through unchanged — the cache model handles any address.
* Branch records carry the *static* taken-target plus the dynamic
  outcome; decode follows the :class:`MicroOp` convention that
  ``target`` holds the fall-through address for not-taken branches.
* ``jal``/``jalr`` are unconditional (always ``taken``).  Their link
  register write is *not* modelled as a dependence (``dst`` stays
  ``REG_INVALID``): the return-address chain is predicted perfectly by
  real front ends and would otherwise serialise every call.
"""

from __future__ import annotations

from repro.isa.instructions import MicroOp, OpClass
from repro.isa.registers import REG_INVALID

__all__ = ["MNEMONICS", "OPCODE_INDEX", "MNEMONIC_CLASS", "MEM_SIZE",
           "JUMPS", "to_micro_op"]

_IALU = (
    "add addi addiw addw and andi auipc lui or ori sext.w sll slli slliw "
    "sllw slt slti sltiu sltu sra srai sraiw sraw srl srli srliw srlw sub "
    "subw xor xori"
)
_IMUL = "mul mulh mulhsu mulhu mulw"
_IDIV = "div divu divuw divw rem remu remuw remw"

#: loads/stores with their access width in bytes
MEM_SIZE: dict[str, int] = {
    "lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4, "ld": 8,
    "sb": 1, "sh": 2, "sw": 4, "sd": 8,
}

_LOADS = frozenset(m for m in MEM_SIZE if m[0] == "l")
_STORES = frozenset(m for m in MEM_SIZE if m[0] == "s")
_CONDITIONAL = frozenset("beq bne blt bge bltu bgeu".split())

#: unconditional control transfers (always taken, may write a link reg)
JUMPS = frozenset(("jal", "jalr"))

#: mnemonic → OpClass for every instruction the frontend accepts
MNEMONIC_CLASS: dict[str, OpClass] = {}
MNEMONIC_CLASS.update({m: OpClass.IALU for m in _IALU.split()})
MNEMONIC_CLASS.update({m: OpClass.IMUL for m in _IMUL.split()})
MNEMONIC_CLASS.update({m: OpClass.IDIV for m in _IDIV.split()})
MNEMONIC_CLASS.update({m: OpClass.LOAD for m in _LOADS})
MNEMONIC_CLASS.update({m: OpClass.STORE for m in _STORES})
MNEMONIC_CLASS.update({m: OpClass.BRANCH for m in _CONDITIONAL})
MNEMONIC_CLASS.update({m: OpClass.BRANCH for m in JUMPS})
MNEMONIC_CLASS["nop"] = OpClass.IALU

#: stable mnemonic order — the packed binary format stores the index
#: into this tuple, so *extending* the ISA table requires a format
#: version bump (see ``format.FORMAT_VERSION``)
MNEMONICS: tuple[str, ...] = tuple(sorted(MNEMONIC_CLASS))
OPCODE_INDEX: dict[str, int] = {m: i for i, m in enumerate(MNEMONICS)}


def to_micro_op(insn) -> MicroOp:
    """Decode one validated :class:`~repro.workloads.riscv.format.RvInsn`
    into a :class:`MicroOp`.

    Assumes the record passed structural validation (see
    ``format.validate_insn``); this is the hot path, re-run for every
    replay lap of a trace, so it does no checking of its own.
    """
    mnem = insn.op
    cls = MNEMONIC_CLASS[mnem]
    dst = REG_INVALID
    if insn.rd is not None and insn.rd != 0 and cls is not OpClass.BRANCH:
        dst = insn.rd
    srcs = tuple(r for r in (insn.rs1, insn.rs2)
                 if r is not None and r != 0)
    if cls is OpClass.LOAD:
        return MicroOp(insn.pc, cls, dst, srcs,
                       addr=insn.addr, size=MEM_SIZE[mnem])
    if cls is OpClass.STORE:
        return MicroOp(insn.pc, cls, REG_INVALID, srcs,
                       addr=insn.addr, size=MEM_SIZE[mnem])
    if cls is OpClass.BRANCH:
        taken = True if mnem in JUMPS else bool(insn.taken)
        target = insn.target if taken else insn.pc + 4
        return MicroOp(insn.pc, cls, srcs=srcs, taken=taken, target=target)
    return MicroOp(insn.pc, cls, dst, srcs)
