"""Hand-written RV64 test kernels and the walker that records them.

``tools/rv_trace.py generate`` needs dynamic traces without a RISC-V
toolchain, so each corpus program is a small *static* RV64 kernel laid
out by :class:`_Kernel` and then executed symbolically: the walker
follows branches (whose outcomes and effective addresses come from
seeded, per-slot-visit callables), emitting one :class:`RvInsn` per
retired instruction with consistent program counters — a taken branch
really lands on its target's pc, so I-cache, BTB and predictor all see
a plausible CFG.

Every kernel is an infinite loop (the last instruction jumps back to
the top), which makes the recorded trace seamlessly replayable: the
final record's taken edge points at the first record's pc.

The six kernels cover the behaviour space the resizing mechanism
discriminates:

========== =========================================================
memcpy     strided streaming copy, independent loads (high MLP)
listchase  pointer chase over an 8 MB pool, serial loads (no MLP)
matmul     blocked inner product over L1-resident tiles (ILP-bound)
hashprobe  data-dependent probes over an 8 MB table (windowed MLP)
bsort      compare-and-swap over an L2-resident array (branchy)
mixed      alternating streaming / compute phases (phase changes)
========== =========================================================
"""

from __future__ import annotations

import random
import zlib

from repro.workloads.riscv.format import RvInsn

__all__ = ["KERNELS", "kernel_names", "build_kernel", "DEFAULT_OPS"]

_CODE_BASE = 0x0040_0000
#: dynamic trace length each corpus kernel is recorded at
DEFAULT_OPS = 8192

_CONDITIONAL = frozenset("beq bne blt bge bltu bgeu".split())


class _Slot:
    __slots__ = ("op", "rd", "rs1", "rs2", "addr", "label", "taken")

    def __init__(self, op, rd=None, rs1=None, rs2=None, addr=None,
                 label=None, taken=None):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.addr = addr
        self.label = label
        self.taken = taken


class _Kernel:
    """A static RV64 code sequence plus the walker that records it."""

    def __init__(self, base: int = _CODE_BASE):
        self.base = base
        self.slots: list[_Slot] = []
        self.labels: dict[str, int] = {}

    def label(self, name: str) -> None:
        self.labels[name] = len(self.slots)

    def alu(self, op: str, rd: int, rs1=None, rs2=None) -> None:
        self.slots.append(_Slot(op, rd=rd, rs1=rs1, rs2=rs2))

    def load(self, op: str, rd: int, rs1: int, addr) -> None:
        """``addr`` is an int or a callable of the slot's visit count."""
        self.slots.append(_Slot(op, rd=rd, rs1=rs1, addr=addr))

    def store(self, op: str, rs2: int, rs1: int, addr) -> None:
        self.slots.append(_Slot(op, rs1=rs1, rs2=rs2, addr=addr))

    def branch(self, op: str, rs1, rs2, label: str, taken=True) -> None:
        """``taken`` is a bool or a callable of the visit count; ignored
        (always taken) for ``jal``/``jalr``."""
        self.slots.append(_Slot(op, rs1=rs1, rs2=rs2, label=label,
                                taken=taken))

    def jump(self, label: str, rd=None) -> None:
        self.slots.append(_Slot("jal", rd=rd, label=label))

    def run(self, n_ops: int) -> list[RvInsn]:
        """Record ``n_ops`` retired instructions starting at slot 0."""
        out: list[RvInsn] = []
        visits = [0] * len(self.slots)
        idx = 0
        while len(out) < n_ops:
            if idx >= len(self.slots):
                raise AssertionError("kernel fell off the end of its code")
            slot = self.slots[idx]
            visit = visits[idx]
            visits[idx] += 1
            pc = self.base + 4 * idx
            addr = slot.addr(visit) if callable(slot.addr) else slot.addr
            if slot.label is not None:
                target = self.base + 4 * self.labels[slot.label]
                if slot.op in _CONDITIONAL:
                    taken = (slot.taken(visit) if callable(slot.taken)
                             else bool(slot.taken))
                    out.append(RvInsn(pc, slot.op, rs1=slot.rs1,
                                      rs2=slot.rs2, taken=taken,
                                      target=target))
                else:  # jal/jalr: unconditional
                    out.append(RvInsn(pc, slot.op, rd=slot.rd,
                                      rs1=slot.rs1, target=target))
                    taken = True
                idx = self.labels[slot.label] if taken else idx + 1
                continue
            out.append(RvInsn(pc, slot.op, rd=slot.rd, rs1=slot.rs1,
                              rs2=slot.rs2, addr=addr))
            idx += 1
        return out


def _rng(name: str) -> random.Random:
    return random.Random(zlib.crc32(name.encode()))


# ------------------------------------------------------------- kernels

def _memcpy(n_ops: int) -> list[RvInsn]:
    """Sparse streaming copy: 8 independent loads + 8 stores per lap,
    advancing 4 KB per iteration — a 1.7 MB source and destination, so
    laps keep missing past the L2 and the stride prefetcher has eight
    concurrent PC-indexed streams to chase."""
    k = _Kernel()
    src, dst, stride = 0x8000_0000, 0x8120_0000, 4096
    k.label("loop")
    for j in range(8):
        k.load("ld", 16 + j, 10, lambda v, j=j: src + v * stride + j * 512)
    for j in range(8):
        k.store("sd", 16 + j, 11, lambda v, j=j: dst + v * stride + j * 512)
    k.alu("addi", 10, 10)
    k.alu("addi", 11, 11)
    k.alu("addi", 12, 12)
    k.branch("bne", 12, 0, "loop")
    return k.run(n_ops)


def _listchase(n_ops: int) -> list[RvInsn]:
    """Pointer chase through a shuffled 8 MB node pool: each lap's chase
    load feeds the next one's address register, so memory time is fully
    serialised — the anti-MLP workload."""
    rng = _rng("listchase")
    pool, node_bytes = 0x9000_0000, 64
    order = list(range(128 * 1024))  # 8 MB / 64 B nodes
    rng.shuffle(order)

    def node(v):
        return pool + order[v % len(order)] * node_bytes

    k = _Kernel()
    k.label("loop")
    k.load("ld", 5, 5, node)                      # next = node->next
    k.load("ld", 6, 5, lambda v: node(v) + 8)     # payload
    k.alu("add", 7, 7, 6)
    k.alu("xor", 9, 9, 6)
    k.alu("addi", 8, 8)
    k.branch("bne", 8, 0, "loop")
    return k.run(n_ops)


def _matmul(n_ops: int) -> list[RvInsn]:
    """Blocked inner product: two 16 KB tiles stay L1-resident while the
    multiply/accumulate chain bounds throughput — ILP territory."""
    a_tile, b_tile, tile = 0xA000_0000, 0xA002_0000, 16 * 1024
    k = _Kernel()
    k.label("loop")
    k.load("ld", 6, 10, lambda v: a_tile + (v * 8) % tile)
    k.load("ld", 7, 11, lambda v: b_tile + (v * 128) % tile)
    k.alu("mul", 8, 6, 7)
    k.alu("add", 9, 9, 8)
    k.alu("addi", 10, 10)
    k.branch("bne", 12, 0, "loop")
    return k.run(n_ops)


def _hashprobe(n_ops: int) -> list[RvInsn]:
    """Open-addressing probe over an 8 MB table: independent random
    loads (MLP limited only by the window) guarded by a data-dependent
    hit/miss branch; a miss falls through to a second probe."""
    rng = _rng("hashprobe")
    table, table_bytes = 0xB000_0000, 8 * 1024 * 1024

    def probe(_v):
        return table + rng.randrange(table_bytes // 8) * 8

    k = _Kernel()
    k.label("loop")
    k.alu("xor", 6, 5, 7)
    k.alu("srli", 6, 6)
    k.load("ld", 8, 6, probe)
    # most probes hit an empty slot (taken = skip the second probe):
    # biased enough that the predictor keeps the window full, so the
    # independent probe loads - not mispredict flushes - bound progress
    k.branch("beq", 8, 0, "skip", taken=lambda _v: rng.random() < 0.92)
    k.load("lbu", 9, 8, probe)                    # occupied: reprobe
    k.alu("add", 14, 14, 9)
    k.label("skip")
    k.alu("addi", 5, 5)
    k.branch("bne", 11, 0, "loop")
    return k.run(n_ops)


def _bsort(n_ops: int) -> list[RvInsn]:
    """Compare-and-swap passes over an L2-resident 128 KB int array:
    the compare branch is ~50/50 data-dependent, so the predictor — not
    memory — limits progress."""
    rng = _rng("bsort")
    arr, arr_bytes = 0xC000_0000, 128 * 1024

    def elem(v):
        return arr + (v * 4) % arr_bytes

    k = _Kernel()
    k.label("loop")
    k.load("lw", 6, 10, elem)
    k.load("lw", 7, 10, lambda v: elem(v) + 4)
    k.branch("blt", 6, 7, "noswap", taken=lambda _v: rng.random() < 0.55)
    k.store("sw", 7, 10, elem)
    k.store("sw", 6, 10, lambda v: elem(v) + 4)
    k.label("noswap")
    k.alu("addi", 10, 10)
    k.alu("addi", 11, 11)
    k.branch("bne", 11, 0, "loop")
    return k.run(n_ops)


def _mixed(n_ops: int) -> list[RvInsn]:
    """Alternating phases: a streaming copy burst (memory-bound), then a
    multiply/accumulate burst over a hot 8 KB block (compute-bound) —
    the phase-change stimulus the dynamic resizing policy tracks."""
    stream, hot = 0xD000_0000, 0xD800_0000
    k = _Kernel()
    k.label("loopA")                               # streaming phase
    k.load("ld", 6, 10, lambda v: stream + v * 1024)
    k.store("sd", 6, 11, lambda v: stream + 0x40_0000 + v * 1024)
    k.alu("addi", 10, 10)
    k.branch("bne", 12, 0, "loopA",
             taken=lambda v: v % 256 != 255)
    k.label("loopB")                               # compute phase
    k.load("ld", 6, 13, lambda v: hot + (v * 8) % 8192)
    k.alu("mul", 8, 6, 7)
    k.alu("add", 9, 9, 8)
    k.alu("addi", 13, 13)
    k.branch("bne", 14, 0, "loopB",
             taken=lambda v: v % 341 != 340)
    k.jump("loopA")
    return k.run(n_ops)


KERNELS = {
    "memcpy": _memcpy,
    "listchase": _listchase,
    "matmul": _matmul,
    "hashprobe": _hashprobe,
    "bsort": _bsort,
    "mixed": _mixed,
}


def kernel_names() -> tuple[str, ...]:
    return tuple(sorted(KERNELS))


def build_kernel(name: str, n_ops: int = DEFAULT_OPS) -> list[RvInsn]:
    """Record ``n_ops`` dynamic instructions of kernel ``name``."""
    try:
        builder = KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown riscv kernel {name!r}; known: "
                       + ", ".join(kernel_names())) from None
    return builder(n_ops)
