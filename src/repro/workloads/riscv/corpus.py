"""The committed RISC-V trace corpus under ``benchmarks/riscv/``.

Programs are addressed as ``riscv:<kernel>`` throughout the stack
(registry, CLI, campaign specs, service payloads).  The corpus
directory is located relative to the installed package (an editable
install points back into the repo checkout) and can be overridden with
``REPRO_RISCV_CORPUS`` — cluster workers that share no filesystem with
the coordinator set it to their local checkout's copy.

Loaded programs are memoised: the decode cost is paid once per process
and every consumer (sweeps, campaign workers, the service, verify)
shares the same :class:`RiscvTraceProgram` instances.
"""

from __future__ import annotations

import os

from repro.workloads.errors import unknown_program
from repro.workloads.riscv.format import load_file
from repro.workloads.riscv.program import RiscvTraceProgram

__all__ = ["RISCV_PREFIX", "corpus_dir", "riscv_program_names",
           "load_corpus_program", "clear_corpus_memo"]

RISCV_PREFIX = "riscv:"
_ENV_DIR = "REPRO_RISCV_CORPUS"
_SUFFIXES = (".rvb", ".rvt")

_memo: dict[str, RiscvTraceProgram] = {}


def corpus_dir() -> str:
    """The corpus directory (may not exist in stripped checkouts)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/workloads/riscv -> repo root
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(here))))
    return os.path.join(root, "benchmarks", "riscv")


def riscv_program_names() -> tuple[str, ...]:
    """Qualified names of every corpus trace on disk, sorted."""
    directory = corpus_dir()
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return ()
    names = []
    for entry in entries:
        stem, dot, suffix = entry.rpartition(".")
        if dot and "." + suffix in _SUFFIXES and stem:
            if RISCV_PREFIX + stem not in names:
                names.append(RISCV_PREFIX + stem)
    return tuple(names)


def _corpus_path(stem: str) -> str | None:
    directory = corpus_dir()
    for suffix in _SUFFIXES:
        path = os.path.join(directory, stem + suffix)
        if os.path.isfile(path):
            return path
    return None


def load_corpus_program(name: str) -> RiscvTraceProgram:
    """Load ``riscv:<kernel>`` from the corpus (memoised)."""
    if not name.startswith(RISCV_PREFIX):
        name = RISCV_PREFIX + name
    cached = _memo.get(name)
    if cached is not None:
        return cached
    stem = name[len(RISCV_PREFIX):]
    path = _corpus_path(stem)
    if (path is None or os.sep in stem
            or (os.altsep and os.altsep in stem)):
        raise unknown_program(name)
    _, insns = load_file(path)
    program = RiscvTraceProgram(name, insns)
    _memo[name] = program
    return program


def clear_corpus_memo() -> None:
    """Drop memoised programs (tests that point at temp corpora)."""
    _memo.clear()
