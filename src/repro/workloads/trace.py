"""Dynamic traces and wrong-path instruction synthesis.

A :class:`Trace` is the correct dynamic path of a program: a list of
:class:`~repro.isa.MicroOp` records.  The pipeline's front end walks it in
order; control flow only affects *timing* (mispredictions redirect fetch
onto a synthesized wrong path until the branch resolves).

Wrong-path micro-ops are generated deterministically from the fetch PC and
a per-trace seed, so runs are reproducible and wrong-path loads pollute
the caches from the same data regions the program uses — the effect
studied in Figure 11 of the paper.
"""

from __future__ import annotations

from repro.isa import MicroOp, OpClass, REG_INVALID


def _mix(x: int) -> int:
    """Cheap deterministic 64-bit mixer (splitmix64 finaliser)."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class WrongPathSynthesizer:
    """Deterministic generator of wrong-path micro-ops.

    Roughly one in five wrong-path micro-ops is a load; the rest are ALU
    operations and the occasional always-taken branch so wrong-path fetch
    keeps moving through the (synthetic) code region.

    A wrong path executes *nearby* code with slightly wrong operands, so
    most of its loads touch data the correct path keeps warm (the hot
    region) and only a minority stray into the cold working set — this
    keeps wrong-path cache pollution at the modest levels the paper
    observes in Figure 11.
    """

    LOAD_FRACTION = 5       # 1-in-5 ops is a load
    BRANCH_FRACTION = 16    # 1-in-16 ops is a branch
    COLD_FRACTION = 64      # 1-in-64 wrong-path loads strays to cold data

    def __init__(self, seed: int, data_base: int, data_size: int,
                 hot_base: int | None = None, hot_size: int = 8192,
                 line_bytes: int = 64) -> None:
        self.seed = seed & 0xFFFFFFFFFFFFFFFF
        self.data_base = data_base
        self.data_size = max(data_size, line_bytes)
        self.hot_base = data_base if hot_base is None else hot_base
        self.hot_size = max(hot_size, line_bytes)
        self.line_bytes = line_bytes

    def op_at(self, pc: int, k: int) -> MicroOp:
        """The ``k``-th wrong-path micro-op fetched from around ``pc``."""
        h = _mix(self.seed ^ (pc << 20) ^ k)
        fake_pc = pc + 4 * (k + 1)
        reg = 1 + (h & 15)
        src = 1 + ((h >> 4) & 15)
        if h % self.LOAD_FRACTION == 0:
            if (h >> 6) % self.COLD_FRACTION == 0:
                addr = self.data_base + (h >> 8) % self.data_size
            else:
                addr = self.hot_base + (h >> 8) % self.hot_size
            addr -= addr % 8
            return MicroOp(fake_pc, OpClass.LOAD, dst=reg, srcs=(src,),
                           addr=addr, size=8)
        if h % self.BRANCH_FRACTION == 1:
            return MicroOp(fake_pc, OpClass.BRANCH, srcs=(src,),
                           taken=True, target=fake_pc + 4)
        return MicroOp(fake_pc, OpClass.IALU, dst=reg, srcs=(src,))


class Trace:
    """The correct dynamic path of one synthetic program run."""

    def __init__(self, name: str, ops: list[MicroOp], seed: int,
                 data_base: int, data_size: int,
                 warm_regions: list[tuple[int, int, bool]] | None = None,
                 hot_base: int | None = None, hot_size: int = 8192) -> None:
        self.name = name
        self.ops = ops
        self.seed = seed
        self.data_base = data_base
        self.data_size = data_size
        #: (base, bytes, l1_too) regions to pre-install in the caches,
        #: substituting for the paper's 16G-instruction warmup skip.
        self.warm_regions = warm_regions or []
        self.wrong_path = WrongPathSynthesizer(seed ^ 0xBADC0DE,
                                               data_base, data_size,
                                               hot_base=hot_base,
                                               hot_size=hot_size)

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, idx: int) -> MicroOp:
        return self.ops[idx]

    def op_counts(self) -> dict[str, int]:
        """Histogram of op classes, for sanity checks and reports."""
        counts: dict[str, int] = {}
        for op in self.ops:
            key = op.op.name
            counts[key] = counts.get(key, 0) + 1
        return counts

    def load_fraction(self) -> float:
        """Fraction of trace micro-ops that are loads."""
        if not self.ops:
            return 0.0
        loads = sum(1 for op in self.ops if op.op is OpClass.LOAD)
        return loads / len(self.ops)
