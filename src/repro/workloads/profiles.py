"""Synthetic profiles for the 28 SPEC CPU2006 programs of Table 3.

Each profile is tuned along the axes the paper's mechanism responds to:

* **average load latency** — the memory-intensive / compute-intensive
  split of Table 3 (threshold 10 cycles);
* **access pattern** — streaming (libquantum, lbm, leslie3d, GemsFDTD),
  pointer-chasing (mcf, omnetpp, xalancbmk), scattered (milc, sphinx3),
  or cache-resident (the compute set);
* **L2 miss clustering** — phase alternation (soplex's Figure 4
  histogram; omnetpp's "well mixed" compute/memory phases that make
  dynamic resizing beat every fixed level);
* **branch predictability** — Table 5 misprediction distances.  With a
  branch every ~13 micro-ops, a Table 5 distance ``D`` needs a per-branch
  misprediction rate of ``13/D``; predictable branches contribute their
  ``bias`` taken-probability and noisy branches ~50%, so
  ``noisy = 2 * (13/D - bias)`` (clamped at 0).

The ``paper_load_latency`` recorded on each profile is the Table 3
reference value, reported side by side with measured values by
``experiments/table3_load_latency.py``.
"""

from __future__ import annotations

from repro.workloads.generator import MemoryBehavior, PhaseSpec, ProgramProfile

KB = 1024
MB = 1024 * 1024


def _phase(name: str, length: int, *, load: float = 0.25, store: float = 0.1,
           fp: float = 0.0, chain: int = 2, noisy: float = 0.05,
           bias: float = 0.002, longop: float = 0.08, blocks: int = 4,
           block_ops: int = 12, mem: MemoryBehavior | None = None) -> PhaseSpec:
    return PhaseSpec(name=name, length=length, load_frac=load,
                     store_frac=store, fp_frac=fp, chain_depth=chain,
                     noisy_branch_frac=noisy, bias_taken_prob=bias,
                     longop_frac=longop, blocks=blocks, block_ops=block_ops,
                     mem=mem if mem is not None else MemoryBehavior())


def _hot(kbytes: int = 8) -> MemoryBehavior:
    """Cache-resident behaviour for compute phases."""
    return MemoryBehavior(hot=1.0, hot_set_bytes=kbytes * KB)


def _streaming(stream_mb: int, stride: int = 8, extra_scatter: float = 0.0,
               ws_mb: int = 4) -> MemoryBehavior:
    return MemoryBehavior(stride=0.8 - extra_scatter, scatter=extra_scatter,
                          hot=0.2, stream_bytes=stream_mb * MB,
                          stride_bytes=stride,
                          working_set_bytes=ws_mb * MB)


def _scatter(ws_mb: float, weight: float = 0.6, chase: float = 0.0) -> MemoryBehavior:
    return MemoryBehavior(scatter=weight, chase=chase,
                          hot=max(0.0, 1.0 - weight - chase),
                          working_set_bytes=int(ws_mb * MB))


# ---------------------------------------------------------------------------
# memory-intensive programs (average load latency > 10 cycles in Table 3)

_MEM_PROFILES = (
    ProgramProfile(
        name="hmmer", category="int", memory_intensive=True,
        paper_load_latency=15.0,
        phases=(
            _phase("scan", 6000, load=0.30, store=0.12, chain=1, noisy=0.01,
                   mem=MemoryBehavior(scatter=0.055, hot=0.945,
                                      working_set_bytes=3 * MB,
                                      hot_set_bytes=24 * KB)),
        )),
    ProgramProfile(
        name="libquantum", category="int", memory_intensive=True,
        paper_load_latency=247.0,
        phases=(
            _phase("gatestream", 8000, load=0.33, store=0.15, chain=1,
                   noisy=0.0, bias=0.0, blocks=2, block_ops=16,
                   mem=MemoryBehavior(stride=0.95, hot=0.05,
                                      stream_bytes=64 * MB, stride_bytes=12,
                                      hot_set_bytes=4 * KB)),
        )),
    ProgramProfile(
        name="mcf", category="int", memory_intensive=True,
        paper_load_latency=52.0,
        phases=(
            _phase("simplex", 6000, load=0.30, store=0.08, chain=3, noisy=0.08,
                   mem=MemoryBehavior(scatter=0.07, chase=0.07, hot=0.86,
                                      working_set_bytes=16 * MB,
                                      hot_set_bytes=768 * KB)),
            _phase("update", 3000, load=0.22, store=0.12, chain=2, noisy=0.05,
                   mem=MemoryBehavior(scatter=0.08, chase=0.04, hot=0.88,
                                      working_set_bytes=8 * MB,
                                      hot_set_bytes=512 * KB)),
        )),
    ProgramProfile(
        name="omnetpp", category="int", memory_intensive=True,
        paper_load_latency=42.0,
        phases=(
            _phase("events", 2500, load=0.30, store=0.10, chain=2, noisy=0.14,
                   mem=_scatter(16, weight=0.20, chase=0.02)),
            _phase("bookkeeping", 2500, load=0.22, store=0.10, chain=2,
                   noisy=0.14, mem=_hot(16)),
        )),
    ProgramProfile(
        name="xalancbmk", category="int", memory_intensive=True,
        paper_load_latency=74.0,
        phases=(
            _phase("treewalk", 5000, load=0.32, store=0.08, chain=2, noisy=0.04,
                   mem=_scatter(24, weight=0.21, chase=0.005)),
            _phase("emit", 2000, load=0.24, store=0.14, chain=1, noisy=0.04,
                   mem=_hot(16)),
        )),
    ProgramProfile(
        name="GemsFDTD", category="fp", memory_intensive=True,
        paper_load_latency=32.0,
        phases=(
            _phase("fieldupdate", 7000, load=0.32, store=0.16, fp=0.7, chain=2,
                   noisy=0.0, bias=0.0013,
                   mem=MemoryBehavior(stride=0.12, scatter=0.07, hot=0.81,
                                      stream_bytes=48 * MB, stride_bytes=16,
                                      working_set_bytes=16 * MB,
                                      hot_set_bytes=256 * KB)),
        )),
    ProgramProfile(
        name="lbm", category="fp", memory_intensive=True,
        paper_load_latency=14.0,
        phases=(
            _phase("collide", 8000, load=0.30, store=0.18, fp=0.75, chain=1,
                   noisy=0.0, bias=0.0004, blocks=2, block_ops=20,
                   mem=MemoryBehavior(stride=0.02, scatter=0.04, hot=0.94,
                                      stream_bytes=48 * MB, stride_bytes=8,
                                      working_set_bytes=6 * MB,
                                      hot_set_bytes=24 * KB,
                                      store_stream_frac=0.9)),
        )),
    ProgramProfile(
        name="leslie3d", category="fp", memory_intensive=True,
        paper_load_latency=72.0,
        phases=(
            _phase("sweep", 7000, load=0.33, store=0.12, fp=0.7, chain=2,
                   noisy=0.012, mem=MemoryBehavior(stride=0.35, scatter=0.18, hot=0.47,
                                      stream_bytes=48 * MB, stride_bytes=16,
                                      working_set_bytes=24 * MB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="milc", category="fp", memory_intensive=True,
        paper_load_latency=12.0,
        phases=(
            _phase("su3", 8000, load=0.24, store=0.10, fp=0.8, chain=2,
                   noisy=0.0, bias=0.0, longop=0.2,
                   mem=MemoryBehavior(scatter=0.02, hot=0.98,
                                      working_set_bytes=16 * MB,
                                      hot_set_bytes=128 * KB)),
        )),
    ProgramProfile(
        name="soplex", category="fp", memory_intensive=True,
        paper_load_latency=36.0,
        phases=(
            _phase("pricing", 4000, load=0.32, store=0.08, fp=0.4, chain=2,
                   noisy=0.165, mem=_scatter(12, weight=0.17, chase=0.01)),
            _phase("pivot", 2500, load=0.22, store=0.10, fp=0.4, chain=2,
                   noisy=0.165, mem=_hot(24)),
        )),
    ProgramProfile(
        name="sphinx3", category="fp", memory_intensive=True,
        paper_load_latency=51.0,
        phases=(
            _phase("gauss", 5000, load=0.33, store=0.06, fp=0.7, chain=2,
                   noisy=0.075, mem=_scatter(16, weight=0.21)),
            _phase("prune", 2000, load=0.24, store=0.08, fp=0.3, chain=2,
                   noisy=0.075, mem=_hot(24)),
        )),
)

# ---------------------------------------------------------------------------
# compute-intensive programs (average load latency <= 10 cycles in Table 3)

_COMP_PROFILES = (
    ProgramProfile(
        name="astar", category="int", memory_intensive=False,
        paper_load_latency=7.0,
        phases=(
            _phase("pathfind", 6000, load=0.28, store=0.08, chain=3, noisy=0.12,
                   mem=MemoryBehavior(scatter=0.05, chase=0.03, hot=0.92,
                                      working_set_bytes=1280 * KB,
                                      hot_set_bytes=24 * KB)),
        )),
    ProgramProfile(
        name="bzip2", category="int", memory_intensive=False,
        paper_load_latency=3.0,
        phases=(
            _phase("sort", 6000, load=0.28, store=0.12, chain=2, noisy=0.06,
                   mem=MemoryBehavior(scatter=0.06, hot=0.94,
                                      working_set_bytes=768 * KB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="gcc", category="int", memory_intensive=False,
        paper_load_latency=6.0,
        phases=(
            _phase("parse", 3500, load=0.26, store=0.12, chain=2, noisy=0.001,
                   mem=MemoryBehavior(scatter=0.10, hot=0.90,
                                      working_set_bytes=1 * MB,
                                      hot_set_bytes=32 * KB)),
            _phase("optimize", 3500, load=0.24, store=0.10, chain=3,
                   noisy=0.001, mem=_hot(24)),
        )),
    ProgramProfile(
        name="gobmk", category="int", memory_intensive=False,
        paper_load_latency=3.0,
        phases=(
            _phase("search", 6000, load=0.24, store=0.10, chain=2, noisy=0.36,
                   mem=_hot(24)),
        )),
    ProgramProfile(
        name="h264ref", category="int", memory_intensive=False,
        paper_load_latency=3.0,
        phases=(
            _phase("motionest", 6000, load=0.30, store=0.10, chain=1,
                   noisy=0.02, mem=MemoryBehavior(stride=0.30, hot=0.70,
                                                  stream_bytes=256 * KB,
                                                  stride_bytes=8,
                                                  hot_set_bytes=24 * KB)),
        )),
    ProgramProfile(
        name="perlbench", category="int", memory_intensive=False,
        paper_load_latency=4.0,
        phases=(
            _phase("interp", 6000, load=0.28, store=0.14, chain=2, noisy=0.05,
                   mem=MemoryBehavior(scatter=0.05, hot=0.95,
                                      working_set_bytes=1 * MB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="sjeng", category="int", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("alphabeta", 6000, load=0.22, store=0.08, chain=2,
                   noisy=0.22, mem=_hot(16)),
        )),
    ProgramProfile(
        name="bwaves", category="fp", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("blockkernel", 6000, load=0.30, store=0.10, fp=0.8,
                   chain=1, noisy=0.15, longop=0.15,
                   mem=MemoryBehavior(stride=0.40, hot=0.60,
                                      stream_bytes=192 * KB, stride_bytes=8,
                                      hot_set_bytes=24 * KB)),
        )),
    ProgramProfile(
        name="cactusADM", category="fp", memory_intensive=False,
        paper_load_latency=5.0,
        phases=(
            _phase("stencil", 6000, load=0.30, store=0.12, fp=0.8, chain=2,
                   noisy=0.0, longop=0.15,
                   mem=MemoryBehavior(stride=0.35, scatter=0.04, hot=0.61,
                                      stream_bytes=768 * KB, stride_bytes=16,
                                      working_set_bytes=512 * KB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="calculix", category="fp", memory_intensive=False,
        paper_load_latency=6.0,
        phases=(
            _phase("solve", 6000, load=0.28, store=0.10, fp=0.7, chain=3,
                   noisy=0.01, longop=0.18,
                   mem=MemoryBehavior(scatter=0.08, hot=0.92,
                                      working_set_bytes=1280 * KB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="dealII", category="fp", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("assemble", 6000, load=0.28, store=0.10, fp=0.7, chain=2,
                   noisy=0.016, longop=0.12, mem=_hot(32)),
        )),
    ProgramProfile(
        name="gamess", category="fp", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("integrals", 6000, load=0.26, store=0.08, fp=0.85, chain=2,
                   noisy=0.01, longop=0.22, mem=_hot(24)),
        )),
    ProgramProfile(
        name="gromacs", category="fp", memory_intensive=False,
        paper_load_latency=5.0,
        phases=(
            _phase("forces", 6000, load=0.28, store=0.10, fp=0.75, chain=2,
                   noisy=0.01, longop=0.18,
                   mem=MemoryBehavior(scatter=0.06, hot=0.94,
                                      working_set_bytes=1 * MB,
                                      hot_set_bytes=32 * KB)),
        )),
    ProgramProfile(
        name="namd", category="fp", memory_intensive=False,
        paper_load_latency=3.0,
        phases=(
            _phase("pairlists", 6000, load=0.30, store=0.08, fp=0.8, chain=1,
                   noisy=0.005, longop=0.15, mem=_hot(32)),
        )),
    ProgramProfile(
        name="povray", category="fp", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("raytrace", 6000, load=0.26, store=0.08, fp=0.7, chain=3,
                   noisy=0.02, longop=0.2, mem=_hot(16)),
        )),
    ProgramProfile(
        name="tonto", category="fp", memory_intensive=False,
        paper_load_latency=2.0,
        phases=(
            _phase("scf", 6000, load=0.26, store=0.08, fp=0.85, chain=2,
                   noisy=0.057, longop=0.2, mem=_hot(24)),
        )),
    ProgramProfile(
        name="zeusmp", category="fp", memory_intensive=False,
        paper_load_latency=6.0,
        phases=(
            _phase("hydro", 6000, load=0.30, store=0.12, fp=0.8, chain=2,
                   noisy=0.005, longop=0.15,
                   mem=MemoryBehavior(stride=0.30, scatter=0.008, hot=0.692,
                                      stream_bytes=1280 * KB, stride_bytes=24,
                                      working_set_bytes=8 * MB,
                                      hot_set_bytes=32 * KB)),
        )),
)

#: name -> profile, in Table 3 order (memory-intensive first).
PROFILES: dict[str, ProgramProfile] = {
    p.name: p for p in _MEM_PROFILES + _COMP_PROFILES}

MEMORY_INTENSIVE: tuple[str, ...] = tuple(p.name for p in _MEM_PROFILES)
COMPUTE_INTENSIVE: tuple[str, ...] = tuple(p.name for p in _COMP_PROFILES)

#: The programs whose per-program bars the paper shows in Figure 7.
SELECTED_MEMORY: tuple[str, ...] = (
    "libquantum", "omnetpp", "GemsFDTD", "lbm", "leslie3d", "milc",
    "soplex", "sphinx3")
SELECTED_COMPUTE: tuple[str, ...] = (
    "bwaves", "gcc", "gobmk", "sjeng", "dealII", "tonto")


def profile(name: str) -> ProgramProfile:
    """Look up a profile by SPEC2006 program name.

    Falls back to the adversarial registry
    (:mod:`repro.workloads.adversarial`), so sweeps and experiments can
    request ``adv_*`` programs by name — without those ever joining
    :data:`PROFILES`, which must keep mirroring the paper's Table 3.
    """
    try:
        return PROFILES[name]
    except KeyError:
        from repro.workloads.adversarial import ADVERSARIAL_PROFILES
        try:
            return ADVERSARIAL_PROFILES[name]
        except KeyError:
            from repro.workloads.errors import unknown_program
            raise unknown_program(name) from None


def program_names(memory_only: bool = False,
                  compute_only: bool = False) -> tuple[str, ...]:
    """All program names, optionally restricted to one category."""
    if memory_only and compute_only:
        raise ValueError("choose at most one restriction")
    if memory_only:
        return MEMORY_INTENSIVE
    if compute_only:
        return COMPUTE_INTENSIVE
    return MEMORY_INTENSIVE + COMPUTE_INTENSIVE
