"""Parameterised micro-kernel workloads.

The SPEC profiles of :mod:`repro.workloads.profiles` answer "does the
paper reproduce?"; these kernels answer "*when* does the mechanism pay?"
Each factory returns a normal :class:`ProgramProfile`, so kernels run
through the same `generate_trace` / `simulate` pipeline and can be swept
along a single axis (working-set size, stride, chase depth, phase
period, branch entropy).

Example — find the working-set size where resizing starts winning::

    from repro.workloads.kernels import random_access_kernel
    for mb in (0.5, 1, 2, 4, 8, 16):
        prof = random_access_kernel(working_set_mb=mb)
        ...
"""

from __future__ import annotations

from repro.workloads.generator import (
    MemoryBehavior,
    PhaseSpec,
    ProgramProfile,
)

KB = 1024
MB = 1024 * 1024


def stream_kernel(array_mb: float = 64, stride_bytes: int = 16,
                  load_frac: float = 0.32, store_frac: float = 0.12,
                  name: str = "k_stream") -> ProgramProfile:
    """Sequential array walk (libquantum/STREAM-like).

    MLP is plentiful and prefetcher-visible; the interesting knob is
    ``stride_bytes`` — it sets both the line-demand rate and how far the
    16-data prefetcher can see.
    """
    mem = MemoryBehavior(stride=0.92, hot=0.08,
                         stream_bytes=int(array_mb * MB),
                         stride_bytes=stride_bytes,
                         hot_set_bytes=8 * KB)
    phase = PhaseSpec(name="stream", length=8000, load_frac=load_frac,
                      store_frac=store_frac, chain_depth=1,
                      noisy_branch_frac=0.0, bias_taken_prob=0.0,
                      blocks=2, block_ops=16, mem=mem)
    return ProgramProfile(name=name, category="int", memory_intensive=True,
                          phases=(phase,))


def pointer_chase_kernel(working_set_mb: float = 16,
                         chase_frac: float = 0.15,
                         name: str = "k_chase") -> ProgramProfile:
    """Serial pointer chasing (linked-list walk).

    Each chase load's address depends on the previous one, so misses
    cannot overlap — the anti-MLP workload.  A window of any size is
    bounded by the chase chain; ``chase_frac`` dials how dominant it is.
    """
    mem = MemoryBehavior(chase=chase_frac, hot=1.0 - chase_frac,
                         working_set_bytes=int(working_set_mb * MB),
                         hot_set_bytes=16 * KB)
    phase = PhaseSpec(name="chase", length=6000, load_frac=0.30,
                      store_frac=0.05, chain_depth=2,
                      noisy_branch_frac=0.02, mem=mem)
    return ProgramProfile(name=name, category="int", memory_intensive=True,
                          phases=(phase,))


def random_access_kernel(working_set_mb: float = 16,
                         scatter_frac: float = 0.4,
                         name: str = "k_gups") -> ProgramProfile:
    """Independent random accesses over a working set (GUPS-like).

    Prefetcher-proof but fully overlappable: the window size directly
    sets the achieved MLP.  Sweep ``working_set_mb`` through the L2 size
    to watch the mechanism switch on.
    """
    mem = MemoryBehavior(scatter=scatter_frac, hot=1.0 - scatter_frac,
                         working_set_bytes=int(working_set_mb * MB),
                         hot_set_bytes=16 * KB)
    phase = PhaseSpec(name="gups", length=6000, load_frac=0.32,
                      store_frac=0.08, chain_depth=1,
                      noisy_branch_frac=0.01, mem=mem)
    return ProgramProfile(name=name, category="int", memory_intensive=True,
                          phases=(phase,))


def stencil_kernel(grid_mb: float = 24, name: str = "k_stencil"
                   ) -> ProgramProfile:
    """Structured-grid sweep (GemsFDTD/zeusmp-like): several parallel
    streams plus neighbour reuse from the cache."""
    mem = MemoryBehavior(stride=0.30, scatter=0.05, hot=0.65,
                         stream_bytes=int(grid_mb * MB), stride_bytes=24,
                         working_set_bytes=int(grid_mb * MB),
                         hot_set_bytes=32 * KB)
    phase = PhaseSpec(name="stencil", length=7000, load_frac=0.32,
                      store_frac=0.14, fp_frac=0.75, chain_depth=2,
                      noisy_branch_frac=0.0, longop_frac=0.15, mem=mem)
    return ProgramProfile(name=name, category="fp", memory_intensive=True,
                          phases=(phase,))


def compute_kernel(chain_depth: int = 2, branch_entropy: float = 0.05,
                   fp_frac: float = 0.0,
                   name: str = "k_compute") -> ProgramProfile:
    """Cache-resident computation: pure ILP, no exploitable MLP.

    ``chain_depth`` dials the serial dependence density (what the
    pipelined IQ hurts); ``branch_entropy`` the misprediction rate.
    """
    phase = PhaseSpec(name="compute", length=6000, load_frac=0.24,
                      store_frac=0.08, fp_frac=fp_frac,
                      chain_depth=chain_depth,
                      noisy_branch_frac=branch_entropy,
                      mem=MemoryBehavior(hot=1.0, hot_set_bytes=24 * KB))
    return ProgramProfile(name=name, category="int", memory_intensive=False,
                          phases=(phase,))


def phased_kernel(memory_ops: int = 2500, compute_ops: int = 2500,
                  working_set_mb: float = 16,
                  name: str = "k_phased") -> ProgramProfile:
    """Alternating memory/compute phases (omnetpp-like).

    The workload where adaptivity beats *every* fixed window: set the
    phase lengths against the shrink timer (300 cycles) to study the
    controller's reaction time.
    """
    mem_phase = PhaseSpec(
        name="mem", length=memory_ops, load_frac=0.30, store_frac=0.08,
        chain_depth=2, noisy_branch_frac=0.05,
        mem=MemoryBehavior(scatter=0.30, hot=0.70,
                           working_set_bytes=int(working_set_mb * MB),
                           hot_set_bytes=16 * KB))
    comp_phase = PhaseSpec(
        name="comp", length=compute_ops, load_frac=0.24, store_frac=0.08,
        chain_depth=2, noisy_branch_frac=0.05,
        mem=MemoryBehavior(hot=1.0, hot_set_bytes=16 * KB))
    return ProgramProfile(name=name, category="int", memory_intensive=True,
                          phases=(mem_phase, comp_phase))


#: name -> zero-argument factory, for enumeration in tools and tests
KERNELS = {
    "stream": stream_kernel,
    "chase": pointer_chase_kernel,
    "gups": random_access_kernel,
    "stencil": stencil_kernel,
    "compute": compute_kernel,
    "phased": phased_kernel,
}
