"""Workload-source registry: one dispatch point for every program name.

Three namespaces feed the simulator with traces:

* the synthetic Table-3 profile table (bare names, ``mcf`` ...),
* the adversarial generators (``adv_*``), and
* the RISC-V trace corpus (``riscv:<kernel>``).

Everything that turns a program *name* into a trace — sweeps, campaign
workers, the service, verify oracles, the CLI — goes through
:func:`trace_for_program`, so a new source only has to be added here.
:func:`program_cache_identity` supplies the string that stands for the
program inside ``result_key``: for ``riscv:`` workloads it folds in the
trace content hash, making cache identity exact (editing a trace file
changes every derived key; renaming it does not).
"""

from __future__ import annotations

from repro.workloads.errors import UnknownProgramError, unknown_program
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile
from repro.workloads.trace import Trace

__all__ = ["trace_for_program", "ensure_program", "known_program",
           "program_cache_identity", "workload_namespaces",
           "all_program_names"]

_RISCV_PREFIX = "riscv:"


def trace_for_program(program: str, n_ops: int, seed: int = 1) -> Trace:
    """Build the trace for ``program`` from whichever source owns it."""
    if program.startswith(_RISCV_PREFIX):
        from repro.workloads.riscv.corpus import load_corpus_program
        return load_corpus_program(program).trace(n_ops, seed)
    return generate_trace(profile(program), n_ops=n_ops, seed=seed)


def ensure_program(program: str) -> None:
    """Validate that ``program`` resolves; raises UnknownProgramError.

    Cheap: table lookups for synthetic names, a directory probe for
    ``riscv:`` names — no trace is decoded or generated.
    """
    if program.startswith(_RISCV_PREFIX):
        from repro.workloads.riscv.corpus import riscv_program_names
        if program not in riscv_program_names():
            raise unknown_program(program)
        return
    profile(program)


def known_program(program: str) -> bool:
    """True when :func:`ensure_program` would accept ``program``."""
    try:
        ensure_program(program)
    except UnknownProgramError:
        return False
    return True


def program_cache_identity(program: str) -> str:
    """The string that identifies ``program`` in result keys.

    Synthetic programs are fully determined by their name (the profile
    table is versioned by ``SIM_VERSION``); a ``riscv:`` program is
    determined by its trace *content*, so the identity carries the
    content hash.  SMT program lists (``a+b``) resolve per part.
    """
    if "+" in program:
        return "+".join(program_cache_identity(p)
                        for p in program.split("+"))
    if program.startswith(_RISCV_PREFIX):
        from repro.workloads.riscv.corpus import load_corpus_program
        return f"{program}@{load_corpus_program(program).content_hash[:16]}"
    return program


def all_program_names() -> tuple[str, ...]:
    """Every addressable program: table names plus the riscv corpus
    (adversarial ``adv_*`` names stay out, as they do for
    ``program_names`` — they are diagnostics, not benchmarks)."""
    from repro.workloads.profiles import program_names
    from repro.workloads.riscv.corpus import riscv_program_names
    return program_names() + riscv_program_names()


def workload_namespaces() -> dict[str, str]:
    """Namespace → one-line description (for ``/v1/programs`` and CLI)."""
    return {
        "table": "synthetic Table-3 SPEC2006 profiles (bare names)",
        "adv_*": "adversarial stress generators",
        "riscv:*": "RV64 dynamic-trace corpus (benchmarks/riscv)",
    }
