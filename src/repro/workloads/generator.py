"""Phase-structured synthetic program generator.

A :class:`ProgramProfile` describes a program as a cycle of *phases*; each
phase is a loop nest with a fixed static code layout (so the gshare
predictor, BTB, I-cache and the PC-indexed stride prefetcher see stable,
learnable instruction addresses) and a parameterised memory behaviour.

The generator emits the correct dynamic path as a list of
:class:`~repro.isa.MicroOp`.  Register dependences are synthesized to hit
a target dependence-chain depth (the ILP knob); load addresses follow
per-PC streams (striding, pointer-chasing, scattered or hot), which is
the MLP/prefetchability knob; phase alternation provides the L2 miss
clustering the resizing controller exploits (paper Figure 4).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.isa import MicroOp, OpClass, REG_INVALID
from repro.workloads.trace import Trace

#: Code addresses: each phase gets its own 64KB region.
_CODE_BASE = 0x0040_0000
_CODE_REGION = 0x1_0000
#: Data addresses: each phase gets its own gigabyte-aligned region so
#: different phases never share cache lines.
_DATA_BASE = 0x4000_0000
_DATA_REGION = 0x4000_0000

#: Registers used for synthetic dataflow.  r0 is reserved as "always
#: ready" (like the architectural zero register); dataflow rotates over a
#: pool so dependences are explicit and WAW noise is bounded.
_INT_POOL = tuple(range(1, 25))
_FP_POOL = tuple(range(33, 57))
_CHASE_REG = 30      # register carrying the pointer in chase chains
_STRIDE_REG = 31     # induction-like register for address computation


@dataclass(frozen=True)
class MemoryBehavior:
    """Where a phase's loads and stores go.

    The four access-pattern weights are normalised internally:

    * ``stride``: sequential walk over ``stream_bytes`` with
      ``stride_bytes`` steps — prefetcher-friendly, high MLP.
    * ``chase``: pointer chase — each chase load's *address* depends on
      the previous chase load's result, so misses serialise (low MLP).
    * ``scatter``: uniform random over ``working_set_bytes`` — defeats
      the prefetcher; MLP limited only by the window.
    * ``hot``: random over ``hot_set_bytes`` (L1-resident by default) —
      cache-friendly traffic.
    """

    stride: float = 0.0
    chase: float = 0.0
    scatter: float = 0.0
    hot: float = 1.0
    working_set_bytes: int = 16 * 1024
    hot_set_bytes: int = 8 * 1024
    stream_bytes: int = 1 * 1024 * 1024
    stride_bytes: int = 8
    #: if set, stores follow the stride stream with this probability
    #: (else the hot set) instead of the load weights — models programs
    #: like lbm whose misses are dominated by a write stream.
    store_stream_frac: float | None = None

    def weights(self) -> tuple[float, float, float, float]:
        total = self.stride + self.chase + self.scatter + self.hot
        if total <= 0:
            raise ValueError("memory behaviour weights must sum > 0")
        return (self.stride / total, self.chase / total,
                self.scatter / total, self.hot / total)


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a program: a loop with fixed code and memory behaviour."""

    name: str
    #: dynamic micro-ops emitted per phase instance
    length: int
    mem: MemoryBehavior = field(default_factory=MemoryBehavior)
    load_frac: float = 0.25
    store_frac: float = 0.10
    fp_frac: float = 0.0
    #: average arithmetic dependence chain depth; 1 = wide ILP, larger =
    #: serial chains
    chain_depth: int = 2
    #: basic blocks in the loop body and micro-ops per block
    blocks: int = 4
    block_ops: int = 12
    #: fraction of conditional branches whose outcome is (nearly)
    #: unpredictable, and their taken probability
    noisy_branch_frac: float = 0.1
    noisy_taken_prob: float = 0.5
    #: taken probability of the predictable (biased) conditional branches;
    #: together with ``noisy_branch_frac`` this sets the Table 5
    #: misprediction distance
    bias_taken_prob: float = 0.002
    #: long-latency non-memory op mix (mul/div) among arithmetic ops
    longop_frac: float = 0.08

    def __post_init__(self) -> None:
        if self.length < self.blocks * (self.block_ops + 1):
            raise ValueError(
                f"phase '{self.name}': length {self.length} shorter than one "
                f"loop iteration")
        if not 0.0 <= self.load_frac + self.store_frac <= 1.0:
            raise ValueError("load_frac + store_frac must be within [0, 1]")
        if self.chain_depth < 1:
            raise ValueError("chain_depth must be >= 1")


@dataclass(frozen=True)
class ProgramProfile:
    """A synthetic stand-in for one SPEC2006 program."""

    name: str
    category: str                      # "int" or "fp"
    memory_intensive: bool
    phases: tuple[PhaseSpec, ...]
    #: Table 3 reference value (average load latency, cycles) — used only
    #: for reporting alongside measured values.
    paper_load_latency: float = 0.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("profile needs at least one phase")
        if self.category not in ("int", "fp"):
            raise ValueError("category must be 'int' or 'fp'")


# static slot memory patterns
_PAT_STRIDE = 0
_PAT_CHASE = 1
_PAT_MIXED = 2      # scatter-or-hot, rolled per dynamic instance
_PAT_SCATTER = 3    # resolved dynamic patterns
_PAT_HOT = 4


class _StaticOp:
    """Template of one static instruction slot (same PC → same behaviour)."""

    __slots__ = ("pc", "kind", "pattern", "taken_prob", "target", "stream_id")

    def __init__(self, pc: int, kind: OpClass, pattern: int = -1,
                 taken_prob: float = 0.0, target: int = 0,
                 stream_id: int = -1) -> None:
        self.pc = pc
        self.kind = kind
        self.pattern = pattern       # one of the _PAT_* constants
        self.taken_prob = taken_prob
        self.target = target         # taken target for branches
        self.stream_id = stream_id   # sub-stream of striding slots


class _PhaseState:
    """Mutable per-phase dynamic state (streams, registers, layout)."""

    def __init__(self, spec: PhaseSpec, index: int, rng: random.Random) -> None:
        self.spec = spec
        self.code_base = _CODE_BASE + index * _CODE_REGION
        self.data_base = _DATA_BASE + index * _DATA_REGION
        self.static_ops, n_streams = _build_static_loop(
            spec, self.code_base, rng)
        # Each striding slot walks its own partition of the stream region,
        # like a loop body reading several distinct arrays.  This keeps
        # the per-PC stride equal to the program's element stride, which
        # is what the PC-indexed stride prefetcher sees in real code.
        # Partition starts are skewed by a non-power-of-two amount so the
        # parallel streams do not alias into the same cache sets (real
        # arrays are not megabyte-aligned either).
        self.n_streams = max(1, n_streams)
        partition = spec.mem.stream_bytes // self.n_streams
        self.stream_partition = max(partition - partition % 64 - 8192,
                                    64 * max(1, spec.mem.stride_bytes // 64 + 1))
        self.stream_skew = 127 * 64
        self.stream_pos = [0] * self.n_streams
        self.int_cursor = 0
        self.fp_cursor = 0
        #: ring of recent destination registers for dependence synthesis
        self.recent: list[int] = [0] * 8


def _build_static_loop(spec: PhaseSpec, code_base: int,
                       rng: random.Random) -> tuple[list[_StaticOp], int]:
    """Lay out the static loop body of a phase.

    The loop is ``spec.blocks`` basic blocks; each block ends in a
    conditional branch to the next block and the final block ends in a
    loop-back branch (always taken, perfectly learnable).  Conditional
    branches are taken with probability ``noisy_branch_frac *
    noisy_taken_prob + bias_taken_prob`` — an i.i.d. outcome the gshare
    predictor settles to predicting not-taken, so the per-branch
    misprediction rate equals that probability exactly (this is how the
    profiles hit their Table 5 misprediction distances without the
    variance of randomly assigning whole branches as noisy).

    Returns the ops and the number of striding (sub-stream) slots.
    """
    ops: list[_StaticOp] = []
    pc = code_base
    weights = spec.mem.weights()
    cond_taken = min(0.5, spec.noisy_branch_frac * spec.noisy_taken_prob
                     + spec.bias_taken_prob)
    n_streams = 0
    # Stride and chase need *dedicated* static slots (the PC-indexed
    # prefetcher and the serial chase chain are per-PC properties), but
    # scatter vs hot is decided per dynamic instance (_PAT_MIXED) so that
    # small scatter weights are not quantised away by the slot count.
    mixed_weight = weights[2] + weights[3]
    for block in range(spec.blocks):
        for __ in range(spec.block_ops):
            roll = rng.random()
            if roll < spec.load_frac:
                pattern = rng.choices(
                    (_PAT_STRIDE, _PAT_CHASE, _PAT_MIXED),
                    weights=(weights[0], weights[1], mixed_weight))[0]
                stream_id = -1
                if pattern == _PAT_STRIDE:
                    stream_id = n_streams
                    n_streams += 1
                ops.append(_StaticOp(pc, OpClass.LOAD, pattern=pattern,
                                     stream_id=stream_id))
            elif roll < spec.load_frac + spec.store_frac:
                if spec.mem.store_stream_frac is not None:
                    stream_p = spec.mem.store_stream_frac
                    pattern = (_PAT_STRIDE if rng.random() < stream_p
                               else _PAT_MIXED)
                else:
                    pattern = rng.choices(
                        (_PAT_STRIDE, _PAT_MIXED),
                        weights=(weights[0],
                                 mixed_weight + weights[1]))[0]
                stream_id = -1
                if pattern == _PAT_STRIDE:
                    stream_id = n_streams
                    n_streams += 1
                ops.append(_StaticOp(pc, OpClass.STORE, pattern=pattern,
                                     stream_id=stream_id))
            else:
                is_fp = rng.random() < spec.fp_frac
                if rng.random() < spec.longop_frac:
                    kind = OpClass.FPMUL if is_fp else OpClass.IMUL
                else:
                    kind = OpClass.FPALU if is_fp else OpClass.IALU
                ops.append(_StaticOp(pc, kind))
            pc += 4
        last_block = block == spec.blocks - 1
        if last_block:
            ops.append(_StaticOp(pc, OpClass.BRANCH,
                                 taken_prob=1.0, target=code_base))
        else:
            ops.append(_StaticOp(pc, OpClass.BRANCH,
                                 taken_prob=cond_taken, target=pc + 4))
        pc += 4
    return ops, n_streams


class TraceGenerator:
    """Generates the correct dynamic path for a :class:`ProgramProfile`."""

    def __init__(self, profile: ProgramProfile, seed: int = 1) -> None:
        self.profile = profile
        self.seed = seed
        # zlib.crc32 rather than hash(): stable across interpreter runs.
        self._rng = random.Random((seed << 8) ^ zlib.crc32(profile.name.encode()))
        self._phases = [_PhaseState(spec, i, random.Random(self._rng.random()))
                        for i, spec in enumerate(profile.phases)]

    # ------------------------------------------------------------------
    # dependence synthesis

    def _pick_srcs(self, state: _PhaseState, nsrcs: int) -> tuple[int, ...]:
        """Pick source registers from recently written destinations.

        The distance back in the ``recent`` ring follows the phase's
        ``chain_depth``: depth 1 reads old (ready) values — wide ILP —
        while larger depths mostly read the most recent value, producing
        serial chains.
        """
        spec = state.spec
        rng = self._rng
        srcs = []
        for __ in range(nsrcs):
            if spec.chain_depth <= 1:
                back = rng.randint(3, len(state.recent) - 1)
            else:
                # Fraction of reads that extend a serial chain; real code
                # interleaves chains, so even chain-heavy programs read a
                # just-produced value only part of the time.
                serial_bias = (spec.chain_depth - 1) / (spec.chain_depth + 1)
                if rng.random() < serial_bias:
                    back = rng.randint(0, 1)
                else:
                    back = rng.randint(2, len(state.recent) - 1)
            srcs.append(state.recent[-1 - back] if back < len(state.recent)
                        else state.recent[0])
        return tuple(srcs)

    def _alloc_dst(self, state: _PhaseState, fp: bool) -> int:
        pool = _FP_POOL if fp else _INT_POOL
        if fp:
            state.fp_cursor = (state.fp_cursor + 1) % len(pool)
            dst = pool[state.fp_cursor]
        else:
            state.int_cursor = (state.int_cursor + 1) % len(pool)
            dst = pool[state.int_cursor]
        state.recent.append(dst)
        if len(state.recent) > 12:
            state.recent.pop(0)
        return dst

    # ------------------------------------------------------------------
    # address synthesis

    def _address_for(self, state: _PhaseState, pattern: int,
                     stream_id: int = -1) -> tuple[int, tuple[int, ...]]:
        """Effective address and *address-generation* source registers."""
        mem = state.spec.mem
        base = state.data_base
        rng = self._rng
        if pattern == _PAT_STRIDE:    # per-slot sub-stream
            slot = max(0, stream_id)
            addr = (base + slot * (state.stream_partition + state.stream_skew)
                    + state.stream_pos[slot])
            state.stream_pos[slot] = ((state.stream_pos[slot]
                                       + mem.stride_bytes)
                                      % state.stream_partition)
            return addr, (_STRIDE_REG,)
        if pattern == _PAT_CHASE:     # depends on previous chase load
            offset = rng.randrange(0, mem.working_set_bytes, 8)
            return base + 0x1000_0000 + offset, (_CHASE_REG,)
        if pattern == _PAT_MIXED:
            weights = mem.weights()
            scatter_p = weights[2] / max(1e-12, weights[2] + weights[3])
            pattern = _PAT_SCATTER if rng.random() < scatter_p else _PAT_HOT
        if pattern == _PAT_SCATTER:
            # Array-indexed scatter: the address comes from an induction
            # variable, not from a recent computation, so scatter loads
            # are mutually independent — the MLP the window harvests.
            offset = rng.randrange(0, mem.working_set_bytes, 8)
            return base + 0x1000_0000 + offset, (_STRIDE_REG,)
        offset = rng.randrange(0, mem.hot_set_bytes, 8)   # hot
        return base + 0x2000_0000 + offset, self._pick_srcs(state, 1)

    # ------------------------------------------------------------------
    # dynamic emission

    def generate(self, n_ops: int) -> Trace:
        """Emit ``n_ops`` dynamic micro-ops of the correct path."""
        ops: list[MicroOp] = []
        phase_idx = 0
        while len(ops) < n_ops:
            state = self._phases[phase_idx % len(self._phases)]
            budget = min(state.spec.length, n_ops - len(ops))
            self._run_phase(state, budget, ops)
            phase_idx += 1
        first = self._phases[0]
        weights = first.spec.mem.weights()
        hot_base = first.data_base + 0x2000_0000
        hot_size = max(first.spec.mem.hot_set_bytes, 4096)
        if weights[1] + weights[2] > 0:
            # Wrong paths stray into the same cold working set the
            # program scatters over.
            cold_base = first.data_base + 0x1000_0000
            cold_size = max(first.spec.mem.working_set_bytes, 4096)
        else:
            # Cache-resident program: it HAS no cold data, so wrong paths
            # stay within the hot set (otherwise the synthesizer would
            # manufacture L2 misses the program cannot produce).
            cold_base, cold_size = hot_base, hot_size
        return Trace(self.profile.name, ops[:n_ops], self.seed,
                     data_base=cold_base, data_size=cold_size,
                     warm_regions=self._warm_regions(),
                     hot_base=hot_base, hot_size=hot_size)

    def _warm_regions(self) -> list[tuple[int, int, bool]]:
        """(base, bytes, l1_too) regions for checkpoint-style cache warming.

        A short simulated sample cannot organically warm a multi-megabyte
        resident set the way 16G skipped instructions do in the paper, so
        the hot sets, cache-resident scatter sets and cache-resident
        streams are pre-installed (see ``Processor.prewarm``).  Streams
        larger than the L2 stay cold — cold misses *are* their steady
        state.
        """
        regions: list[tuple[int, int, bool]] = []
        for state in self._phases:
            mem = state.spec.mem
            weights = mem.weights()
            if weights[3] > 0:
                regions.append((state.data_base + 0x2000_0000,
                                mem.hot_set_bytes, True))
            if weights[1] + weights[2] > 0:
                regions.append((state.data_base + 0x1000_0000,
                                mem.working_set_bytes, False))
            if weights[0] > 0 or mem.store_stream_frac:
                if mem.stream_bytes <= 2 * 1024 * 1024:
                    regions.append((state.data_base, mem.stream_bytes, False))
        return regions

    def _run_phase(self, state: _PhaseState, budget: int,
                   out: list[MicroOp]) -> None:
        rng = self._rng
        emitted = 0
        static_ops = state.static_ops
        n_static = len(static_ops)
        idx = 0
        while emitted < budget:
            template = static_ops[idx]
            kind = template.kind
            if kind is OpClass.BRANCH:
                taken = rng.random() < template.taken_prob
                target = template.target if taken else template.pc + 4
                out.append(MicroOp(template.pc, OpClass.BRANCH,
                                   srcs=self._pick_srcs(state, 1),
                                   taken=taken, target=target))
                # Follow actual control flow through the static loop.
                if taken and template.target == state.code_base:
                    idx = 0
                else:
                    idx = (idx + 1) % n_static
            elif kind is OpClass.LOAD:
                addr, addr_srcs = self._address_for(state, template.pattern,
                                                    template.stream_id)
                dst = (_CHASE_REG if template.pattern == _PAT_CHASE
                       else self._alloc_dst(state, fp=False))
                out.append(MicroOp(template.pc, OpClass.LOAD, dst=dst,
                                   srcs=addr_srcs, addr=addr, size=8))
                idx = (idx + 1) % n_static
            elif kind is OpClass.STORE:
                addr, addr_srcs = self._address_for(state, template.pattern,
                                                    template.stream_id)
                data_src = self._pick_srcs(state, 1)
                out.append(MicroOp(template.pc, OpClass.STORE,
                                   srcs=addr_srcs + data_src, addr=addr,
                                   size=8))
                idx = (idx + 1) % n_static
            else:
                fp = kind in (OpClass.FPALU, OpClass.FPMUL, OpClass.FPDIV)
                srcs = self._pick_srcs(state, 2)
                dst = self._alloc_dst(state, fp)
                out.append(MicroOp(template.pc, kind, dst=dst, srcs=srcs))
                idx = (idx + 1) % n_static
            emitted += 1


def generate_trace(profile: ProgramProfile, n_ops: int, seed: int = 1) -> Trace:
    """Convenience wrapper: build a generator and emit ``n_ops``."""
    return TraceGenerator(profile, seed).generate(n_ops)
