"""Adversarial phase traces: where the fixed comparators provably lose.

The 28 Table-3 profiles are *representative* — each comparator policy
gets close to its best behaviour on most of them.  The learned-policy
evaluation (``experiments/ablation_learned.py``) additionally needs
traces constructed so that specific comparators are demonstrably
suboptimal, because a controller that merely matches the best fixed
level on friendly inputs has not demonstrated selection:

* ``adv_phaseflip`` — rapid alternation between a scatter phase with
  abundant MLP and a deep-chain compute phase.  Any *fixed* level loses
  somewhere: level 1 forfeits the memory phase's MLP, level 3 pays the
  pipelined-window ILP penalty through every compute phase.
* ``adv_missburst`` — short write-stream flush bursts (streaming store
  misses over a cold region) separated by long dependent-chain compute
  grinds.  The store misses fire DYN's enlarge trigger on every burst,
  but retiring stores never blocks the window — there is nothing for a
  bigger window to overlap, and the enlarged window then pays the ILP
  penalty through the whole compute grind that follows.  The best
  policy here is to stay small, which DYN's miss-driven control law
  cannot learn but an outcome-measuring controller can.
* ``adv_deceptive`` — memory/compute phases whose length sits right at
  the ContributionPolicy probe period (4096 cycles at IPC ~1), so its
  trial windows systematically straddle phase boundaries: the rate it
  measures for a trial belongs to the *next* phase, and its keep/revert
  feedback is confounded by design.

These live in their own registry — :data:`ADVERSARIAL_PROFILES` — and
are deliberately **not** part of :data:`repro.workloads.PROFILES`: the
28-program table mirrors the paper's Table 3 and every campaign/series
that iterates ``program_names()`` must keep meaning exactly that set.
``repro.workloads.profile()`` falls back to this registry, so sweeps,
experiments and the verify tooling can request adversarial programs by
name like any other.
"""

from __future__ import annotations

from repro.workloads.generator import MemoryBehavior, PhaseSpec, ProgramProfile

KB = 1024
MB = 1024 * 1024


def _phase(name: str, length: int, *, load: float = 0.25, store: float = 0.1,
           chain: int = 2, noisy: float = 0.0, bias: float = 0.002,
           longop: float = 0.08, blocks: int = 4, block_ops: int = 12,
           mem: MemoryBehavior | None = None) -> PhaseSpec:
    return PhaseSpec(name=name, length=length, load_frac=load,
                     store_frac=store, chain_depth=chain,
                     noisy_branch_frac=noisy, bias_taken_prob=bias,
                     longop_frac=longop, blocks=blocks, block_ops=block_ops,
                     mem=mem if mem is not None else MemoryBehavior())


#: Sparse independent scattered loads over a far-beyond-L2 working set.
#: Sparse is the point: at ~3% missing ops, a 128-entry ROB holds only a
#: handful of concurrent misses while the level-3 window holds 4x more,
#: all overlappable — so the achievable MLP scales with window size
#: instead of saturating the MSHRs at every level.
_MLP_BURST = MemoryBehavior(scatter=0.10, hot=0.90,
                            working_set_bytes=24 * MB,
                            hot_set_bytes=8 * KB)

#: Deep-chain ILP code over a cache-resident set: the pipelined-window
#: wakeup gap of levels 2/3 costs ~30% IPC here, so every cycle spent
#: enlarged is a measured loss.
_COMPUTE = MemoryBehavior(hot=1.0, hot_set_bytes=8 * KB)

#: A cold write stream: every store opens a fresh cache line of a
#: far-beyond-L2 stream (stride = one line), so each one is a demand L2
#: miss — but stores retire *after* commit, so no window of any size
#: can overlap their latency with anything.  They trigger miss-driven
#: enlargement without offering any MLP a larger window could harvest.
#: (The prefetcher trains on loads only, so the stream stays cold.)
_WRITE_FLUSH = MemoryBehavior(hot=1.0, hot_set_bytes=8 * KB,
                              store_stream_frac=1.0,
                              stream_bytes=24 * MB, stride_bytes=64)


ADVERSARIAL_PROFILES: dict[str, ProgramProfile] = {
    profile.name: profile for profile in (
        # Phase lengths are balanced in *cycles*, not ops: the memory
        # phases run near IPC 0.1-0.3 and the compute phases near 1.2,
        # so a compute phase needs several times the ops to occupy
        # comparable time.
        ProgramProfile(
            name="adv_phaseflip", category="int", memory_intensive=True,
            phases=(
                _phase("mlpburst", 2_500, load=0.30, store=0.05, chain=1,
                       mem=_MLP_BURST),
                _phase("ilpcore", 9_000, load=0.10, store=0.04, chain=6,
                       longop=0.20, mem=_COMPUTE),
            )),
        # A short "flush" burst of cold-stream stores fires ~8 demand
        # L2 misses that commit has already retired past, then deep-
        # chain compute follows.  The bursts recur well inside DYN's
        # one-memory-latency shrink-timer horizon, so the miss-driven
        # controller sits enlarged through most of the compute — paying
        # the pipelined-window ILP penalty for misses that never had
        # latency a window could hide.
        ProgramProfile(
            name="adv_missburst", category="int", memory_intensive=True,
            phases=(
                _phase("flush", 10, load=0.0, store=0.90, chain=2,
                       blocks=1, block_ops=8, mem=_WRITE_FLUSH),
                _phase("grind", 700, load=0.08, store=0.04, chain=6,
                       longop=0.20, mem=_COMPUTE),
            )),
        ProgramProfile(
            name="adv_deceptive", category="int", memory_intensive=True,
            phases=(
                _phase("lure", 400, load=0.30, store=0.05, chain=1,
                       mem=_MLP_BURST),
                _phase("trap", 4_400, load=0.10, store=0.04, chain=6,
                       longop=0.20, mem=_COMPUTE),
            )),
    )
}

#: Evaluation order for the adversarial table.
ADVERSARIAL_PROGRAMS: tuple[str, ...] = tuple(ADVERSARIAL_PROFILES)


def adversarial_profile(name: str) -> ProgramProfile:
    """Look up an adversarial profile by name."""
    try:
        return ADVERSARIAL_PROFILES[name]
    except KeyError:
        from repro.workloads.errors import UnknownProgramError
        raise UnknownProgramError(
            f"unknown adversarial program {name!r}; known: "
            f"{', '.join(ADVERSARIAL_PROFILES)}") from None
