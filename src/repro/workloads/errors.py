"""Unified error type for unknown workload/program names.

Every workload source — the synthetic Table-3 profile table, the
``adv_*`` adversarial generators, and the ``riscv:`` trace corpus —
raises the same :class:`UnknownProgramError` for an unrecognised name,
with a message that lists the available namespaces (mirroring the
``make_policy`` convention of enumerating known specs in the error).

The class subclasses :class:`KeyError` so existing callers (and tests)
that catch ``KeyError`` keep working, but overrides ``__str__`` so the
message renders as prose instead of ``KeyError``'s quoted repr.
"""

from __future__ import annotations

__all__ = ["UnknownProgramError", "unknown_program"]


class UnknownProgramError(KeyError):
    """An unrecognised program name in any workload namespace."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.message


def _preview(names, limit: int = 6) -> str:
    names = list(names)
    shown = ", ".join(names[:limit])
    if len(names) > limit:
        shown += ", ..."
    return shown


def unknown_program(name: str, *, detail: str = "") -> UnknownProgramError:
    """Build the canonical unknown-program error for ``name``.

    Registries are imported lazily so this module has no import-time
    dependencies and can be imported from any workload source.
    """
    from repro.workloads.adversarial import ADVERSARIAL_PROFILES
    from repro.workloads.profiles import PROFILES

    try:  # corpus may be absent in a stripped checkout
        from repro.workloads.riscv.corpus import riscv_program_names
        riscv = riscv_program_names()
    except Exception:  # pragma: no cover - defensive
        riscv = ()
    parts = [
        f"{len(PROFILES)} synthetic profiles ({_preview(sorted(PROFILES))})",
        "adversarial generators ({})".format(
            _preview(sorted(ADVERSARIAL_PROFILES))),
    ]
    if riscv:
        parts.append("riscv trace corpus ({})".format(_preview(riscv)))
    else:
        parts.append("riscv trace corpus (riscv:<kernel>; none on disk)")
    head = f"unknown program {name!r}"
    if detail:
        head += f" ({detail})"
    return UnknownProgramError(
        head + "; available namespaces: " + "; ".join(parts))
