"""Synthetic workload substrate.

The paper evaluates SPEC CPU2006 (Alpha binaries on a SimpleScalar-derived
simulator).  Neither the binaries nor a functional Alpha front end are
reproducible here, so this package substitutes *parameterised synthetic
trace generators*: one :class:`~repro.workloads.generator.ProgramProfile`
per SPEC2006 program of Table 3, each tuned to reproduce the behavioural
knobs the resizing mechanism actually responds to —

* average load latency / L2 miss rate (memory- vs compute-intensive),
* temporal *clustering* of L2 misses (phase structure; paper Figure 4),
* memory access pattern (streaming / pointer-chasing / scattered), which
  determines both prefetcher efficacy and achievable MLP,
* instruction-level parallelism (dependence chain depth), and
* branch predictability (paper Table 5 misprediction distances).

See DESIGN.md §2 for the substitution argument.

A second source grounds the reproduction in real code: the
:mod:`repro.workloads.riscv` frontend decodes recorded RV64 dynamic
traces (``riscv:<kernel>`` names, corpus under ``benchmarks/riscv/``)
into the same :class:`~repro.workloads.trace.Trace` interface.  Use
:func:`trace_for_program` to build a trace from any namespace.
"""

from repro.workloads.generator import (
    MemoryBehavior,
    PhaseSpec,
    ProgramProfile,
    TraceGenerator,
    generate_trace,
)
from repro.workloads.trace import Trace, WrongPathSynthesizer
from repro.workloads.profiles import (
    PROFILES,
    MEMORY_INTENSIVE,
    COMPUTE_INTENSIVE,
    SELECTED_MEMORY,
    SELECTED_COMPUTE,
    profile,
    program_names,
)
from repro.workloads.adversarial import (
    ADVERSARIAL_PROFILES,
    ADVERSARIAL_PROGRAMS,
    adversarial_profile,
)
from repro.workloads.kernels import (
    KERNELS,
    compute_kernel,
    phased_kernel,
    pointer_chase_kernel,
    random_access_kernel,
    stencil_kernel,
    stream_kernel,
)
from repro.workloads.errors import UnknownProgramError
from repro.workloads.sources import (
    all_program_names,
    ensure_program,
    known_program,
    program_cache_identity,
    trace_for_program,
    workload_namespaces,
)

__all__ = [
    "KERNELS",
    "compute_kernel",
    "phased_kernel",
    "pointer_chase_kernel",
    "random_access_kernel",
    "stencil_kernel",
    "stream_kernel",
    "MemoryBehavior",
    "PhaseSpec",
    "ProgramProfile",
    "TraceGenerator",
    "generate_trace",
    "Trace",
    "WrongPathSynthesizer",
    "ADVERSARIAL_PROFILES",
    "ADVERSARIAL_PROGRAMS",
    "adversarial_profile",
    "PROFILES",
    "MEMORY_INTENSIVE",
    "COMPUTE_INTENSIVE",
    "SELECTED_MEMORY",
    "SELECTED_COMPUTE",
    "profile",
    "program_names",
    "UnknownProgramError",
    "all_program_names",
    "ensure_program",
    "known_program",
    "program_cache_identity",
    "trace_for_program",
    "workload_namespaces",
]
