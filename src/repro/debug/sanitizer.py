"""The invariant sanitizer (see the package docstring for the list).

Instrumentation works by *bound-method shadowing*: the sanitizer stores
wrappers as instance attributes of the processor (``proc.step_cycle``,
``proc._apply_level``, ``proc._schedule``), which Python resolves ahead
of the class methods.  The release path is untouched — a processor
built with ``sanitize=False`` never takes a debug branch, and the
wrapped one pays only at cycle granularity, never inside the stages.

Checks never mutate simulation state: MSHR occupancy is observed with
the non-reaping :meth:`~repro.memory.mshr.MSHRFile.in_flight`, window
queries are pure, and the slot trackers are passive mirrors.  A
sanitized run therefore produces bit-identical cycle counts to an
unsanitized one (``tests/test_sanitizer.py`` locks this in).
"""

from __future__ import annotations

from collections import Counter

from repro.debug.errors import SanitizerError
from repro.debug.events import EventTrace
from repro.debug.slots import CamSlotTracker, FifoSlotTracker


class Sanitizer:
    """Per-cycle invariant checking + event tracing for one processor."""

    def __init__(self, proc, trace_capacity: int = 4096) -> None:
        self.proc = proc
        self.events = EventTrace(trace_capacity)
        #: invariant name -> number of times it was evaluated
        self.checks: Counter[str] = Counter()
        self.cycles_checked = 0
        window = proc.window
        self.rob_slots = FifoSlotTracker("ROB", window.rob.capacity)
        self.iq_slots = CamSlotTracker("IQ", window.iq.capacity)
        self.lsq_slots = FifoSlotTracker("LSQ", window.lsq.capacity)
        self._last_commit_seq = -1
        self._last_committed_total = proc.committed_total
        self._max_seq = proc._seq
        self._last_dispatch_stalls = 0
        self._last_stop_alloc = 0
        self._stale_timer: int | None = None
        self._install()

    # ------------------------------------------------------------------
    # instrumentation

    def _install(self) -> None:
        proc = self.proc

        orig_step = proc.step_cycle

        def step_cycle() -> int:
            delta = orig_step()
            self._check_cycle()
            return delta

        proc.step_cycle = step_cycle

        orig_apply = proc._apply_level

        def apply_level(new_level: int) -> None:
            shrink = new_level < proc.level
            if shrink:
                # fold in this cycle's commits/issues before judging
                # the vacated region (commit ran earlier this cycle)
                self._sync_trackers()
            orig_apply(new_level)
            self._on_level_transition(new_level, shrink)

        proc._apply_level = apply_level

        orig_schedule = proc._schedule

        def schedule(cycle: int, kind: int, payload: object) -> None:
            self.checks["event_schedule"] += 1
            if cycle < proc.cycle:
                self._fail(f"event kind {kind} scheduled in the past: "
                           f"{cycle} < {proc.cycle}")
            orig_schedule(cycle, kind, payload)

        proc._schedule = schedule

    # ------------------------------------------------------------------
    # per-cycle verification

    def _check_cycle(self) -> None:
        proc = self.proc
        self.cycles_checked += 1
        now = proc.cycle
        window = proc.window
        checks = self.checks
        for res in (window.rob, window.iq, window.lsq):
            checks["occupancy_bounds"] += 1
            if not 0 <= res.occupancy <= res.capacity <= res.max_capacity:
                self._fail(
                    f"{res.name}: occupancy bounds violated "
                    f"(occupancy {res.occupancy}, capacity {res.capacity}, "
                    f"max {res.max_capacity})")
            checks["counter_conservation"] += 1
            if res.alloc_count - res.release_count != res.occupancy:
                self._fail(
                    f"{res.name}: conservation violated "
                    f"({res.alloc_count} allocs - {res.release_count} "
                    f"releases != occupancy {res.occupancy})")
        cfg = proc.config.level_config(proc.level)
        checks["level_capacity"] += 1
        if (window.rob.capacity != cfg.rob_entries
                or window.iq.capacity != cfg.iq_entries
                or window.lsq.capacity != cfg.lsq_entries):
            self._fail(
                f"window capacities {window.rob.capacity}/"
                f"{window.iq.capacity}/{window.lsq.capacity} do not match "
                f"level {proc.level} configuration {cfg.rob_entries}/"
                f"{cfg.iq_entries}/{cfg.lsq_entries}")
        # ground truth: the counters must agree with the actual machine
        # contents.  A release() call that is *skipped* leaves every
        # counter self-consistent — only this cross-check can see it.
        rob_truth = mem_truth = iq_truth = 0
        for op in proc.rob:
            rob_truth += 1
            if op.uop.is_mem:
                mem_truth += 1
            if op.in_iq:
                iq_truth += 1
        checks["ground_truth_occupancy"] += 1
        if window.rob.occupancy != rob_truth:
            self._fail(f"ROB occupancy counter {window.rob.occupancy} != "
                       f"{rob_truth} ops actually resident")
        if window.lsq.occupancy != mem_truth:
            self._fail(f"LSQ occupancy counter {window.lsq.occupancy} != "
                       f"{mem_truth} memory ops actually resident")
        if window.iq.occupancy != iq_truth:
            self._fail(f"IQ occupancy counter {window.iq.occupancy} != "
                       f"{iq_truth} unissued ops actually resident")
        h = proc.hierarchy
        for mshr in (h.l1d_mshr, h.l2_mshr):
            checks["mshr_bound"] += 1
            live = mshr.in_flight(now)
            if live > mshr.entries:
                self._fail(f"{mshr.name}: {live} fills in flight exceeds "
                           f"{mshr.entries} entries")
        # a next_timer() value in the past must not survive a tick: the
        # policy either consumes it (pending miss, shrink retry) or it
        # is stale and the fast-forward logic would never fire it again
        checks["timer_liveness"] += 1
        timer = proc.policy.next_timer()
        if timer is not None and timer <= now:
            if self._stale_timer == timer:
                self._fail(f"stale policy timer: next_timer()={timer} "
                           f"still pending after a full tick")
            self._stale_timer = timer
        else:
            self._stale_timer = None
        self._sync_trackers()
        self._emit_stall_events()

    def _sync_trackers(self) -> None:
        proc = self.proc
        rob_ops = list(proc.rob)
        seqs = []
        mem_seqs = []
        iq_seqs = []
        prev = -1
        now = proc.cycle
        events = self.events
        for op in rob_ops:
            seq = op.seq
            if seq <= prev:
                self._fail(f"ROB out of program order: seq {seq} "
                           f"follows seq {prev}")
            prev = seq
            seqs.append(seq)
            if op.uop.is_mem:
                mem_seqs.append(seq)
            if op.in_iq:
                iq_seqs.append(seq)
            if op.issue_cycle == now and op.issued:
                events.emit(now, "issue", seq, op.uop.op.name)
        self.checks["rob_program_order"] += 1
        fresh = []
        for op in reversed(rob_ops):
            if op.seq <= self._max_seq:
                break
            fresh.append(op)
        for op in reversed(fresh):
            events.emit(op.fetch_cycle, "fetch", op.seq, op.uop.op.name)
            events.emit(op.dispatch_cycle, "dispatch", op.seq,
                        op.uop.op.name)
            self._max_seq = op.seq
        commits_delta = proc.committed_total - self._last_committed_total
        self._last_committed_total = proc.committed_total
        committed = self.rob_slots.sync(seqs, commits_hint=commits_delta)
        self.checks["in_order_commit"] += 1
        for seq in committed:
            if seq <= self._last_commit_seq:
                self._fail(f"out-of-order commit: seq {seq} retired after "
                           f"seq {self._last_commit_seq}")
            self._last_commit_seq = seq
            events.emit(now, "commit", seq, "")
        self.lsq_slots.sync(mem_seqs, commits_hint=None)
        self.iq_slots.sync(iq_seqs)

    def _emit_stall_events(self) -> None:
        proc = self.proc
        stats = proc.stats
        if stats.dispatch_stall_cycles != self._last_dispatch_stalls:
            self._last_dispatch_stalls = stats.dispatch_stall_cycles
            w = proc.window
            self.events.emit(
                proc.cycle, "stall", -1,
                f"dispatch blocked (rob {w.rob.occupancy}/{w.rob.capacity} "
                f"iq {w.iq.occupancy}/{w.iq.capacity} "
                f"lsq {w.lsq.occupancy}/{w.lsq.capacity} "
                f"stop_alloc={proc._stop_alloc})")
        if stats.stop_alloc_cycles != self._last_stop_alloc:
            self._last_stop_alloc = stats.stop_alloc_cycles
            self.events.emit(proc.cycle, "stall", -1,
                             "stop_alloc: draining for shrink")

    def _on_level_transition(self, new_level: int, shrink: bool) -> None:
        proc = self.proc
        cfg = proc.config.level_config(new_level)
        straddle = (self.rob_slots.resize(cfg.rob_entries)
                    + self.iq_slots.resize(cfg.iq_entries)
                    + self.lsq_slots.resize(cfg.lsq_entries))
        if shrink:
            self.checks["shrink_slot_vacancy"] += 1
            detail = (f"shrink to level {new_level}"
                      + (f" with {straddle} slot(s) straddling the "
                         f"vacated region" if straddle else ""))
        else:
            detail = f"enlarge to level {new_level}"
        self.events.emit(proc.cycle, "level", -1, detail)

    # ------------------------------------------------------------------

    def final_check(self) -> None:
        """Re-verify everything once the run is over."""
        self._check_cycle()

    def shrink_divergences(self) -> dict[str, int]:
        """Per-resource count of shrinks whose vacated region was still
        physically occupied (the documented approximation's optimism)."""
        return {"ROB": self.rob_slots.divergences,
                "IQ": self.iq_slots.divergences,
                "LSQ": self.lsq_slots.divergences}

    def summary(self) -> dict:
        """Machine-readable account of what was verified."""
        return {
            "cycles_checked": self.cycles_checked,
            "invariant_checks": dict(self.checks),
            "shrink_divergences": self.shrink_divergences(),
            "max_straddle": {"ROB": self.rob_slots.max_straddle,
                             "IQ": self.iq_slots.max_straddle,
                             "LSQ": self.lsq_slots.max_straddle},
            "events": self.events.counts(),
        }

    def _fail(self, message: str) -> None:
        raise SanitizerError(
            f"cycle {self.proc.cycle}: {message}\n"
            f"last events:\n{self.events.render(last=24)}")
