"""Error types of the debug layer.

Kept import-free: :mod:`repro.pipeline.core` imports
:class:`DeadlockError` at module load, so this module must not import
anything that could close a cycle back into the pipeline.
"""

from __future__ import annotations


class SanitizerError(AssertionError):
    """A microarchitectural invariant was violated.

    Subclasses :class:`AssertionError` because a violation means the
    *model* is wrong, not the workload: it should fail a test run the
    same way a bare assert would.
    """


class DeadlockError(RuntimeError):
    """The simulated core can provably make no further progress.

    Carries a multi-line diagnostic report (resource occupancies,
    pending events, policy timers, and — when the sanitizer is attached
    — the tail of the cycle-event trace).
    """
