"""Typed cycle-event records in a bounded ring buffer.

Every record is self-describing (it carries its own cycle), so events
appended slightly out of emission order — e.g. a ``fetch`` recorded at
dispatch time with the earlier fetch cycle — still render and export
coherently.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass

#: the event vocabulary (kept small and stable for tooling)
EVENT_KINDS = ("fetch", "dispatch", "issue", "commit", "level", "stall")


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    kind: str     # one of EVENT_KINDS
    seq: int      # micro-op sequence number, or -1 for machine events
    detail: str

    def as_dict(self) -> dict:
        return {"cycle": self.cycle, "kind": self.kind,
                "seq": self.seq, "detail": self.detail}


class EventTrace:
    """Ring buffer of the most recent :class:`TraceEvent` records.

    ``emitted`` and ``kind_counts`` cover the whole run, not just the
    retained window, so summary statistics survive ring overflow.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.records: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.kind_counts: Counter[str] = Counter()

    def emit(self, cycle: int, kind: str, seq: int = -1,
             detail: str = "") -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; "
                             f"known: {', '.join(EVENT_KINDS)}")
        self.records.append(TraceEvent(cycle, kind, seq, detail))
        self.emitted += 1
        self.kind_counts[kind] += 1

    def counts(self) -> dict[str, int]:
        """Events emitted per kind over the whole run."""
        return dict(self.kind_counts)

    def render(self, last: int | None = None) -> str:
        """A text table of the most recent ``last`` retained events."""
        records = list(self.records)
        if last is not None:
            records = records[-last:]
        if not records:
            return "(no events recorded)"
        lines = [f"{'cycle':>9} {'kind':<9} {'seq':>7}  detail"]
        for r in records:
            seq = str(r.seq) if r.seq >= 0 else "-"
            lines.append(f"{r.cycle:>9} {r.kind:<9} {seq:>7}  {r.detail}")
        return "\n".join(lines)

    def to_jsonl(self, path: str) -> int:
        """Write the retained events as JSON lines; returns the count."""
        records = list(self.records)
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r.as_dict()) + "\n")
        return len(records)
