"""Exact physical-slot occupancy trackers.

``pipeline/resources.py`` models shrink vacancy with the approximation
``occupancy <= new_capacity``: with in-order allocation the occupied
region is contiguous, so *some* window of ``occupancy`` slots fits, but
the region may physically straddle the boundary of the shrunken range
(the occupied window wraps around the ring).  These trackers mirror the
real slot indices so the sanitizer can measure, at every shrink, how
often the approximation declared a region vacant while slots above the
new capacity were still occupied — the ``divergences`` /
``max_straddle`` counters quantify exactly the optimism the resources
docstring concedes.

Trackers are *observers*: they are synced from the authoritative ROB
contents each cycle and never influence simulation.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush

from repro.debug.errors import SanitizerError


class FifoSlotTracker:
    """Slot mirror of a circular FIFO resource (ROB, LSQ).

    Allocation advances a tail pointer modulo the current capacity;
    entries leave either from the head (commit) or from the tail
    (squash of the youngest entries), matching the processor's use of
    the real structures.
    """

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        #: (seq, slot) pairs, oldest first — parallels the live FIFO
        self.ring: deque[tuple[int, int]] = deque()
        self.next_slot = 0
        self.divergences = 0
        self.max_straddle = 0

    def occupied_above(self, limit: int) -> int:
        """Occupied physical slots at index ``limit`` or higher."""
        return sum(1 for __, slot in self.ring if slot >= limit)

    def sync(self, seqs: list[int], commits_hint: int | None = None) -> list[int]:
        """Update the mirror to the FIFO's current ``seqs`` (in order).

        Survivors must be a contiguous run of the previous contents
        (FIFO entries only leave from the ends); entries that left from
        the head are returned as the committed sequence numbers, while
        entries that left from the tail retract the tail pointer.  When
        *everything* left in one cycle the split between the two is
        ambiguous from contents alone — ``commits_hint`` (the commit
        count since the last sync) resolves it.
        """
        ring = self.ring
        committed: list[int] = []
        if ring:
            max_old = ring[-1][0]
            k = 0
            for s in seqs:
                if s > max_old:
                    break
                k += 1
            if k:
                first = seqs[0]
                while ring and ring[0][0] != first:
                    committed.append(ring.popleft()[0])
                while len(ring) > k:
                    self.next_slot = ring.pop()[1]
                if [s for s, __ in ring] != seqs[:k]:
                    raise SanitizerError(
                        f"{self.name} slot mirror diverged from the live "
                        f"structure (survivors are not a contiguous run)")
            else:
                n_commit = (len(ring) if commits_hint is None
                            else min(commits_hint, len(ring)))
                for __ in range(n_commit):
                    committed.append(ring.popleft()[0])
                while ring:
                    self.next_slot = ring.pop()[1]
        cap = self.capacity
        for s in seqs[len(ring):]:
            ring.append((s, self.next_slot))
            self.next_slot = (self.next_slot + 1) % cap
        return committed

    def resize(self, new_capacity: int) -> int:
        """Apply a capacity change; returns the straddle count.

        On a shrink, any occupied slot at ``new_capacity`` or above is
        a divergence of the occupancy-based vacancy approximation.  The
        mirror then re-packs compactly (what a real implementation that
        stalls until the region physically drains would end up with),
        so tracking stays sound afterwards.
        """
        straddling = 0
        if new_capacity < self.capacity:
            straddling = self.occupied_above(new_capacity)
            if straddling:
                self.divergences += 1
                self.max_straddle = max(self.max_straddle, straddling)
            if straddling or self.next_slot >= new_capacity:
                self.ring = deque((seq, i)
                                  for i, (seq, __) in enumerate(self.ring))
                self.next_slot = len(self.ring) % new_capacity
        self.capacity = new_capacity
        return straddling


class CamSlotTracker:
    """Slot mirror of a CAM-style resource with out-of-order release
    (the IQ): allocation takes the lowest free slot, release frees the
    entry's own slot, leaving holes."""

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self.slot_of: dict[int, int] = {}
        self._free: list[int] = list(range(capacity))
        heapify(self._free)
        self.divergences = 0
        self.max_straddle = 0

    def occupied_above(self, limit: int) -> int:
        return sum(1 for slot in self.slot_of.values() if slot >= limit)

    def sync(self, seqs: list[int]) -> None:
        """Update the mirror to the current set of resident entries."""
        current = set(seqs)
        gone = [s for s in self.slot_of if s not in current]
        for s in gone:
            heappush(self._free, self.slot_of.pop(s))
        for s in seqs:
            if s not in self.slot_of:
                if not self._free:
                    raise SanitizerError(
                        f"{self.name} slot mirror overflow: no free slot "
                        f"for seq {s} (capacity {self.capacity})")
                self.slot_of[s] = heappop(self._free)

    def resize(self, new_capacity: int) -> int:
        """Apply a capacity change; returns the straddle count.

        Shrinks re-pack the survivors compactly (see
        :meth:`FifoSlotTracker.resize`); enlarges simply extend the
        free list, preserving existing holes.
        """
        straddling = 0
        if new_capacity >= self.capacity:
            for s in range(self.capacity, new_capacity):
                heappush(self._free, s)
        else:
            straddling = self.occupied_above(new_capacity)
            if straddling:
                self.divergences += 1
                self.max_straddle = max(self.max_straddle, straddling)
            survivors = sorted(self.slot_of.items(), key=lambda kv: kv[1])
            self.slot_of = {seq: i for i, (seq, __) in enumerate(survivors)}
            self._free = list(range(len(survivors), new_capacity))
            heapify(self._free)
        self.capacity = new_capacity
        return straddling
