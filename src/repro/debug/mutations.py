"""Mutation tests for the sanitizer: seed a fault, expect it caught.

Each mutation injects one specific bookkeeping bug into a live,
sanitized processor — the kinds of bugs the invariant layer exists to
catch (a dropped ``release()``, a stale policy timer, an off-by-one
resize, an MSHR overflow, a reordered ROB, a corrupted counter) — and
the harness asserts that the run dies with a :class:`SanitizerError`
(or a :class:`DeadlockError` carrying the diagnostic dump) instead of
silently producing wrong numbers.

Run it directly::

    python -m repro.debug.mutations

Exit status 0 means every seeded fault was detected and the unmutated
control run was clean.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import dynamic_config
from repro.debug.errors import DeadlockError, SanitizerError
from repro.pipeline.core import Processor
from repro.workloads import generate_trace, profile

#: memory-intensive program: plenty of L2 misses, so the DYNAMIC model
#: exercises enlarge/shrink transitions within a short run
_PROGRAM = "libquantum"
_TRACE_OPS = 9_000
_COMMIT_TARGET = 8_000
#: cycle after which each fault arms (past the initial ramp-up)
_TRIGGER = 250


def _build_processor() -> Processor:
    trace = generate_trace(profile(_PROGRAM), n_ops=_TRACE_OPS, seed=1)
    return Processor(dynamic_config(3), trace, sanitize=True)


# ----------------------------------------------------------------------
# the seeded faults — each takes a sanitized processor and installs
# exactly one bug


def _dropped_release(proc: Processor) -> None:
    """Skip one ROB release(): occupancy counter leaks one entry."""
    orig = proc.window.rob.release
    state = {"armed": True}

    def release(n: int = 1) -> None:
        if state["armed"] and proc.cycle > _TRIGGER:
            state["armed"] = False
            return
        orig(n)

    proc.window.rob.release = release


def _stale_timer(proc: Processor) -> None:
    """Re-arm the policy's shrink timer with a cycle in the past."""
    policy = proc.policy
    orig = policy.tick

    def tick(cycle, window):
        decision = orig(cycle, window)
        if cycle > _TRIGGER:
            policy.shrink_timing = _TRIGGER // 2
        return decision

    policy.tick = tick


def _off_by_one_resize(proc: Processor) -> None:
    """Every level transition leaves the IQ one entry too small."""
    orig = proc.window.resize_to

    def resize_to(level: int) -> None:
        orig(level)
        proc.window.iq.capacity -= 1

    proc.window.resize_to = resize_to


def _mshr_overflow(proc: Processor) -> None:
    """Install fills into the L1D MSHR file past its capacity."""
    mshr = proc.hierarchy.l1d_mshr
    prev_step = proc.step_cycle
    state = {"armed": True}

    def step_cycle() -> int:
        if state["armed"] and proc.cycle > _TRIGGER:
            state["armed"] = False
            for i in range(mshr.entries + 4):
                line = 2 ** 40 + i * 64
                mshr._pending[line] = proc.cycle + 10 ** 6
                mshr._claims[line] = proc.cycle
        return prev_step()

    proc.step_cycle = step_cycle


def _rob_reorder(proc: Processor) -> None:
    """Rotate the ROB so it is no longer in program order."""
    prev_step = proc.step_cycle
    state = {"armed": True}

    def step_cycle() -> int:
        if state["armed"] and proc.cycle > _TRIGGER and len(proc.rob) >= 2:
            state["armed"] = False
            proc.rob.rotate(1)
        return prev_step()

    proc.step_cycle = step_cycle


def _counter_corruption(proc: Processor) -> None:
    """Bump the LSQ allocation counter without allocating."""
    prev_step = proc.step_cycle
    state = {"armed": True}

    def step_cycle() -> int:
        if state["armed"] and proc.cycle > _TRIGGER:
            state["armed"] = False
            proc.window.lsq.alloc_count += 1
        return prev_step()

    proc.step_cycle = step_cycle


MUTATIONS = {
    "dropped-release": _dropped_release,
    "stale-timer": _stale_timer,
    "off-by-one-resize": _off_by_one_resize,
    "mshr-overflow": _mshr_overflow,
    "rob-reorder": _rob_reorder,
    "counter-corruption": _counter_corruption,
}


# ----------------------------------------------------------------------


def run_mutation(name: str) -> tuple[bool, str]:
    """Run one seeded fault; returns (detected, one-line diagnosis)."""
    proc = _build_processor()
    MUTATIONS[name](proc)
    try:
        proc.run(until_committed=_COMMIT_TARGET)
    except (SanitizerError, DeadlockError) as exc:
        return True, str(exc).splitlines()[0]
    except Exception as exc:   # crashed, but not through an invariant
        return False, f"uncontrolled {type(exc).__name__}: {exc}"
    return False, "run completed without tripping any invariant"


def run_clean() -> tuple[bool, str]:
    """Control run: no fault seeded, no invariant may fire."""
    proc = _build_processor()
    try:
        proc.run(until_committed=_COMMIT_TARGET)
    except (SanitizerError, DeadlockError) as exc:
        return False, f"false positive: {str(exc).splitlines()[0]}"
    summary = proc.debug.summary()
    exercised = sum(1 for n in summary["invariant_checks"].values() if n)
    return True, (f"clean ({summary['cycles_checked']} cycles, "
                  f"{exercised} invariants exercised)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default="",
                        help="comma-separated mutation names")
    args = parser.parse_args(argv)
    wanted = [m for m in args.only.split(",") if m] or list(MUTATIONS)
    unknown = [m for m in wanted if m not in MUTATIONS]
    if unknown:
        print(f"unknown mutations: {', '.join(unknown)}", file=sys.stderr)
        return 2

    passed = 0
    ok, note = run_clean()
    print(f"{'PASS' if ok else 'FAIL'}  control             {note}")
    passed += 1 if ok else 0
    for name in wanted:
        detected, note = run_mutation(name)
        print(f"{'PASS' if detected else 'FAIL'}  {name:<19} {note}")
        passed += 1 if detected else 0
    total = len(wanted) + 1
    print(f"\n{passed}/{total} checks passed")
    return 0 if passed == total else 1


if __name__ == "__main__":
    raise SystemExit(main())
