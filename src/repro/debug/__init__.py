"""Microarchitectural invariant sanitizer and cycle-event trace.

The debug layer is strictly opt-in: :class:`~repro.pipeline.core.
Processor` resolves the ``sanitize`` flag once at construction, and with
the flag off nothing from this package is even imported — the release
simulation path carries no per-cycle debug branches.

With the flag on, a :class:`Sanitizer` instruments the processor by
shadowing a handful of its bound methods with instance attributes
(``proc.step_cycle``, ``proc._apply_level``, ``proc._schedule``); the
wrappers run the original and then verify the machine.  Checked every
cycle:

* occupancy bounds — ``0 <= occupancy <= capacity <= max_capacity``
  for the ROB, IQ and LSQ;
* counter conservation — ``alloc_count - release_count == occupancy``;
* ground-truth occupancy — the counters agree with the actual ROB
  contents (this catches a *dropped* ``release()`` call, which counter
  conservation alone cannot see);
* level/capacity agreement — the active capacities match the
  configured entries of the current level (off-by-one resize guard);
* MSHR bound — at most ``entries`` fills in flight per file, observed
  without reaping so the check cannot perturb timing;
* ROB program order and in-order commit;
* policy-timer liveness — a ``next_timer()`` value in the past must
  not survive a tick (stale-timer guard);
* event sanity — nothing is ever scheduled in the past.

At every level shrink, exact physical-slot trackers
(:mod:`repro.debug.slots`) additionally quantify how often the model's
``occupancy <= new_capacity`` vacancy approximation (documented in
``pipeline/resources.py``) diverges from real slot-level vacancy.

Typed cycle events (fetch / dispatch / issue / commit / level / stall)
land in a ring buffer (:mod:`repro.debug.events`) with JSONL export,
and are appended to every sanitizer failure and deadlock report.

The mutation harness (``python -m repro.debug.mutations``) seeds known
faults — a dropped release, a stale policy timer, an off-by-one resize,
an MSHR overflow, a reordered ROB — and asserts that each one trips an
invariant.
"""

from repro.debug.errors import DeadlockError, SanitizerError
from repro.debug.events import EventTrace, TraceEvent
from repro.debug.sanitizer import Sanitizer
from repro.debug.slots import CamSlotTracker, FifoSlotTracker

__all__ = [
    "CamSlotTracker",
    "DeadlockError",
    "EventTrace",
    "FifoSlotTracker",
    "Sanitizer",
    "SanitizerError",
    "TraceEvent",
]
