"""Multi-core simulation with a shared L2 and memory channel.

The paper evaluates a single core but prices its Table 4 area assuming
the scheme is deployed on **all four** Sandy Bridge cores.  This module
makes that configuration measurable: N cores (each with private L1s and
its own resizing controller) share one L2, one L2 MSHR file and one
main-memory channel, and run in cycle lockstep.

Per-core resizing stays private by construction — a core's controller
only sees the L2 misses of *its own* demand accesses, since each core
talks to the shared L2 through its own :class:`MemoryHierarchy` facade
(the listener chain is per-facade).

Example::

    from repro.multicore import MultiCoreSystem
    system = MultiCoreSystem([dynamic_config(3)] * 4, traces)
    system.run(until_committed_each=10_000)
    for result in system.results():
        print(result.summary_line())
"""

from __future__ import annotations

from repro.config import ProcessorConfig
from repro.memory import Cache, MSHRFile, MainMemory, MemoryHierarchy
from repro.memory.dram_banked import BankedMemory
from repro.pipeline import Processor
from repro.stats import SimulationResult
from repro.workloads import Trace


class MultiCoreSystem:
    """N cores in cycle lockstep over shared L2 + DRAM."""

    def __init__(self, configs: list[ProcessorConfig],
                 traces: list[Trace]) -> None:
        if not configs or len(configs) != len(traces):
            raise ValueError("need one config per trace, at least one core")
        ref = configs[0]
        for other in configs[1:]:
            if other.l2 != ref.l2 or other.memory != ref.memory:
                raise ValueError(
                    "all cores must agree on the shared L2/memory config")
        self.shared_l2 = Cache(ref.l2, name="L2(shared)")
        self.shared_l2_mshr = MSHRFile(ref.l2.mshr_entries)
        if ref.memory.organisation == "banked":
            self.shared_memory = BankedMemory(ref.memory,
                                              line_bytes=ref.l2.line_bytes)
        else:
            self.shared_memory = MainMemory(ref.memory,
                                            line_bytes=ref.l2.line_bytes)
        self.cores: list[Processor] = []
        for config, trace in zip(configs, traces):
            hierarchy = MemoryHierarchy(
                config, shared_l2=self.shared_l2,
                shared_l2_mshr=self.shared_l2_mshr,
                shared_memory=self.shared_memory)
            self.cores.append(Processor(config, trace,
                                        hierarchy=hierarchy))
        # channel position at the last measurement reset: bounds how
        # many busy cycles the channel could legitimately have charged
        # since (see channel_utilisation)
        self._channel_anchor = getattr(self.shared_memory,
                                       "_channel_free", 0)

    # ------------------------------------------------------------------

    def prewarm(self) -> None:
        """Prewarm every core (shared L2 budget is split evenly)."""
        fraction = 0.625 / len(self.cores)
        for core in self.cores:
            core.prewarm(budget_fraction=fraction)

    def reset_measurement(self) -> None:
        """Zero all measurement counters at the warmup boundary.

        Per-core resets cover each core's private structures (the
        hierarchy facade reset is ownership-aware); the shared L2 and
        the shared channel are zeroed here, exactly once — not once per
        core through each core's facade.
        """
        for core in self.cores:
            core.reset_measurement()
        l2 = self.shared_l2
        l2.hits = 0
        l2.misses = 0
        l2.evictions = 0
        self.shared_memory.requests = 0
        self.shared_memory.busy_cycles = 0
        self._channel_anchor = getattr(self.shared_memory,
                                       "_channel_free", 0)

    def run(self, until_committed_each: int,
            max_cycles: int | None = None) -> None:
        """Advance all cores in lockstep until each has committed
        ``until_committed_each`` micro-ops (or drained its trace).

        A core's ``step_cycle() == 0`` alone does not retire it: zero
        means "no forward progress possible this cycle", which a core
        waiting on a shared resource (or any subclass with its own
        drain condition) can report transiently.  Only
        :meth:`Processor.trace_drained` retires a core early; a
        non-drained idle core keeps advancing in lockstep so the shared
        clock stays aligned, and the ``max_cycles`` bound (taken over
        *all* cores' clocks, not just core 0's) catches true livelock.
        """
        if max_cycles is None:
            max_cycles = (max(core.cycle for core in self.cores)
                          + (until_committed_each + 1000) * 800)
        active = set(range(len(self.cores)))
        while active:
            deltas = []
            finished = []
            idle = []
            for idx in sorted(active):
                core = self.cores[idx]
                if core.committed_total >= until_committed_each:
                    finished.append(idx)
                    continue
                if core.cycle > max_cycles:
                    raise RuntimeError(
                        f"core {idx} exceeded {max_cycles} cycles")
                delta = core.step_cycle()
                if delta == 0:
                    if core.trace_drained():
                        finished.append(idx)
                    else:
                        idle.append(idx)
                else:
                    deltas.append((idx, delta))
            active.difference_update(finished)
            if not deltas and not idle:
                continue
            # lockstep: everyone advances by the smallest suggested
            # delta; idle-but-undrained cores ride along so their
            # clocks stay in step with the cores still working
            step = (min(delta for __, delta in deltas)
                    if deltas else 1)
            for idx, __ in deltas:
                self.cores[idx].advance(step)
            for idx in idle:
                self.cores[idx].advance(step)

    # ------------------------------------------------------------------

    def results(self) -> list[SimulationResult]:
        return [core.result() for core in self.cores]

    def aggregate_ipc(self) -> float:
        """Total committed micro-ops over the longest core's cycles.

        Pessimistic when core runtimes differ a lot (finished cores stop
        contributing); :meth:`throughput` is the usual fixed-work chip
        metric."""
        cycles = max(core.stats.cycles for core in self.cores)
        if not cycles:
            return 0.0
        committed = sum(core.stats.committed_uops for core in self.cores)
        return committed / cycles

    def throughput(self) -> float:
        """Sum of per-core IPCs (each over its own cycles) — the
        standard fixed-work multi-programming throughput metric."""
        return sum(core.stats.ipc for core in self.cores)

    def channel_utilisation(self) -> float:
        """Fraction of elapsed cycles the shared channel was transferring.

        Deliberately *not* clamped to 1.0: the channel charges each
        transfer's cycles when the transfer is scheduled, so at the end
        of a measurement window the counter legitimately includes
        cycles of transfers still draining past the last core cycle
        observed here.  A backlogged channel therefore reads slightly
        above 1.0 — that is real oversubscription the experiments want
        to see, and the old ``min(1.0, ...)`` silently hid it.  What is
        *never* legitimate is charging more busy cycles than the
        channel's own schedule advanced since the last reset; that
        indicates corrupt accounting and raises.
        """
        cycles = max(core.stats.cycles for core in self.cores)
        if not cycles:
            return 0.0
        busy = self.shared_memory.busy_cycles
        channel_free = getattr(self.shared_memory, "_channel_free", None)
        if channel_free is not None:
            headroom = max(0, channel_free - self._channel_anchor)
            if busy > headroom:
                raise AssertionError(
                    f"channel busy_cycles={busy} exceeds the "
                    f"{headroom} cycles the channel schedule advanced "
                    f"since the last reset — busy accounting is corrupt")
        return busy / cycles


def simulate_multicore(configs: list[ProcessorConfig], traces: list[Trace],
                       warmup: int = 3_000,
                       measure: int = 8_000) -> MultiCoreSystem:
    """Prewarm, warm up and measure a multi-core system; returns it."""
    system = MultiCoreSystem(configs, traces)
    system.prewarm()
    system.run(until_committed_each=warmup)
    system.reset_measurement()
    system.run(until_committed_each=warmup + measure)
    return system
