"""Multi-core simulation with a shared L2 and memory channel.

The paper evaluates a single core but prices its Table 4 area assuming
the scheme is deployed on **all four** Sandy Bridge cores.  This module
makes that configuration measurable: N cores (each with private L1s and
its own resizing controller) share one L2, one L2 MSHR file and one
main-memory channel, and run in cycle lockstep.

Per-core resizing stays private by construction — a core's controller
only sees the L2 misses of *its own* demand accesses, since each core
talks to the shared L2 through its own :class:`MemoryHierarchy` facade
(the listener chain is per-facade).

Example::

    from repro.multicore import MultiCoreSystem
    system = MultiCoreSystem([dynamic_config(3)] * 4, traces)
    system.run(until_committed_each=10_000)
    for result in system.results():
        print(result.summary_line())
"""

from __future__ import annotations

from repro.config import ProcessorConfig
from repro.memory import Cache, MSHRFile, MainMemory, MemoryHierarchy
from repro.memory.dram_banked import BankedMemory
from repro.pipeline import Processor
from repro.stats import SimulationResult
from repro.workloads import Trace


class MultiCoreSystem:
    """N cores in cycle lockstep over shared L2 + DRAM."""

    def __init__(self, configs: list[ProcessorConfig],
                 traces: list[Trace]) -> None:
        if not configs or len(configs) != len(traces):
            raise ValueError("need one config per trace, at least one core")
        ref = configs[0]
        for other in configs[1:]:
            if other.l2 != ref.l2 or other.memory != ref.memory:
                raise ValueError(
                    "all cores must agree on the shared L2/memory config")
        self.shared_l2 = Cache(ref.l2, name="L2(shared)")
        self.shared_l2_mshr = MSHRFile(ref.l2.mshr_entries)
        if ref.memory.organisation == "banked":
            self.shared_memory = BankedMemory(ref.memory,
                                              line_bytes=ref.l2.line_bytes)
        else:
            self.shared_memory = MainMemory(ref.memory,
                                            line_bytes=ref.l2.line_bytes)
        self.cores: list[Processor] = []
        for config, trace in zip(configs, traces):
            hierarchy = MemoryHierarchy(
                config, shared_l2=self.shared_l2,
                shared_l2_mshr=self.shared_l2_mshr,
                shared_memory=self.shared_memory)
            self.cores.append(Processor(config, trace,
                                        hierarchy=hierarchy))

    # ------------------------------------------------------------------

    def prewarm(self) -> None:
        """Prewarm every core (shared L2 budget is split evenly)."""
        fraction = 0.625 / len(self.cores)
        for core in self.cores:
            core.prewarm(budget_fraction=fraction)

    def reset_measurement(self) -> None:
        for core in self.cores:
            core.reset_measurement()

    def run(self, until_committed_each: int,
            max_cycles: int | None = None) -> None:
        """Advance all cores in lockstep until each has committed
        ``until_committed_each`` micro-ops (or drained its trace)."""
        if max_cycles is None:
            max_cycles = (self.cores[0].cycle
                          + (until_committed_each + 1000) * 800)
        active = set(range(len(self.cores)))
        while active:
            deltas = []
            finished = []
            for idx in active:
                core = self.cores[idx]
                if core.committed_total >= until_committed_each:
                    finished.append(idx)
                    continue
                if core.cycle > max_cycles:
                    raise RuntimeError(
                        f"core {idx} exceeded {max_cycles} cycles")
                delta = core.step_cycle()
                if delta == 0:
                    finished.append(idx)
                else:
                    deltas.append((idx, delta))
            active.difference_update(finished)
            if not deltas:
                continue
            # lockstep: everyone advances by the smallest suggested delta
            step = min(delta for __, delta in deltas)
            for idx, __ in deltas:
                self.cores[idx].advance(step)

    # ------------------------------------------------------------------

    def results(self) -> list[SimulationResult]:
        return [core.result() for core in self.cores]

    def aggregate_ipc(self) -> float:
        """Total committed micro-ops over the longest core's cycles.

        Pessimistic when core runtimes differ a lot (finished cores stop
        contributing); :meth:`throughput` is the usual fixed-work chip
        metric."""
        cycles = max(core.stats.cycles for core in self.cores)
        if not cycles:
            return 0.0
        committed = sum(core.stats.committed_uops for core in self.cores)
        return committed / cycles

    def throughput(self) -> float:
        """Sum of per-core IPCs (each over its own cycles) — the
        standard fixed-work multi-programming throughput metric."""
        return sum(core.stats.ipc for core in self.cores)

    def channel_utilisation(self) -> float:
        """Fraction of elapsed cycles the shared channel was transferring."""
        cycles = max(core.stats.cycles for core in self.cores)
        if not cycles:
            return 0.0
        return min(1.0, self.shared_memory.busy_cycles / cycles)


def simulate_multicore(configs: list[ProcessorConfig], traces: list[Trace],
                       warmup: int = 3_000,
                       measure: int = 8_000) -> MultiCoreSystem:
    """Prewarm, warm up and measure a multi-core system; returns it."""
    system = MultiCoreSystem(configs, traces)
    system.prewarm()
    system.run(until_committed_each=warmup)
    system.reset_measurement()
    system.run(until_committed_each=warmup + measure)
    return system
