"""Built-in reproduction self-check (``python -m repro validate``).

Runs a reduced-scale version of the headline experiments and checks each
of the paper's qualitative claims against expected bands.  This is the
"is my install sane / did my change break the reproduction?" command —
a few minutes, prints one PASS/FAIL line per claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import Settings, Sweep


@dataclass
class Check:
    """One claim to validate."""

    name: str
    claim: str
    passed: bool
    detail: str


def _fig07_checks(sweep) -> list[Check]:
    import importlib
    result = importlib.import_module(EXPERIMENTS["fig07"]).run(sweep=sweep)
    checks = [
        Check("fig07.gm_mem",
              "GM memory-intensive speedup in band (paper +48%)",
              1.2 <= result.series["gm_mem"] <= 2.2,
              f"measured {result.series['gm_mem']:.2f}"),
        Check("fig07.gm_comp",
              "GM compute-intensive speedup ~neutral (paper +4%)",
              0.9 <= result.series["gm_comp"] <= 1.15,
              f"measured {result.series['gm_comp']:.2f}"),
        Check("fig07.gm_all",
              "GM overall speedup in band (paper +21%)",
              1.1 <= result.series["gm_all"] <= 1.5,
              f"measured {result.series['gm_all']:.2f}"),
    ]
    worst = min(result.series["per_program"].items(),
                key=lambda kv: kv[1]["res"] / kv[1]["fixed_best"])
    ratio = worst[1]["res"] / worst[1]["fixed_best"]
    checks.append(Check(
        "fig07.adaptivity",
        "resizing within 20% of best fixed level for every program",
        ratio >= 0.8, f"worst: {worst[0]} at {ratio:.2f}"))
    return checks


def _fig04_checks(sweep) -> list[Check]:
    import importlib
    result = importlib.import_module(EXPERIMENTS["fig04"]).run(sweep=sweep)
    return [
        Check("fig04.clustering",
              "L2 misses cluster (most within 64 cycles of the previous)",
              result.series["fraction_below_64"] > 0.4,
              f"{result.series['fraction_below_64']:.0%} below 64 cycles"),
        Check("fig04.latency_peak",
              "secondary miss-interval peak near the 300-cycle latency",
              200 <= result.series["late_peak_bin_low"] <= 420,
              f"peak at {result.series['late_peak_bin_low']} cycles"),
    ]


def _table3_checks(sweep) -> list[Check]:
    import importlib
    result = importlib.import_module(EXPERIMENTS["table3"]).run(sweep=sweep)
    return [Check("table3.categories",
                  "programs land on the paper's side of the 10-cycle split",
                  result.series["agreement"] >= 0.9,
                  f"{result.series['agreement']:.0%} agree")]


def _fig09_checks(sweep) -> list[Check]:
    import importlib
    result = importlib.import_module(EXPERIMENTS["fig09"]).run(sweep=sweep)
    return [Check("fig09.edp",
                  "overall 1/EDP improves (paper +8%)",
                  result.series["gm_all"] > 1.0,
                  f"measured {result.series['gm_all']:.2f}")]


def _fig12_checks(sweep) -> list[Check]:
    import importlib
    result = importlib.import_module(EXPERIMENTS["fig12"]).run(sweep=sweep)
    return [Check("fig12.runahead",
                  "resizing beats runahead on the memory GM",
                  result.series["gm_dyn_mem"] > result.series[
                      "gm_runahead_mem"],
                  f"dyn {result.series['gm_dyn_mem']:.2f} vs runahead "
                  f"{result.series['gm_runahead_mem']:.2f}")]


_SUITES: list[Callable] = [_table3_checks, _fig04_checks, _fig07_checks,
                           _fig09_checks, _fig12_checks]


def validate(settings: Settings | None = None,
             verbose: bool = True) -> list[Check]:
    """Run all claim checks; returns the check list."""
    settings = settings or Settings(all_programs=False, warmup=2_000,
                                    measure=6_000)
    sweep = Sweep(settings)
    checks: list[Check] = []
    start = time.time()
    for suite in _SUITES:
        checks.extend(suite(sweep))
    if verbose:
        for check in checks:
            status = "PASS" if check.passed else "FAIL"
            print(f"[{status}] {check.name:<18} {check.claim} "
                  f"({check.detail})")
        failed = sum(not c.passed for c in checks)
        print(f"\n{len(checks) - failed}/{len(checks)} claims hold "
              f"({time.time() - start:.0f}s)")
    return checks


def main(argv=None) -> int:
    checks = validate()
    return 0 if all(c.passed for c in checks) else 1
