"""Analytical energy, power and area models (the McPAT/CACTI substitute).

The paper uses McPAT (32nm, 350K) for the energy-efficiency study
(Figure 9, 1/EDP) and for the area cost accounting (Table 4).  Neither
tool is available offline, so this package provides an activity-based
analytical model:

* **dynamic energy** — every pipeline event (fetch, rename, IQ write /
  wakeup / select, ROB read/write, LSQ search, FU op, cache access, DRAM
  transfer) is charged an energy that scales with the *active* size of
  the structure involved (a CAM broadcast across 256 live IQ entries
  costs 4x one across 64);
* **leakage** — proportional to structure size and time, with the gated
  unused region of a resized resource leaking at a reduced rate (the
  paper gates signals and disables precharge in the unused region);
* **area** — per-entry coefficients for the window resources calibrated
  to the paper's Table 4 (1.6 mm^2 of additional window resources at
  32nm; 6% of the 25 mm^2 base core; 3% of a 216 mm^2 Sandy Bridge
  chip).

Absolute joules are not meaningful; *ratios between configurations of the
same model* are, and those are all Figure 9 / Table 4 report.
"""

from repro.energy.model import EnergyModel, EnergyParams, EnergyBreakdown
from repro.energy.area import AreaModel, AREA_BASE_CORE_MM2, AREA_SB_CORE_MM2, AREA_SB_CHIP_MM2
from repro.energy.report import (
    breakdown_rows,
    compare_breakdowns,
    render_breakdown,
)

__all__ = [
    "EnergyModel",
    "EnergyParams",
    "EnergyBreakdown",
    "AreaModel",
    "AREA_BASE_CORE_MM2",
    "AREA_SB_CORE_MM2",
    "AREA_SB_CHIP_MM2",
    "breakdown_rows",
    "compare_breakdowns",
    "render_breakdown",
]
