"""Energy breakdown reporting.

Renders the per-component energy of one or more runs — where the extra
window power goes (the IQ's CAM broadcasts grow with the active size)
and why the speedup still wins the EDP race on memory-intensive
programs.
"""

from __future__ import annotations

from repro.config import ProcessorConfig
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.stats.report import SimulationResult

_COMPONENTS = ("frontend", "window", "execute", "memory", "leakage")


def breakdown_rows(bd: EnergyBreakdown) -> list[tuple[str, float, float]]:
    """(component, nanojoules, share) rows for one breakdown."""
    total = bd.total_nj or 1.0
    rows = []
    for name in _COMPONENTS:
        value = getattr(bd, f"{name}_nj")
        rows.append((name, value, value / total))
    return rows


def render_breakdown(result: SimulationResult, config: ProcessorConfig,
                     model: EnergyModel | None = None) -> str:
    """A text table of one run's energy split."""
    bd = (model or EnergyModel()).breakdown(result, config)
    lines = [f"energy breakdown — {result.program} ({result.model}, "
             f"{result.cycles} cycles)"]
    for name, value, share in breakdown_rows(bd):
        bar = "#" * round(30 * share)
        lines.append(f"  {name:<9} {value:>10.1f} nJ {share:>6.1%}  {bar}")
    lines.append(f"  {'total':<9} {bd.total_nj:>10.1f} nJ")
    return "\n".join(lines)


def compare_breakdowns(results: list[tuple[str, SimulationResult,
                                           ProcessorConfig]],
                       model: EnergyModel | None = None) -> str:
    """Side-by-side component energies for several runs.

    ``results`` is a list of (label, result, config).
    """
    model = model or EnergyModel()
    breakdowns = [(label, model.breakdown(res, cfg))
                  for label, res, cfg in results]
    header = f"{'component':<10}" + "".join(
        f"{label:>14}" for label, __ in breakdowns)
    lines = [header, "-" * len(header)]
    for name in _COMPONENTS:
        row = f"{name:<10}"
        for __, bd in breakdowns:
            row += f"{getattr(bd, f'{name}_nj'):>12.1f}nJ"
        lines.append(row)
    row = f"{'total':<10}"
    for __, bd in breakdowns:
        row += f"{bd.total_nj:>12.1f}nJ"
    lines.append(row)
    return "\n".join(lines)
