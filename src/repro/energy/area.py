"""Area model for the cost/performance analysis (paper Table 4).

Per-entry area coefficients at 32nm for the window resources, calibrated
so the level-1 → level-3 enlargement (IQ 64→256, ROB 128→512, LSQ
64→256) costs the paper's 1.6 mm².  Reference areas come straight from
Section 5.5: 25 mm² base core (includes a 2MB L2 of 8.6 mm² per McPAT),
19 mm² Sandy Bridge core, 216 mm² Sandy Bridge chip (four cores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import ProcessorConfig, ResourceLevel

AREA_BASE_CORE_MM2 = 25.0
AREA_SB_CORE_MM2 = 19.0
AREA_SB_CHIP_MM2 = 216.0
AREA_L2_2MB_MM2 = 8.6
#: paper Table 4: additional window resources cost 1.6 mm^2
AREA_EXTRA_TARGET_MM2 = 1.6

# Relative per-entry weights: the IQ entry is a CAM (costly), the ROB
# entry carries a physical register, the LSQ entry an address CAM.
_W_IQ = 2.0
_W_ROB = 1.0
_W_LSQ = 1.4


def _weighted_entries(level: ResourceLevel) -> float:
    return (_W_IQ * level.iq_entries + _W_ROB * level.rob_entries
            + _W_LSQ * level.lsq_entries)


@dataclass
class AreaReport:
    """Table 4 quantities for one configuration pair."""

    extra_mm2: float
    vs_base_core: float
    vs_sb_core: float
    vs_sb_chip: float
    pollack_expected_speedup: float

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("additional area", f"{self.extra_mm2:.1f} mm^2"),
            ("vs. base core", f"{self.vs_base_core:.0%}"),
            ("vs. SB core", f"{self.vs_sb_core:.0%}"),
            ("vs. SB chip", f"{self.vs_sb_chip:.0%}"),
            ("speedup expected by Pollack's law",
             f"{self.pollack_expected_speedup:.0%}"),
        ]


class AreaModel:
    """Window-resource area accounting."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        base = config.level_config(1)
        top = config.level_config(config.max_level)
        extra_weight = _weighted_entries(top) - _weighted_entries(base)
        if extra_weight <= 0:
            raise ValueError("top level does not enlarge the window")
        #: mm^2 per weighted entry, calibrated to the paper's 1.6 mm^2
        self.mm2_per_weighted_entry = AREA_EXTRA_TARGET_MM2 / extra_weight

    def window_area_mm2(self, level: int) -> float:
        """Area of the window resources provisioned at ``level``."""
        return (_weighted_entries(self.config.level_config(level))
                * self.mm2_per_weighted_entry)

    def extra_area_mm2(self, max_level: int | None = None) -> float:
        """Additional area of provisioning ``max_level`` over level 1."""
        top = self.config.max_level if max_level is None else max_level
        return self.window_area_mm2(top) - self.window_area_mm2(1)

    def report(self, max_level: int | None = None) -> AreaReport:
        extra = self.extra_area_mm2(max_level)
        vs_base = extra / AREA_BASE_CORE_MM2
        # Pollack's law: performance scales with sqrt(area).
        pollack = math.sqrt(1.0 + vs_base) - 1.0
        return AreaReport(
            extra_mm2=extra,
            vs_base_core=vs_base,
            vs_sb_core=extra / AREA_SB_CORE_MM2,
            # the paper applies the scheme to all four Sandy Bridge cores
            vs_sb_chip=4 * extra / AREA_SB_CHIP_MM2,
            pollack_expected_speedup=pollack,
        )

    @staticmethod
    def l2_area_mm2(size_bytes: int, assoc: int) -> float:
        """L2 area, linear in capacity, anchored at McPAT's 8.6 mm^2 for
        the 2MB 4-way base configuration (Section 5.5)."""
        return AREA_L2_2MB_MM2 * (size_bytes / (2 * 1024 * 1024))
