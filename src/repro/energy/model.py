"""Activity-based dynamic + leakage energy model.

All coefficients are in picojoules (per event, or per entry-cycle for
leakage) chosen to give a plausible 32nm energy budget; the experiments
only ever use energy *ratios* between model configurations, which is
what the coefficients' relative magnitudes control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.stats.report import SimulationResult


@dataclass(frozen=True)
class EnergyParams:
    """Energy coefficients (pJ per event unless noted)."""

    fetch: float = 8.0
    decode: float = 4.0
    bpred: float = 6.0
    rename: float = 6.0
    #: IQ write per entry of active size (CAM + RAM write)
    iq_write_per_entry: float = 0.08
    #: wakeup broadcast per active entry (tag CAM match across the queue)
    iq_wakeup_per_entry: float = 0.10
    #: selection per active entry (prefix-sum select tree)
    iq_select_per_entry: float = 0.04
    #: ROB read/write per entry of active size (RAM with register field)
    rob_access_per_entry: float = 0.02
    #: LSQ address search per active entry (CAM)
    lsq_search_per_entry: float = 0.09
    fu_op: float = 12.0
    l1_access: float = 20.0
    l2_access: float = 90.0
    dram_request: float = 2000.0
    #: leakage per entry-cycle of window resource area
    window_leak_per_entry_cycle: float = 0.004
    #: relative leakage of the gated unused region (Section 4 of the
    #: paper: signals gated, precharge disabled)
    gated_leak_fraction: float = 0.25
    #: fixed core leakage per cycle (everything that never resizes)
    core_leak_per_cycle: float = 12.0
    #: L2 leakage per cycle per KB
    l2_leak_per_kb_cycle: float = 0.012


@dataclass
class EnergyBreakdown:
    """Energy of one run, split by component (nanojoules)."""

    frontend_nj: float
    window_nj: float
    execute_nj: float
    memory_nj: float
    leakage_nj: float

    @property
    def total_nj(self) -> float:
        return (self.frontend_nj + self.window_nj + self.execute_nj
                + self.memory_nj + self.leakage_nj)


class EnergyModel:
    """Evaluates a finished run into energy and EDP."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def breakdown(self, result: SimulationResult,
                  config: ProcessorConfig) -> EnergyBreakdown:
        if result.stats is None:
            raise ValueError("result carries no raw stats; "
                             "run with stats retained")
        p = self.params
        a = result.stats.activity
        cycles = max(1, result.cycles)

        avg_iq = a.iq_size_cycles / cycles
        avg_rob = a.rob_size_cycles / cycles
        avg_lsq = a.lsq_size_cycles / cycles

        frontend = (a.fetches * p.fetch + a.decodes * p.decode
                    + a.bpred_lookups * p.bpred + a.renames * p.rename)
        window = (a.iq_writes * p.iq_write_per_entry * avg_iq
                  + a.iq_wakeups * p.iq_wakeup_per_entry * avg_iq
                  + a.iq_issues * p.iq_select_per_entry * avg_iq
                  + (a.rob_writes + a.rob_reads)
                  * p.rob_access_per_entry * avg_rob
                  + a.lsq_searches * p.lsq_search_per_entry * avg_lsq)
        execute = a.fu_ops * p.fu_op
        mem = result.memory_stats
        memory = ((mem.get("l1i_accesses", 0) + mem.get("l1d_accesses", 0))
                  * p.l1_access
                  + mem.get("l2_accesses", 0) * p.l2_access
                  + mem.get("dram_requests", 0) * p.dram_request)

        leak = p.window_leak_per_entry_cycle
        window_leak = 0.0
        for active, phys in ((a.iq_size_cycles, a.iq_max_cycles),
                             (a.rob_size_cycles, a.rob_max_cycles),
                             (a.lsq_size_cycles, a.lsq_max_cycles)):
            gated = max(0, phys - active)
            window_leak += active * leak + gated * leak * p.gated_leak_fraction
        l2_kb = config.l2.size_bytes / 1024
        leakage = (window_leak + cycles * p.core_leak_per_cycle
                   + cycles * l2_kb * p.l2_leak_per_kb_cycle)

        scale = 1e-3   # pJ -> nJ
        return EnergyBreakdown(
            frontend_nj=frontend * scale,
            window_nj=window * scale,
            execute_nj=execute * scale,
            memory_nj=memory * scale,
            leakage_nj=leakage * scale,
        )

    def annotate(self, result: SimulationResult,
                 config: ProcessorConfig) -> SimulationResult:
        """Fill ``energy_nj`` and ``edp`` on the result, in place."""
        bd = self.breakdown(result, config)
        result.energy_nj = bd.total_nj
        result.edp = bd.total_nj * result.cycles
        return result

    @staticmethod
    def inverse_edp_ratio(result: SimulationResult,
                          base: SimulationResult) -> float:
        """1/EDP of ``result`` normalised to ``base`` (Figure 9 metric).

        Both runs must execute the same instruction count, as in the
        paper, so cycle counts are comparable delays.
        """
        if result.edp <= 0 or base.edp <= 0:
            raise ValueError("annotate() both results before comparing")
        return base.edp / result.edp
