"""Performance analysis tools built on the simulator's statistics.

* :mod:`repro.analysis.cpi` — CPI stacks from commit-stall attribution:
  *where* the cycles go (DRAM, cache, dependences, front end), the
  quantitative backbone of the paper's ILP/MLP story.
"""

from repro.analysis.cpi import CPIStack, cpi_stack, render_cpi_stack, compare_cpi_stacks

__all__ = ["CPIStack", "cpi_stack", "render_cpi_stack",
           "compare_cpi_stacks"]
