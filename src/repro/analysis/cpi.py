"""CPI stacks from commit-stall attribution.

Every cycle the commit stage retires fewer micro-ops than the machine
width, the unused commit slots are charged to the reason the ROB head
could not retire (DRAM miss, cache access, unready dependences, issue
contention, empty ROB = front end).  Dividing each bucket by
``width x instructions`` yields an additive decomposition of CPI:

    CPI_total = CPI_base + sum(CPI_reason)

where ``CPI_base = 1/width`` is the ideal machine.  This is the
commit-slot variant of the classic CPI-stack methodology; it makes the
paper's argument quantitative — memory-intensive programs drown in
``mem_dram`` (which the big window shrinks), compute-intensive programs
in ``deps``/``frontend`` (which the pipelined IQ inflates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.report import SimulationResult

#: canonical component order for rendering
COMPONENTS = ("base", "mem_dram", "mem_cache", "mem_forward", "deps",
              "issue", "exec", "policy_timer", "frontend")

_LABELS = {
    "base": "base (ideal width)",
    "mem_dram": "DRAM misses",
    "mem_cache": "cache access",
    "mem_forward": "store forwarding",
    "deps": "data dependences",
    "issue": "issue/FU contention",
    "exec": "execution latency",
    "policy_timer": "resize timer wait",
    "frontend": "front end / recovery",
}


@dataclass
class CPIStack:
    """Additive CPI decomposition of one run."""

    program: str
    model: str
    total: float
    components: dict[str, float] = field(default_factory=dict)

    def fraction(self, name: str) -> float:
        """Share of total CPI attributed to ``name``."""
        if self.total <= 0:
            return 0.0
        return self.components.get(name, 0.0) / self.total

    def memory_share(self) -> float:
        """Fraction of CPI spent waiting on the memory hierarchy."""
        return (self.fraction("mem_dram") + self.fraction("mem_cache")
                + self.fraction("mem_forward"))


def cpi_stack(result: SimulationResult) -> CPIStack:
    """Build the CPI stack of a finished run."""
    stats = result.stats
    if stats is None:
        raise ValueError("result carries no raw stats")
    instructions = max(1, result.instructions)
    total_stall_slots = sum(stats.stall_slots.values())
    # committed slots == instructions; slots/cycle == machine width
    width_slots = instructions + total_stall_slots
    width = max(1, round(width_slots / max(1, result.cycles)))
    denom = width * instructions
    components = {"base": 1.0 / width}
    for reason, slots in sorted(stats.stall_slots.items()):
        components[reason] = slots / denom
    return CPIStack(program=result.program, model=result.model,
                    total=result.cycles / instructions,
                    components=components)


def render_cpi_stack(stack: CPIStack, bar_width: int = 36) -> str:
    """One run's stack as a text chart."""
    lines = [f"CPI stack — {stack.program} ({stack.model}): "
             f"{stack.total:.3f} cycles/uop"]
    for name in COMPONENTS:
        value = stack.components.get(name)
        if not value:
            continue
        share = stack.fraction(name)
        bar = "#" * max(1, round(bar_width * share)) if share > 0.004 else ""
        lines.append(f"  {_LABELS[name]:<22} {value:>7.3f} "
                     f"{share:>6.1%}  {bar}")
    return "\n".join(lines)


def compare_cpi_stacks(stacks: list[CPIStack]) -> str:
    """Several stacks side by side (per-component CPI columns)."""
    header = f"{'component':<22}" + "".join(
        f"{s.model:>12}" for s in stacks)
    lines = [header, "-" * len(header)]
    for name in COMPONENTS:
        if not any(s.components.get(name) for s in stacks):
            continue
        row = f"{_LABELS[name]:<22}"
        for s in stacks:
            row += f"{s.components.get(name, 0.0):>12.3f}"
        lines.append(row)
    row = f"{'total CPI':<22}"
    for s in stacks:
        row += f"{s.total:>12.3f}"
    lines.append(row)
    return "\n".join(lines)
