"""Logical register file description.

The simulated ISA has 32 integer and 32 floating-point logical registers,
mapped onto a single flat logical register index space: integer registers
occupy indices ``0..31`` and floating-point registers ``32..63``.  Renaming
(the P6-style map table of the pipeline) operates on this flat space.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

INT_REG_BASE = 0
FP_REG_BASE = NUM_INT_REGS

#: Sentinel for "no register" (e.g. the destination of a store or branch).
REG_INVALID = -1


def int_reg(n: int) -> int:
    """Flat index of integer register ``n``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register {n} out of range")
    return INT_REG_BASE + n


def fp_reg(n: int) -> int:
    """Flat index of floating-point register ``n``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register {n} out of range")
    return FP_REG_BASE + n


def is_int_reg(reg: int) -> bool:
    """True if ``reg`` is a valid integer register index."""
    return INT_REG_BASE <= reg < INT_REG_BASE + NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` is a valid floating-point register index."""
    return FP_REG_BASE <= reg < FP_REG_BASE + NUM_FP_REGS


def reg_name(reg: int) -> str:
    """Human-readable name, e.g. ``r5`` or ``f12``."""
    if reg == REG_INVALID:
        return "-"
    if is_int_reg(reg):
        return f"r{reg - INT_REG_BASE}"
    if is_fp_reg(reg):
        return f"f{reg - FP_REG_BASE}"
    raise ValueError(f"invalid register index {reg}")
