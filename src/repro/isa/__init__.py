"""A compact micro-op ISA for the trace-driven simulator.

The simulator is trace driven: workload generators emit dynamic streams of
:class:`~repro.isa.instructions.MicroOp` records that carry everything the
timing model needs — operation class, register operands, memory address and
branch outcome.  There is no functional emulation; correctness of data
values is irrelevant to the timing questions the paper asks.
"""

from repro.isa.instructions import (
    OpClass,
    MicroOp,
    EXEC_LATENCY,
    is_mem_op,
    is_branch_op,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_LOGICAL_REGS,
    INT_REG_BASE,
    FP_REG_BASE,
    REG_INVALID,
    int_reg,
    fp_reg,
    is_int_reg,
    is_fp_reg,
    reg_name,
)

__all__ = [
    "OpClass",
    "MicroOp",
    "EXEC_LATENCY",
    "is_mem_op",
    "is_branch_op",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_LOGICAL_REGS",
    "INT_REG_BASE",
    "FP_REG_BASE",
    "REG_INVALID",
    "int_reg",
    "fp_reg",
    "is_int_reg",
    "is_fp_reg",
    "reg_name",
]
