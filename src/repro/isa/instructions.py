"""Micro-op record and operation classes.

:class:`MicroOp` is deliberately a ``__slots__`` class rather than a
dataclass: tens of millions of these are created during a sweep and the
slim layout matters.
"""

from __future__ import annotations

from enum import IntEnum

from repro.isa.registers import REG_INVALID, reg_name


class OpClass(IntEnum):
    """Operation classes recognised by the execute stage.

    Each class maps onto one of the function unit pools of Table 1 of the
    paper (4 iALU, 2 iMULT/DIV, 2 Ld/St ports, 4 fpALU, 2 fpMULT/DIV/SQRT).
    """

    NOP = 0
    IALU = 1
    IMUL = 2
    IDIV = 3
    FPALU = 4
    FPMUL = 5
    FPDIV = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9


#: Execution latency in cycles of each op class, excluding memory time.
#: Loads take ``EXEC_LATENCY[LOAD]`` for address generation and then pay
#: the cache-hierarchy latency on top.
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.NOP: 1,
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.FPALU: 2,
    OpClass.FPMUL: 4,
    OpClass.FPDIV: 12,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

_MEM_OPS = frozenset((OpClass.LOAD, OpClass.STORE))


def is_mem_op(op: OpClass) -> bool:
    """True for loads and stores (they occupy LSQ entries and mem ports)."""
    return op in _MEM_OPS


def is_branch_op(op: OpClass) -> bool:
    """True for control-flow micro-ops."""
    return op is OpClass.BRANCH


class MicroOp:
    """One dynamic micro-op of a workload trace.

    Attributes:
        pc: instruction address (used by the branch predictor, BTB, I-cache
            and the stride prefetcher's PC-indexed table).
        op: the :class:`OpClass`.
        dst: flat logical destination register, or ``REG_INVALID``.
        srcs: tuple of flat logical source registers (may be empty).
        addr: effective address for loads/stores, else 0.
        size: access size in bytes for loads/stores, else 0.
        taken: actual branch outcome (branches only).
        target: actual branch target (branches only; fall-through target
            for not-taken branches).
    """

    __slots__ = ("pc", "op", "dst", "srcs", "addr", "size", "taken", "target",
                 "is_load", "is_store", "is_mem", "is_branch")

    def __init__(self, pc: int, op: OpClass, dst: int = REG_INVALID,
                 srcs: tuple[int, ...] = (), addr: int = 0, size: int = 0,
                 taken: bool = False, target: int = 0) -> None:
        self.pc = pc
        self.op = op
        self.dst = dst
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.taken = taken
        self.target = target
        # op-class predicates, precomputed: the pipeline hot loop reads
        # these many times per op, so they are plain attributes rather
        # than properties (a function call per read)
        self.is_load = op is OpClass.LOAD
        self.is_store = op is OpClass.STORE
        self.is_mem = op in _MEM_OPS
        self.is_branch = op is OpClass.BRANCH

    def __repr__(self) -> str:
        parts = [f"pc={self.pc:#x}", self.op.name.lower()]
        if self.dst != REG_INVALID:
            parts.append(f"dst={reg_name(self.dst)}")
        if self.srcs:
            parts.append("srcs=" + ",".join(reg_name(s) for s in self.srcs))
        if self.is_mem:
            parts.append(f"addr={self.addr:#x}/{self.size}")
        if self.is_branch:
            parts.append(f"{'T' if self.taken else 'N'}->{self.target:#x}")
        return f"<MicroOp {' '.join(parts)}>"
