"""The out-of-order pipeline substrate (the SimpleScalar replacement).

A 4-wide P6-style superscalar core: fetch with gshare/BTB prediction and
wrong-path injection, decode, rename (map table into ROB entries),
dispatch into the resizable ROB/IQ/LSQ window resources, oldest-first
wakeup/select issue with a configurable issue-loop pipeline depth,
function-unit contention, non-blocking memory access through
:class:`~repro.memory.MemoryHierarchy`, and in-order commit.

The window resources are FIFO structures whose *active region* can be
grown and shrunk at run time — the substrate the paper's contribution
(:mod:`repro.core`) controls.
"""

from repro.pipeline.resources import WindowResource, WindowSet
from repro.pipeline.core import Processor, InFlightOp, simulate
from repro.pipeline.engine import (
    ENGINE_NAMES,
    Engine,
    FastEngine,
    ReferenceEngine,
    get_engine,
)
from repro.pipeline.tracer import PipelineTracer, OpRecord
from repro.pipeline.smt import SMTProcessor, SMTRun, simulate_smt

__all__ = ["WindowResource", "WindowSet", "Processor", "InFlightOp",
           "simulate", "PipelineTracer", "OpRecord",
           "Engine", "ReferenceEngine", "FastEngine", "get_engine",
           "ENGINE_NAMES", "SMTProcessor", "SMTRun", "simulate_smt"]
